#!/usr/bin/env bash
# Line coverage for the combination-optimizer crate.
#
# Requires cargo-llvm-cov (https://github.com/taiki-e/cargo-llvm-cov);
# CI installs it via taiki-e/install-action. The number is a recorded
# baseline, not a ratchet — see COVERAGE.md for the last recorded value.
set -euo pipefail

if ! cargo llvm-cov --version >/dev/null 2>&1; then
    echo "cargo-llvm-cov is not installed; skipping coverage." >&2
    echo "Install with: cargo install cargo-llvm-cov" >&2
    exit 0
fi

cd "$(dirname "$0")/.."
exec cargo llvm-cov -p ecosched-optimize --summary-only "$@"
