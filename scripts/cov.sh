#!/usr/bin/env bash
# Line coverage for the combination-optimizer and persistence crates.
#
# Requires cargo-llvm-cov (https://github.com/taiki-e/cargo-llvm-cov);
# CI installs it via taiki-e/install-action. The numbers are recorded
# baselines, not ratchets — see COVERAGE.md for the last recorded values.
set -euo pipefail

if ! cargo llvm-cov --version >/dev/null 2>&1; then
    echo "cargo-llvm-cov is not installed; skipping coverage." >&2
    echo "Install with: cargo install cargo-llvm-cov" >&2
    exit 0
fi

cd "$(dirname "$0")/.."
exec cargo llvm-cov -p ecosched-optimize -p ecosched-persist --summary-only "$@"
