#!/usr/bin/env bash
# Line coverage for the tracked crates: the market/search core
# (ecosched-core, ecosched-select) and the combination-optimizer and
# persistence crates (ecosched-optimize, ecosched-persist).
#
# Usage:
#   ./scripts/cov.sh             # print the summary for all tracked crates
#   ./scripts/cov.sh --ratchet   # additionally enforce the core+select
#                                # soft ratchet recorded in COVERAGE.md
#
# The ratchet is *soft*: the combined core+select line coverage may not
# drop more than 1.0 percentage point below the baseline recorded in
# COVERAGE.md (the `<!-- ratchet:core+select: NN.NN -->` marker). When no
# numeric baseline has been recorded yet the ratchet only reports the
# measured figure, so the first CI run bootstraps the marker instead of
# failing.
#
# Requires cargo-llvm-cov (https://github.com/taiki-e/cargo-llvm-cov);
# CI installs it via taiki-e/install-action. When the tool is absent the
# script prints a notice and exits 0 so it is safe in any environment.
set -euo pipefail

if ! cargo llvm-cov --version >/dev/null 2>&1; then
    echo "cargo-llvm-cov is not installed; skipping coverage." >&2
    echo "Install with: cargo install cargo-llvm-cov" >&2
    exit 0
fi

cd "$(dirname "$0")/.."

RATCHET=0
if [ "${1:-}" = "--ratchet" ]; then
    RATCHET=1
    shift
fi

cargo llvm-cov -p ecosched-core -p ecosched-select -p ecosched-optimize \
    -p ecosched-persist --summary-only "$@"

if [ "$RATCHET" -eq 1 ]; then
    measured=$(cargo llvm-cov -p ecosched-core -p ecosched-select --summary-only --json |
        python3 -c 'import json, sys
print(f"{json.load(sys.stdin)[\"data\"][0][\"totals\"][\"lines\"][\"percent\"]:.2f}")')
    echo "core+select line coverage: ${measured}%"
    baseline=$(sed -n 's/.*ratchet:core+select: *\([0-9][0-9.]*\).*/\1/p' COVERAGE.md | head -n 1)
    if [ -z "$baseline" ]; then
        echo "cov.sh: no numeric core+select baseline in COVERAGE.md yet;" >&2
        echo "cov.sh: record '<!-- ratchet:core+select: ${measured} -->' to arm the ratchet." >&2
        exit 0
    fi
    if awk -v m="$measured" -v b="$baseline" 'BEGIN { exit !(m + 1.0 < b) }'; then
        echo "cov.sh: core+select line coverage ${measured}% dropped more than" >&2
        echo "cov.sh: 1.0 point below the ${baseline}% baseline in COVERAGE.md." >&2
        echo "cov.sh: add tests, or lower the baseline in review if the drop is deliberate." >&2
        exit 1
    fi
    echo "ratchet ok: ${measured}% >= ${baseline}% - 1.0"
fi
