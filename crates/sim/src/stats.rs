//! Streaming statistics for experiment aggregation.

use serde::{Deserialize, Serialize};

/// A streaming mean/min/max accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.sum_sq += value * value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation (0.0 when empty).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean)
            .max(0.0)
            .sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn mean_min_max() {
        let mut s = RunningStats::new();
        for v in [2.0, 4.0, 6.0] {
            s.push(v);
        }
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
        assert!((s.std_dev() - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_pushing_everything() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut whole = RunningStats::new();
        for v in [1.0, 5.0] {
            a.push(v);
            whole.push(v);
        }
        for v in [2.0, 8.0, 3.0] {
            b.push(v);
            whole.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        // Merging an empty accumulator changes nothing.
        let snapshot = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, snapshot);
    }
}
