//! Supply-and-demand pricing — the paper's second future-work item
//! (Sec. 7: "pricing mechanisms that will take into account
//! supply-and-demand trends for computational resources").
//!
//! Owners adjust each node's price between scheduling cycles: a node whose
//! vacant time keeps selling out gets more expensive; an idle node gets
//! cheaper, bounded by a configurable band around the base price.

use std::collections::BTreeMap;

use ecosched_core::{NodeId, Slot, SlotList};
use serde::{Deserialize, Serialize};

use crate::config::{positive_real, probability, ConfigError};

/// Configuration of the supply-and-demand price adjustment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingConfig {
    /// Relative price change per unit of utilization error per cycle.
    pub sensitivity: f64,
    /// The utilization owners aim for; above it prices rise.
    pub target_utilization: f64,
    /// Lower bound on the price multiplier.
    pub min_multiplier: f64,
    /// Upper bound on the price multiplier.
    pub max_multiplier: f64,
}

impl Default for PricingConfig {
    fn default() -> Self {
        PricingConfig {
            sensitivity: 0.25,
            target_utilization: 0.5,
            min_multiplier: 0.25,
            max_multiplier: 4.0,
        }
    }
}

impl PricingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field: non-positive
    /// or inverted multiplier bounds, a negative sensitivity, or a target
    /// outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sensitivity < 0.0 {
            return Err(ConfigError::Negative {
                field: "sensitivity",
            });
        }
        probability(self.target_utilization, "target_utilization")?;
        positive_real(self.min_multiplier, "min_multiplier")?;
        if self.min_multiplier > self.max_multiplier {
            return Err(ConfigError::InvertedBounds {
                field: "min_multiplier..max_multiplier",
            });
        }
        Ok(())
    }
}

/// Per-node price multipliers evolved by observed demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupplyDemandPricing {
    config: PricingConfig,
    multipliers: BTreeMap<NodeId, f64>,
}

impl SupplyDemandPricing {
    /// Creates the pricing state with all multipliers at 1.0.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: PricingConfig) -> Self {
        config.validate().expect("invalid pricing configuration");
        SupplyDemandPricing {
            config,
            multipliers: BTreeMap::new(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PricingConfig {
        &self.config
    }

    /// The current multiplier for `node` (1.0 until first observed).
    #[must_use]
    pub fn multiplier(&self, node: NodeId) -> f64 {
        self.multipliers.get(&node).copied().unwrap_or(1.0)
    }

    /// Mean multiplier across all observed nodes (1.0 when none observed).
    #[must_use]
    pub fn mean_multiplier(&self) -> f64 {
        if self.multipliers.is_empty() {
            1.0
        } else {
            self.multipliers.values().sum::<f64>() / self.multipliers.len() as f64
        }
    }

    /// Feeds one cycle's observed utilization (sold fraction of vacant
    /// time, in `[0, 1]`) for `node` and updates its multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]` (allowing for rounding
    /// slack up to 1.001).
    pub fn observe(&mut self, node: NodeId, utilization: f64) {
        assert!(
            (0.0..=1.001).contains(&utilization),
            "utilization {utilization} out of range for {node}"
        );
        let current = self.multiplier(node);
        let error = utilization.min(1.0) - self.config.target_utilization;
        let next = (current * (1.0 + self.config.sensitivity * error))
            .clamp(self.config.min_multiplier, self.config.max_multiplier);
        self.multipliers.insert(node, next);
    }

    /// Applies the current multipliers to a freshly published slot list,
    /// returning the repriced list the metascheduler actually sees.
    #[must_use]
    pub fn reprice(&self, list: &SlotList) -> SlotList {
        let slots: Vec<Slot> = list
            .iter()
            .map(|s| {
                let scaled = s.price().scale_f64(self.multiplier(s.node()));
                Slot::new(s.id(), s.node(), s.perf(), scaled, s.span())
                    .expect("repricing keeps spans intact")
            })
            .collect();
        SlotList::from_slots(slots).expect("repricing keeps ids and spans intact")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{Perf, Price, SlotId, Span, TimePoint};

    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn hot_nodes_get_expensive_idle_nodes_cheap() {
        let mut pricing = SupplyDemandPricing::new(PricingConfig::default());
        for _ in 0..10 {
            pricing.observe(node(0), 1.0); // always sold out
            pricing.observe(node(1), 0.0); // never sold
        }
        assert!(pricing.multiplier(node(0)) > 1.5);
        assert!(pricing.multiplier(node(1)) < 0.7);
        // Unobserved nodes stay at par.
        assert_eq!(pricing.multiplier(node(9)), 1.0);
    }

    #[test]
    fn multipliers_are_clamped() {
        let config = PricingConfig {
            sensitivity: 10.0,
            ..PricingConfig::default()
        };
        let mut pricing = SupplyDemandPricing::new(config);
        for _ in 0..50 {
            pricing.observe(node(0), 1.0);
            pricing.observe(node(1), 0.0);
        }
        assert!(pricing.multiplier(node(0)) <= config.max_multiplier + 1e-12);
        assert!(pricing.multiplier(node(1)) >= config.min_multiplier - 1e-12);
    }

    #[test]
    fn target_utilization_is_the_fixed_point() {
        let mut pricing = SupplyDemandPricing::new(PricingConfig::default());
        pricing.observe(node(0), 0.5);
        assert!((pricing.multiplier(node(0)) - 1.0).abs() < 1e-12);
        assert!((pricing.mean_multiplier() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reprice_scales_only_prices() {
        let slot = Slot::new(
            SlotId::new(0),
            node(0),
            Perf::UNIT,
            Price::from_credits(4),
            Span::new(TimePoint::new(0), TimePoint::new(100)).unwrap(),
        )
        .unwrap();
        let list = SlotList::from_slots(vec![slot]).unwrap();
        let mut pricing = SupplyDemandPricing::new(PricingConfig::default());
        for _ in 0..10 {
            pricing.observe(node(0), 1.0);
        }
        let repriced = pricing.reprice(&list);
        let new_slot = *repriced.iter().next().unwrap();
        assert!(new_slot.price() > Price::from_credits(4));
        assert_eq!(new_slot.span(), slot.span());
        assert_eq!(new_slot.perf(), slot.perf());
        assert_eq!(new_slot.id(), slot.id());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_utilization_panics() {
        let mut pricing = SupplyDemandPricing::new(PricingConfig::default());
        pricing.observe(node(0), 1.5);
    }

    #[test]
    #[should_panic(expected = "invalid pricing configuration")]
    fn invalid_config_panics() {
        let _ = SupplyDemandPricing::new(PricingConfig {
            min_multiplier: 2.0,
            max_multiplier: 1.0,
            ..PricingConfig::default()
        });
    }
}
