//! Small sampling helpers over the configured intervals.

use rand::Rng;

use crate::config::{IntRange, RealRange};

/// Draws a uniform integer from the inclusive interval.
pub(crate) fn draw_int<R: Rng + ?Sized>(rng: &mut R, range: IntRange) -> i64 {
    rng.gen_range(range.lo..=range.hi)
}

/// Draws a uniform real from the inclusive interval.
pub(crate) fn draw_real<R: Rng + ?Sized>(rng: &mut R, range: RealRange) -> f64 {
    if range.lo == range.hi {
        range.lo
    } else {
        rng.gen_range(range.lo..=range.hi)
    }
}

/// Bernoulli draw.
pub(crate) fn draw_bool<R: Rng + ?Sized>(rng: &mut R, probability: f64) -> bool {
    rng.gen_bool(probability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn draws_stay_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = draw_int(&mut rng, IntRange::new(3, 9));
            assert!((3..=9).contains(&i));
            let r = draw_real(&mut rng, RealRange::new(0.5, 1.5));
            assert!((0.5..=1.5).contains(&r));
        }
    }

    #[test]
    fn degenerate_intervals_are_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(draw_int(&mut rng, IntRange::new(4, 4)), 4);
        assert_eq!(draw_real(&mut rng, RealRange::new(2.0, 2.0)), 2.0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert!(!draw_bool(&mut rng, 0.0));
        assert!(draw_bool(&mut rng, 1.0));
    }

    #[test]
    fn seeded_draws_are_reproducible() {
        let a: Vec<i64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            (0..10)
                .map(|_| draw_int(&mut rng, IntRange::new(0, 100)))
                .collect()
        };
        let b: Vec<i64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            (0..10)
                .map(|_| draw_int(&mut rng, IntRange::new(0, 100)))
                .collect()
        };
        assert_eq!(a, b);
    }
}
