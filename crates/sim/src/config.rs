//! Generator configurations, defaulting to the paper's Sec. 5 parameters.
//!
//! Every option is a uniform distribution over an inclusive interval, as in
//! the paper ("all job batch and slot list options are random variables
//! that have a uniform distribution inside the identified intervals").

use serde::{Deserialize, Serialize};

/// An inclusive interval for a uniform integer draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntRange {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl IntRange {
    /// Creates an inclusive integer interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        IntRange { lo, hi }
    }

    /// Midpoint of the interval (for reporting).
    #[must_use]
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }
}

/// An inclusive interval for a uniform real draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RealRange {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl RealRange {
    /// Creates an inclusive real interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        RealRange { lo, hi }
    }

    /// Midpoint of the interval (for reporting).
    #[must_use]
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Configuration of the ordered-slot-list generator (the paper's
/// `SlotGenerator`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotGenConfig {
    /// Number of slots in the list. Paper: `[120, 150]`.
    pub slot_count: IntRange,
    /// Length of each slot. Paper: `[50, 300]`.
    pub slot_length: IntRange,
    /// Node performance rate. Paper: `[1, 3]` ("relatively homogeneous").
    pub node_perf: RealRange,
    /// Probability that a slot shares its start with the previous one —
    /// resources released in cluster-sized chunks. Paper: `0.4`.
    pub same_start_probability: f64,
    /// Gap between neighbouring slot starts when not shared. Paper:
    /// `[0, 10]` ("at least five different slots ready at any moment").
    pub start_gap: IntRange,
    /// The base of the price model `p = price_base ^ performance`.
    /// Paper: `1.7`.
    pub price_base: f64,
    /// Multiplicative price jitter around `p`. Paper: `[0.75, 1.25]`.
    pub price_jitter: RealRange,
}

impl Default for SlotGenConfig {
    /// The paper's Sec. 5 values.
    fn default() -> Self {
        SlotGenConfig {
            slot_count: IntRange::new(120, 150),
            slot_length: IntRange::new(50, 300),
            node_perf: RealRange::new(1.0, 3.0),
            same_start_probability: 0.4,
            start_gap: IntRange::new(0, 10),
            price_base: 1.7,
            price_jitter: RealRange::new(0.75, 1.25),
        }
    }
}

impl SlotGenConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the same-start probability is outside `[0, 1]`, a length
    /// bound is non-positive, or the price model is non-positive.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.same_start_probability),
            "probability must be in [0, 1]"
        );
        assert!(self.slot_count.lo >= 1, "need at least one slot");
        assert!(self.slot_length.lo >= 1, "slots need positive length");
        assert!(self.node_perf.lo > 0.0, "performance must be positive");
        assert!(self.start_gap.lo >= 0, "gaps cannot be negative");
        assert!(self.price_base > 0.0, "price base must be positive");
        assert!(self.price_jitter.lo > 0.0, "price jitter must be positive");
    }
}

/// Configuration of the batch generator (the paper's `JobGenerator`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobGenConfig {
    /// Jobs per batch. Paper: `[3, 7]`.
    pub jobs_per_batch: IntRange,
    /// Nodes required per job. Paper: `[1, 6]`.
    pub nodes: IntRange,
    /// Job length ("complexity"). Paper: `[50, 150]`.
    pub length: IntRange,
    /// Minimum required node performance. Paper: `[1, 2]`.
    pub min_perf: RealRange,
    /// The price-cap derivation factor (DESIGN.md note R3): the per-slot
    /// cap is `C = factor · price_base ^ min_perf`. Not specified by the
    /// paper; default `[0.75, 1.25]` — the same jitter interval the slot
    /// prices use — calibrated so the alternatives-per-job and time/cost
    /// gaps land near the paper's (see EXPERIMENTS.md).
    pub budget_factor: RealRange,
    /// The price base used in the cap derivation; keep equal to
    /// [`SlotGenConfig::price_base`].
    pub price_base: f64,
}

impl Default for JobGenConfig {
    /// The paper's Sec. 5 values plus the R3 default calibration.
    fn default() -> Self {
        JobGenConfig {
            jobs_per_batch: IntRange::new(3, 7),
            nodes: IntRange::new(1, 6),
            length: IntRange::new(50, 150),
            min_perf: RealRange::new(1.0, 2.0),
            budget_factor: RealRange::new(0.75, 1.25),
            price_base: 1.7,
        }
    }
}

impl JobGenConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive job counts, node counts, lengths,
    /// performance, or budget factors.
    pub fn validate(&self) {
        assert!(self.jobs_per_batch.lo >= 1, "batches need at least one job");
        assert!(self.nodes.lo >= 1, "jobs need at least one node");
        assert!(self.length.lo >= 1, "jobs need positive length");
        assert!(self.min_perf.lo > 0.0, "performance must be positive");
        assert!(
            self.budget_factor.lo > 0.0,
            "budget factor must be positive"
        );
        assert!(self.price_base > 0.0, "price base must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let s = SlotGenConfig::default();
        assert_eq!((s.slot_count.lo, s.slot_count.hi), (120, 150));
        assert_eq!((s.slot_length.lo, s.slot_length.hi), (50, 300));
        assert_eq!((s.node_perf.lo, s.node_perf.hi), (1.0, 3.0));
        assert_eq!(s.same_start_probability, 0.4);
        assert_eq!((s.start_gap.lo, s.start_gap.hi), (0, 10));
        assert_eq!(s.price_base, 1.7);

        let j = JobGenConfig::default();
        assert_eq!((j.jobs_per_batch.lo, j.jobs_per_batch.hi), (3, 7));
        assert_eq!((j.nodes.lo, j.nodes.hi), (1, 6));
        assert_eq!((j.length.lo, j.length.hi), (50, 150));
        assert_eq!((j.min_perf.lo, j.min_perf.hi), (1.0, 2.0));

        s.validate();
        j.validate();
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn reversed_int_range_panics() {
        let _ = IntRange::new(5, 4);
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn bad_probability_panics() {
        let c = SlotGenConfig {
            same_start_probability: 1.5,
            ..SlotGenConfig::default()
        };
        c.validate();
    }

    #[test]
    fn midpoints() {
        assert_eq!(IntRange::new(0, 10).mid(), 5.0);
        assert_eq!(RealRange::new(1.0, 2.0).mid(), 1.5);
    }
}
