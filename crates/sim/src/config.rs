//! Generator configurations, defaulting to the paper's Sec. 5 parameters.
//!
//! Every option is a uniform distribution over an inclusive interval, as in
//! the paper ("all job batch and slot list options are random variables
//! that have a uniform distribution inside the identified intervals").

use serde::{Deserialize, Serialize};

/// A typed configuration-validation error naming the offending field.
///
/// Every `*Config` type in this crate validates with
/// `fn validate(&self) -> Result<(), ConfigError>`; the constructors that
/// take a configuration (`SlotGenerator::new`, `JobGenerator::new`, …)
/// keep their panicking contract by `expect`ing the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A probability field is outside `[0, 1]`.
    NotAProbability {
        /// The offending field.
        field: &'static str,
    },
    /// A field that must be strictly positive is zero or negative.
    NotPositive {
        /// The offending field.
        field: &'static str,
    },
    /// A field that must be non-negative is negative.
    Negative {
        /// The offending field.
        field: &'static str,
    },
    /// A pair of bounds is inverted (lower above upper).
    InvertedBounds {
        /// The offending bound pair.
        field: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NotAProbability { field } => {
                write!(f, "{field} must be a probability in [0, 1]")
            }
            ConfigError::NotPositive { field } => write!(f, "{field} must be positive"),
            ConfigError::Negative { field } => write!(f, "{field} must be non-negative"),
            ConfigError::InvertedBounds { field } => write!(f, "{field} bounds are inverted"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// An inclusive interval for a uniform integer draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntRange {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl IntRange {
    /// Creates an inclusive integer interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        IntRange { lo, hi }
    }

    /// Midpoint of the interval (for reporting).
    #[must_use]
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }
}

/// An inclusive interval for a uniform real draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RealRange {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl RealRange {
    /// Creates an inclusive real interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        RealRange { lo, hi }
    }

    /// Midpoint of the interval (for reporting).
    #[must_use]
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Configuration of the ordered-slot-list generator (the paper's
/// `SlotGenerator`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotGenConfig {
    /// Number of slots in the list. Paper: `[120, 150]`.
    pub slot_count: IntRange,
    /// Length of each slot. Paper: `[50, 300]`.
    pub slot_length: IntRange,
    /// Node performance rate. Paper: `[1, 3]` ("relatively homogeneous").
    pub node_perf: RealRange,
    /// Probability that a slot shares its start with the previous one —
    /// resources released in cluster-sized chunks. Paper: `0.4`.
    pub same_start_probability: f64,
    /// Gap between neighbouring slot starts when not shared. Paper:
    /// `[0, 10]` ("at least five different slots ready at any moment").
    pub start_gap: IntRange,
    /// The base of the price model `p = price_base ^ performance`.
    /// Paper: `1.7`.
    pub price_base: f64,
    /// Multiplicative price jitter around `p`. Paper: `[0.75, 1.25]`.
    pub price_jitter: RealRange,
}

impl Default for SlotGenConfig {
    /// The paper's Sec. 5 values.
    fn default() -> Self {
        SlotGenConfig {
            slot_count: IntRange::new(120, 150),
            slot_length: IntRange::new(50, 300),
            node_perf: RealRange::new(1.0, 3.0),
            same_start_probability: 0.4,
            start_gap: IntRange::new(0, 10),
            price_base: 1.7,
            price_jitter: RealRange::new(0.75, 1.25),
        }
    }
}

impl SlotGenConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field: the
    /// same-start probability outside `[0, 1]`, a non-positive count,
    /// length, performance, or price parameter, or a negative gap.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.same_start_probability) {
            return Err(ConfigError::NotAProbability {
                field: "same_start_probability",
            });
        }
        positive_int(self.slot_count.lo, "slot_count.lo")?;
        positive_int(self.slot_length.lo, "slot_length.lo")?;
        positive_real(self.node_perf.lo, "node_perf.lo")?;
        if self.start_gap.lo < 0 {
            return Err(ConfigError::Negative {
                field: "start_gap.lo",
            });
        }
        positive_real(self.price_base, "price_base")?;
        positive_real(self.price_jitter.lo, "price_jitter.lo")
    }
}

pub(crate) fn positive_int(value: i64, field: &'static str) -> Result<(), ConfigError> {
    if value >= 1 {
        Ok(())
    } else {
        Err(ConfigError::NotPositive { field })
    }
}

pub(crate) fn positive_real(value: f64, field: &'static str) -> Result<(), ConfigError> {
    if value > 0.0 {
        Ok(())
    } else {
        Err(ConfigError::NotPositive { field })
    }
}

pub(crate) fn probability(value: f64, field: &'static str) -> Result<(), ConfigError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(ConfigError::NotAProbability { field })
    }
}

/// Configuration of the batch generator (the paper's `JobGenerator`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobGenConfig {
    /// Jobs per batch. Paper: `[3, 7]`.
    pub jobs_per_batch: IntRange,
    /// Nodes required per job. Paper: `[1, 6]`.
    pub nodes: IntRange,
    /// Job length ("complexity"). Paper: `[50, 150]`.
    pub length: IntRange,
    /// Minimum required node performance. Paper: `[1, 2]`.
    pub min_perf: RealRange,
    /// The price-cap derivation factor (DESIGN.md note R3): the per-slot
    /// cap is `C = factor · price_base ^ min_perf`. Not specified by the
    /// paper; default `[0.75, 1.25]` — the same jitter interval the slot
    /// prices use — calibrated so the alternatives-per-job and time/cost
    /// gaps land near the paper's (see EXPERIMENTS.md).
    pub budget_factor: RealRange,
    /// The price base used in the cap derivation; keep equal to
    /// [`SlotGenConfig::price_base`].
    pub price_base: f64,
}

impl Default for JobGenConfig {
    /// The paper's Sec. 5 values plus the R3 default calibration.
    fn default() -> Self {
        JobGenConfig {
            jobs_per_batch: IntRange::new(3, 7),
            nodes: IntRange::new(1, 6),
            length: IntRange::new(50, 150),
            min_perf: RealRange::new(1.0, 2.0),
            budget_factor: RealRange::new(0.75, 1.25),
            price_base: 1.7,
        }
    }
}

impl JobGenConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first non-positive job count,
    /// node count, length, performance, budget factor, or price base.
    pub fn validate(&self) -> Result<(), ConfigError> {
        positive_int(self.jobs_per_batch.lo, "jobs_per_batch.lo")?;
        positive_int(self.nodes.lo, "nodes.lo")?;
        positive_int(self.length.lo, "length.lo")?;
        positive_real(self.min_perf.lo, "min_perf.lo")?;
        positive_real(self.budget_factor.lo, "budget_factor.lo")?;
        positive_real(self.price_base, "price_base")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let s = SlotGenConfig::default();
        assert_eq!((s.slot_count.lo, s.slot_count.hi), (120, 150));
        assert_eq!((s.slot_length.lo, s.slot_length.hi), (50, 300));
        assert_eq!((s.node_perf.lo, s.node_perf.hi), (1.0, 3.0));
        assert_eq!(s.same_start_probability, 0.4);
        assert_eq!((s.start_gap.lo, s.start_gap.hi), (0, 10));
        assert_eq!(s.price_base, 1.7);

        let j = JobGenConfig::default();
        assert_eq!((j.jobs_per_batch.lo, j.jobs_per_batch.hi), (3, 7));
        assert_eq!((j.nodes.lo, j.nodes.hi), (1, 6));
        assert_eq!((j.length.lo, j.length.hi), (50, 150));
        assert_eq!((j.min_perf.lo, j.min_perf.hi), (1.0, 2.0));

        s.validate().unwrap();
        j.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn reversed_int_range_panics() {
        let _ = IntRange::new(5, 4);
    }

    #[test]
    fn validation_errors_name_the_field() {
        let c = SlotGenConfig {
            same_start_probability: 1.5,
            ..SlotGenConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::NotAProbability {
                field: "same_start_probability"
            })
        );
        let c = SlotGenConfig {
            start_gap: IntRange { lo: -1, hi: 3 },
            ..SlotGenConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::Negative {
                field: "start_gap.lo"
            })
        );
        let j = JobGenConfig {
            nodes: IntRange { lo: 0, hi: 4 },
            ..JobGenConfig::default()
        };
        assert_eq!(
            j.validate(),
            Err(ConfigError::NotPositive { field: "nodes.lo" })
        );
    }

    #[test]
    fn config_error_display_is_never_empty() {
        let errors = [
            ConfigError::NotAProbability { field: "p" },
            ConfigError::NotPositive { field: "n" },
            ConfigError::Negative { field: "g" },
            ConfigError::InvertedBounds { field: "b" },
        ];
        for err in errors {
            assert!(!format!("{err}").is_empty());
            assert!(format!("{err}").contains(match err {
                ConfigError::NotAProbability { field }
                | ConfigError::NotPositive { field }
                | ConfigError::Negative { field }
                | ConfigError::InvertedBounds { field } => field,
            }));
        }
    }

    #[test]
    fn midpoints() {
        assert_eq!(IntRange::new(0, 10).mid(), 5.0);
        assert_eq!(RealRange::new(1.0, 2.0).mid(), 1.5);
    }
}
