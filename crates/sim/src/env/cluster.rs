//! Resource domains (clusters) and the environment they form.
//!
//! The paper's model assumes non-dedicated resources grouped in domains
//! ("clusters, computational nodes equipped with multicore processors"),
//! whose local managers publish vacant slots. The study itself generated
//! slot lists directly "instead of generating the whole distributed system
//! model"; this module builds that skipped substrate so the directly
//! generated lists can be validated against first principles.

use std::fmt;

use ecosched_core::{NodeId, Perf, Price, Resource, TimeDelta};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::{positive_int, positive_real, ConfigError, IntRange, RealRange};
use crate::rng_ext::{draw_int, draw_real};

/// Identifier of a resource domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainId(u32);

impl DomainId {
    /// Creates a domain identifier.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        DomainId(index)
    }

    /// Returns the underlying index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain{}", self.0)
    }
}

/// A cluster of computational nodes under one local resource manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    id: DomainId,
    resources: Vec<Resource>,
}

impl Domain {
    /// Creates a domain from its nodes.
    #[must_use]
    pub fn new(id: DomainId, resources: Vec<Resource>) -> Self {
        Domain { id, resources }
    }

    /// The domain identifier.
    #[must_use]
    pub const fn id(&self) -> DomainId {
        self.id
    }

    /// The nodes of the domain.
    #[must_use]
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Returns `true` for a nodeless domain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }
}

/// Configuration of the random environment generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Number of domains. Default `[2, 5]`.
    pub domains: IntRange,
    /// Nodes per domain. Default `[6, 16]`.
    pub nodes_per_domain: IntRange,
    /// Node performance, matching the slot study. Default `[1, 3]`.
    pub node_perf: RealRange,
    /// Price model base, matching the slot study. Default `1.7`.
    pub price_base: f64,
    /// Price jitter, matching the slot study. Default `[0.75, 1.25]`.
    pub price_jitter: RealRange,
    /// Scheduling horizon the local managers publish. Default `600`.
    pub horizon: i64,
    /// Local (owner) jobs per domain. Default `[6, 14]`.
    pub local_jobs_per_domain: IntRange,
    /// Nodes each local job occupies within its domain. Default `[1, 4]`.
    pub local_job_nodes: IntRange,
    /// Local job length. Default `[30, 150]`.
    pub local_job_length: IntRange,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            domains: IntRange::new(2, 5),
            nodes_per_domain: IntRange::new(6, 16),
            node_perf: RealRange::new(1.0, 3.0),
            price_base: 1.7,
            price_jitter: RealRange::new(0.75, 1.25),
            horizon: 600,
            local_jobs_per_domain: IntRange::new(6, 14),
            local_job_nodes: IntRange::new(1, 4),
            local_job_length: IntRange::new(30, 150),
        }
    }
}

impl EnvConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field:
    /// non-positive horizons, counts, or price parameters, or a negative
    /// local-job count.
    pub fn validate(&self) -> Result<(), ConfigError> {
        positive_int(self.horizon, "horizon")?;
        positive_int(self.domains.lo, "domains.lo")?;
        positive_int(self.nodes_per_domain.lo, "nodes_per_domain.lo")?;
        positive_real(self.node_perf.lo, "node_perf.lo")?;
        positive_real(self.price_base, "price_base")?;
        positive_real(self.price_jitter.lo, "price_jitter.lo")?;
        if self.local_jobs_per_domain.lo < 0 {
            return Err(ConfigError::Negative {
                field: "local_jobs_per_domain.lo",
            });
        }
        positive_int(self.local_job_nodes.lo, "local_job_nodes.lo")?;
        positive_int(self.local_job_length.lo, "local_job_length.lo")
    }
}

/// The distributed environment: all domains plus the published horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    domains: Vec<Domain>,
    horizon: TimeDelta,
}

impl Environment {
    /// Creates an environment from explicit domains.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive.
    #[must_use]
    pub fn new(domains: Vec<Domain>, horizon: TimeDelta) -> Self {
        assert!(horizon.is_positive(), "horizon must be positive");
        Environment { domains, horizon }
    }

    /// Randomly generates an environment.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`EnvConfig::validate`]).
    pub fn generate<R: Rng + ?Sized>(config: &EnvConfig, rng: &mut R) -> Self {
        config
            .validate()
            .expect("invalid environment configuration");
        let domain_count = draw_int(rng, config.domains) as usize;
        let mut next_node = 0u32;
        let domains = (0..domain_count)
            .map(|d| {
                let nodes = draw_int(rng, config.nodes_per_domain) as usize;
                let resources = (0..nodes)
                    .map(|_| {
                        let perf = draw_real(rng, config.node_perf);
                        let price =
                            draw_real(rng, config.price_jitter) * config.price_base.powf(perf);
                        let r = Resource::new(
                            NodeId::new(next_node),
                            Perf::from_f64(perf),
                            Price::from_f64(price),
                        );
                        next_node += 1;
                        r
                    })
                    .collect();
                Domain::new(DomainId::new(d as u32), resources)
            })
            .collect();
        Environment {
            domains,
            horizon: TimeDelta::new(config.horizon),
        }
    }

    /// The domains.
    #[must_use]
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// The published scheduling horizon.
    #[must_use]
    pub fn horizon(&self) -> TimeDelta {
        self.horizon
    }

    /// Total node count across domains.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.domains.iter().map(Domain::len).sum()
    }

    /// Iterates every node with its domain.
    pub fn nodes(&self) -> impl Iterator<Item = (DomainId, &Resource)> + '_ {
        self.domains
            .iter()
            .flat_map(|d| d.resources().iter().map(move |r| (d.id(), r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generation_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let env = Environment::generate(&EnvConfig::default(), &mut rng);
        assert!((2..=5).contains(&env.domains().len()));
        for d in env.domains() {
            assert!((6..=16).contains(&d.len()));
            for r in d.resources() {
                let p = r.perf().to_f64();
                assert!((1.0..=3.0).contains(&p));
            }
        }
        assert_eq!(env.node_count(), env.nodes().count());
    }

    #[test]
    fn node_ids_are_globally_unique() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let env = Environment::generate(&EnvConfig::default(), &mut rng);
        let mut ids: Vec<u32> = env.nodes().map(|(_, r)| r.id().index()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn explicit_construction() {
        let d = Domain::new(DomainId::new(0), vec![]);
        assert!(d.is_empty());
        let env = Environment::new(vec![d], TimeDelta::new(100));
        assert_eq!(env.horizon(), TimeDelta::new(100));
        assert_eq!(env.node_count(), 0);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_panics() {
        let _ = Environment::new(vec![], TimeDelta::ZERO);
    }

    #[test]
    fn display_of_domain_id() {
        assert_eq!(format!("{}", DomainId::new(2)), "domain2");
    }

    #[test]
    fn env_validation_errors_name_the_field() {
        let c = EnvConfig {
            horizon: 0,
            ..EnvConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::NotPositive { field: "horizon" })
        );
        let c = EnvConfig {
            nodes_per_domain: IntRange { lo: 0, hi: 4 },
            ..EnvConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::NotPositive {
                field: "nodes_per_domain.lo"
            })
        );
        EnvConfig::default().validate().unwrap();
    }
}
