//! The full distributed-environment substrate the paper's study skipped.
//!
//! Sec. 5 of the paper: "To perform a series of experiments we found it
//! more convenient to generate the ordered list of available slots with
//! pre-assigned set of features instead of generating the whole distributed
//! system model and obtain available slots from it." This module builds
//! that whole model — [`Environment`]s of resource [`cluster::Domain`]s,
//! owner job flows ([`generate_local_flow`]), and vacant-slot extraction
//! ([`extract_vacant_slots`]) — so the shortcut can be validated: slot
//! lists derived here feed the exact same scheduling pipeline as the
//! directly generated ones.

pub mod cluster;
pub mod extract;
pub mod local;

pub use cluster::{Domain, DomainId, EnvConfig, Environment};
pub use extract::extract_vacant_slots;
pub use local::{generate_local_flow, Occupancy};
