//! Local (owner) job flows: the occupancy that fragments each domain's
//! schedule into vacant slots.
//!
//! Owners run their own workloads alongside the VO's global flow; the
//! vacant slots the metascheduler sees are whatever the local schedules
//! leave free. Local jobs here are rigid parallel jobs placed inside one
//! domain; a multi-node local job occupies the *same* span on every chosen
//! node, which is exactly what produces the shared slot start times the
//! paper's generator models with its 0.4 same-start probability.

use std::collections::BTreeMap;

use ecosched_core::{NodeId, Span, TimeDelta, TimePoint};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::IntRange;
use crate::env::cluster::{EnvConfig, Environment};
use crate::rng_ext::draw_int;

/// Busy intervals per node, kept sorted and disjoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Occupancy {
    busy: BTreeMap<NodeId, Vec<Span>>,
}

impl Occupancy {
    /// Creates an empty occupancy map.
    #[must_use]
    pub fn new() -> Self {
        Occupancy::default()
    }

    /// Returns `true` if `span` does not collide with existing busy time on
    /// `node`.
    #[must_use]
    pub fn is_free(&self, node: NodeId, span: Span) -> bool {
        self.busy
            .get(&node)
            .is_none_or(|spans| spans.iter().all(|s| !s.overlaps(span)))
    }

    /// Marks `span` busy on `node`.
    ///
    /// # Panics
    ///
    /// Panics if the span collides with existing busy time — callers must
    /// check [`Occupancy::is_free`] first.
    pub fn occupy(&mut self, node: NodeId, span: Span) {
        assert!(self.is_free(node, span), "double-booked {node} at {span}");
        let spans = self.busy.entry(node).or_default();
        let pos = spans.partition_point(|s| s.start() < span.start());
        spans.insert(pos, span);
    }

    /// The busy spans on `node`, sorted by start.
    #[must_use]
    pub fn busy_spans(&self, node: NodeId) -> &[Span] {
        self.busy.get(&node).map_or(&[], Vec::as_slice)
    }

    /// The vacant spans on `node` within `[0, horizon)` — the complement of
    /// the busy set.
    #[must_use]
    pub fn vacancies(&self, node: NodeId, horizon: TimeDelta) -> Vec<Span> {
        let end = TimePoint::ZERO + horizon;
        let mut cursor = TimePoint::ZERO;
        let mut out = Vec::new();
        for span in self.busy_spans(node) {
            if span.start() > cursor {
                out.push(
                    Span::new(cursor, span.start().min(end)).expect("cursor precedes span start"),
                );
            }
            cursor = cursor.max(span.end());
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            out.push(Span::new(cursor, end).expect("cursor precedes horizon"));
        }
        out.retain(|s| !s.is_empty());
        out
    }

    /// Total busy node-ticks.
    #[must_use]
    pub fn total_busy(&self) -> TimeDelta {
        self.busy
            .values()
            .flat_map(|spans| spans.iter().map(|s| s.length()))
            .sum()
    }
}

/// Generates a local job flow over `env`, returning the resulting
/// occupancy. Placement is best-effort: a drawn job that cannot fit
/// anywhere on its drawn nodes is skipped, mirroring a local manager that
/// only admits what its schedule can hold.
pub fn generate_local_flow<R: Rng + ?Sized>(
    env: &Environment,
    config: &EnvConfig,
    rng: &mut R,
) -> Occupancy {
    let mut occupancy = Occupancy::new();
    let horizon = env.horizon().ticks();
    for domain in env.domains() {
        let jobs = draw_int(rng, config.local_jobs_per_domain);
        for _ in 0..jobs {
            let want = (draw_int(rng, config.local_job_nodes) as usize).min(domain.len());
            if want == 0 {
                continue;
            }
            let length = draw_int(rng, config.local_job_length).min(horizon);
            let latest_start = horizon - length;
            let start = draw_int(rng, IntRange::new(0, latest_start.max(0)));
            let span = Span::new(TimePoint::new(start), TimePoint::new(start + length))
                .expect("length is non-negative");

            // Choose nodes that are free over the span, preferring a random
            // subset — a simple admission policy.
            let mut candidates: Vec<NodeId> = domain
                .resources()
                .iter()
                .map(|r| r.id())
                .filter(|&n| occupancy.is_free(n, span))
                .collect();
            if candidates.len() < want {
                continue; // local job rejected by the local manager
            }
            candidates.shuffle(rng);
            for &node in candidates.iter().take(want) {
                occupancy.occupy(node, span);
            }
        }
    }
    occupancy
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sp(a: i64, b: i64) -> Span {
        Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    #[test]
    fn occupancy_tracks_busy_and_free() {
        let mut occ = Occupancy::new();
        let n = NodeId::new(0);
        assert!(occ.is_free(n, sp(0, 100)));
        occ.occupy(n, sp(20, 40));
        occ.occupy(n, sp(60, 80));
        assert!(!occ.is_free(n, sp(30, 50)));
        assert!(occ.is_free(n, sp(40, 60)));
        assert_eq!(occ.total_busy(), TimeDelta::new(40));
    }

    #[test]
    fn vacancies_are_the_exact_complement() {
        let mut occ = Occupancy::new();
        let n = NodeId::new(0);
        occ.occupy(n, sp(20, 40));
        occ.occupy(n, sp(60, 80));
        let v = occ.vacancies(n, TimeDelta::new(100));
        assert_eq!(v, vec![sp(0, 20), sp(40, 60), sp(80, 100)]);
        // Busy + vacant = horizon.
        let vacant: TimeDelta = v.iter().map(|s| s.length()).sum();
        assert_eq!(vacant + occ.total_busy(), TimeDelta::new(100));
    }

    #[test]
    fn vacancies_handle_edges() {
        let mut occ = Occupancy::new();
        let n = NodeId::new(0);
        occ.occupy(n, sp(0, 30));
        occ.occupy(n, sp(70, 100));
        assert_eq!(occ.vacancies(n, TimeDelta::new(100)), vec![sp(30, 70)]);
        // Untouched node: one full-horizon vacancy.
        assert_eq!(
            occ.vacancies(NodeId::new(1), TimeDelta::new(50)),
            vec![sp(0, 50)]
        );
        // Fully busy node: no vacancy.
        let mut full = Occupancy::new();
        full.occupy(n, sp(0, 50));
        assert!(full.vacancies(n, TimeDelta::new(50)).is_empty());
    }

    #[test]
    fn busy_beyond_horizon_is_clamped_out() {
        let mut occ = Occupancy::new();
        let n = NodeId::new(0);
        occ.occupy(n, sp(40, 200));
        assert_eq!(occ.vacancies(n, TimeDelta::new(100)), vec![sp(0, 40)]);
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn double_booking_panics() {
        let mut occ = Occupancy::new();
        occ.occupy(NodeId::new(0), sp(0, 10));
        occ.occupy(NodeId::new(0), sp(5, 15));
    }

    #[test]
    fn local_flow_is_consistent() {
        let cfg = EnvConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let env = Environment::generate(&cfg, &mut rng);
        let occ = generate_local_flow(&env, &cfg, &mut rng);
        // Some load was placed…
        assert!(occ.total_busy().is_positive());
        // …and every busy span stays within the horizon start.
        for (_, r) in env.nodes() {
            for span in occ.busy_spans(r.id()) {
                assert!(span.start() >= TimePoint::ZERO);
                assert!(span.length().is_positive());
            }
        }
    }

    #[test]
    fn multi_node_local_jobs_share_spans() {
        // With ≥6 nodes per domain and jobs up to 4 nodes, shared busy
        // spans (and hence shared release times) appear readily.
        let cfg = EnvConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let env = Environment::generate(&cfg, &mut rng);
        let occ = generate_local_flow(&env, &cfg, &mut rng);
        let mut ends: Vec<TimePoint> = env
            .nodes()
            .flat_map(|(_, r)| occ.busy_spans(r.id()).iter().map(|s| s.end()))
            .collect();
        let before = ends.len();
        ends.sort();
        ends.dedup();
        assert!(ends.len() < before, "expected shared local-job end times");
    }
}
