//! Vacant-slot extraction: from local schedules to the metascheduler's
//! ordered slot list.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ecosched_core::{Slot, SlotId, SlotList, Span};

use crate::env::cluster::Environment;
use crate::env::local::Occupancy;

/// Builds the start-ordered vacant-slot list the metascheduler works on:
/// for every node, the complement of its local busy time within the
/// published horizon, priced and rated per the node's [`ecosched_core::Resource`].
///
/// Each node's vacancies come out of [`Occupancy::vacancies`] already
/// start-ordered, so a k-way merge over the per-node streams yields the
/// globally ordered sequence; assigning ids in pop order then satisfies the
/// strict `(start, id)` order that [`SlotList::from_sorted_slots`] validates
/// in a single `O(m)` pass — no re-sorting, no per-insert search.
///
/// # Examples
///
/// ```
/// use ecosched_sim::env::{extract_vacant_slots, EnvConfig, Environment, generate_local_flow};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let cfg = EnvConfig::default();
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let env = Environment::generate(&cfg, &mut rng);
/// let occupancy = generate_local_flow(&env, &cfg, &mut rng);
/// let list = extract_vacant_slots(&env, &occupancy);
/// assert!(list.len() >= env.node_count()); // fragmentation only adds slots
/// ```
#[must_use]
pub fn extract_vacant_slots(env: &Environment, occupancy: &Occupancy) -> SlotList {
    let mut streams: Vec<(&ecosched_core::Resource, std::vec::IntoIter<Span>)> = env
        .nodes()
        .map(|(_, resource)| {
            (
                resource,
                occupancy
                    .vacancies(resource.id(), env.horizon())
                    .into_iter(),
            )
        })
        .collect();

    // Min-heap of (next span start, stream index); ties pop in stream
    // order, keeping the merge deterministic.
    let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::with_capacity(streams.len());
    let mut heads: Vec<Option<Span>> = Vec::with_capacity(streams.len());
    for (i, (_, stream)) in streams.iter_mut().enumerate() {
        let head = stream.next();
        if let Some(span) = head {
            heap.push(Reverse((span.start().ticks(), i)));
        }
        heads.push(head);
    }

    let mut slots: Vec<Slot> = Vec::new();
    let mut next = 0u64;
    while let Some(Reverse((_, i))) = heap.pop() {
        let span = heads[i].take().expect("heap entries have a buffered span");
        let (resource, stream) = &mut streams[i];
        let slot = Slot::on_resource(SlotId::new(next), resource, span)
            .expect("vacancies are non-empty by construction");
        next += 1;
        slots.push(slot);
        if let Some(span) = stream.next() {
            heap.push(Reverse((span.start().ticks(), i)));
            heads[i] = Some(span);
        }
    }

    SlotList::from_sorted_slots(slots).expect("the merge yields strict (start, id) order")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::cluster::EnvConfig;
    use crate::env::local::generate_local_flow;
    use ecosched_core::{TimeDelta, TimePoint};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(seed: u64) -> (Environment, Occupancy, SlotList) {
        let cfg = EnvConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let env = Environment::generate(&cfg, &mut rng);
        let occ = generate_local_flow(&env, &cfg, &mut rng);
        let list = extract_vacant_slots(&env, &occ);
        (env, occ, list)
    }

    #[test]
    fn extracted_list_is_valid_and_ordered() {
        let (_, _, list) = setup(1);
        list.validate().unwrap();
        assert!(!list.is_empty());
    }

    #[test]
    fn ids_follow_start_order() {
        let (_, _, list) = setup(6);
        for (a, b) in list.iter().zip(list.iter().skip(1)) {
            assert!(
                (a.start(), a.id()) < (b.start(), b.id()),
                "merge must emit strictly increasing (start, id)"
            );
        }
    }

    #[test]
    fn vacancy_time_is_conserved() {
        let (env, occ, list) = setup(2);
        let horizon_total = TimeDelta::new(env.horizon().ticks() * env.node_count() as i64);
        assert_eq!(list.total_vacant_time() + occ.total_busy(), horizon_total);
    }

    #[test]
    fn slots_inherit_node_attributes() {
        let (env, _, list) = setup(3);
        for slot in &list {
            let resource = env
                .nodes()
                .map(|(_, r)| r)
                .find(|r| r.id() == slot.node())
                .expect("slot nodes come from the environment");
            assert_eq!(slot.perf(), resource.perf());
            assert_eq!(slot.price(), resource.price());
        }
    }

    #[test]
    fn slots_stay_inside_horizon() {
        let (env, _, list) = setup(4);
        let end = TimePoint::ZERO + env.horizon();
        for slot in &list {
            assert!(slot.start() >= TimePoint::ZERO);
            assert!(slot.end() <= end);
        }
    }

    #[test]
    fn empty_occupancy_yields_one_slot_per_node() {
        let cfg = EnvConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let env = Environment::generate(&cfg, &mut rng);
        let list = extract_vacant_slots(&env, &Occupancy::new());
        assert_eq!(list.len(), env.node_count());
        for slot in &list {
            assert_eq!(slot.length(), env.horizon());
        }
    }
}
