//! Vacant-slot extraction: from local schedules to the metascheduler's
//! ordered slot list.

use ecosched_core::{Slot, SlotList};

use crate::env::cluster::Environment;
use crate::env::local::Occupancy;

/// Builds the start-ordered vacant-slot list the metascheduler works on:
/// for every node, the complement of its local busy time within the
/// published horizon, priced and rated per the node's [`ecosched_core::Resource`].
///
/// # Examples
///
/// ```
/// use ecosched_sim::env::{extract_vacant_slots, EnvConfig, Environment, generate_local_flow};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let cfg = EnvConfig::default();
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let env = Environment::generate(&cfg, &mut rng);
/// let occupancy = generate_local_flow(&env, &cfg, &mut rng);
/// let list = extract_vacant_slots(&env, &occupancy);
/// assert!(list.len() >= env.node_count()); // fragmentation only adds slots
/// ```
#[must_use]
pub fn extract_vacant_slots(env: &Environment, occupancy: &Occupancy) -> SlotList {
    let mut list = SlotList::new();
    let mut slots: Vec<(u64, Slot)> = Vec::new();
    let mut next = 0u64;
    for (_, resource) in env.nodes() {
        for span in occupancy.vacancies(resource.id(), env.horizon()) {
            let id = ecosched_core::SlotId::new(next);
            next += 1;
            let slot = Slot::on_resource(id, resource, span)
                .expect("vacancies are non-empty by construction");
            slots.push((id.raw(), slot));
        }
    }
    for (_, slot) in slots {
        list.insert(slot).expect("fresh ids cannot collide");
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::cluster::EnvConfig;
    use crate::env::local::generate_local_flow;
    use ecosched_core::{TimeDelta, TimePoint};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(seed: u64) -> (Environment, Occupancy, SlotList) {
        let cfg = EnvConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let env = Environment::generate(&cfg, &mut rng);
        let occ = generate_local_flow(&env, &cfg, &mut rng);
        let list = extract_vacant_slots(&env, &occ);
        (env, occ, list)
    }

    #[test]
    fn extracted_list_is_valid_and_ordered() {
        let (_, _, list) = setup(1);
        list.validate().unwrap();
        assert!(!list.is_empty());
    }

    #[test]
    fn vacancy_time_is_conserved() {
        let (env, occ, list) = setup(2);
        let horizon_total = TimeDelta::new(env.horizon().ticks() * env.node_count() as i64);
        assert_eq!(list.total_vacant_time() + occ.total_busy(), horizon_total);
    }

    #[test]
    fn slots_inherit_node_attributes() {
        let (env, _, list) = setup(3);
        for slot in &list {
            let resource = env
                .nodes()
                .map(|(_, r)| r)
                .find(|r| r.id() == slot.node())
                .expect("slot nodes come from the environment");
            assert_eq!(slot.perf(), resource.perf());
            assert_eq!(slot.price(), resource.price());
        }
    }

    #[test]
    fn slots_stay_inside_horizon() {
        let (env, _, list) = setup(4);
        let end = TimePoint::ZERO + env.horizon();
        for slot in &list {
            assert!(slot.start() >= TimePoint::ZERO);
            assert!(slot.end() <= end);
        }
    }

    #[test]
    fn empty_occupancy_yields_one_slot_per_node() {
        let cfg = EnvConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let env = Environment::generate(&cfg, &mut rng);
        let list = extract_vacant_slots(&env, &Occupancy::new());
        assert_eq!(list.len(), env.node_count());
        for slot in &list {
            assert_eq!(slot.length(), env.horizon());
        }
    }
}
