//! Scheduling strategies — the paper's third future-work thread (Sec. 7,
//! after refs [13, 14]): because nodes can fail between planning and
//! execution, the metascheduler should hold "a set of versions of
//! scheduling, or a strategy, … instead of a single version".
//!
//! A [`ScheduleStrategy`] is an ordered list of complete assignments
//! (versions). Version 1 is the cost-optimal plan; each further version is
//! built by *forbidding the nodes used by all earlier versions*, so the
//! versions degrade gracefully: when a node fails, the first version whose
//! node set avoids every failed node executes unchanged.

use std::collections::BTreeSet;

use ecosched_core::{JobAlternatives, NodeId, TimeDelta};
use ecosched_optimize::{min_cost_under_time, Assignment, OptimizeError};
use serde::{Deserialize, Serialize};

/// Configuration of strategy construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrategyConfig {
    /// Maximum number of versions to build.
    pub max_versions: usize,
    /// When a job has no alternative avoiding the previously used nodes,
    /// fall back to its full alternative set (yielding a version with
    /// partial node overlap) instead of stopping.
    pub allow_overlap_fallback: bool,
}

impl Default for StrategyConfig {
    fn default() -> Self {
        StrategyConfig {
            max_versions: 3,
            allow_overlap_fallback: true,
        }
    }
}

/// One scheduling version: a complete assignment plus the nodes it uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyVersion {
    /// The combination to execute.
    pub assignment: Assignment,
    /// Every node any chosen window runs on.
    pub nodes: BTreeSet<NodeId>,
}

impl StrategyVersion {
    /// Returns `true` if this version uses none of the failed nodes.
    #[must_use]
    pub fn survives(&self, failed: &BTreeSet<NodeId>) -> bool {
        self.nodes.is_disjoint(failed)
    }
}

/// An ordered set of scheduling versions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStrategy {
    versions: Vec<StrategyVersion>,
}

impl ScheduleStrategy {
    /// Builds up to `config.max_versions` versions over the covered jobs'
    /// alternatives. Every version minimizes total cost within the loose
    /// quota `Σ_i max_j t_ij` (always feasible), the later ones over
    /// progressively node-disjoint alternative subsets.
    ///
    /// # Errors
    ///
    /// Propagates [`OptimizeError`] from the first version's optimization
    /// (a malformed or empty table). Later versions stop silently when no
    /// further node-diverse version exists.
    pub fn build(
        alternatives: &[JobAlternatives],
        config: &StrategyConfig,
    ) -> Result<Self, OptimizeError> {
        let quota: TimeDelta = alternatives
            .iter()
            .map(|ja| ja.iter().map(|a| a.time()).max().unwrap_or(TimeDelta::ZERO))
            .sum();
        let first = min_cost_under_time(alternatives, quota.max(TimeDelta::new(1)))?;
        let mut versions = vec![version_from(alternatives, first)];
        let mut forbidden: BTreeSet<NodeId> = versions[0].nodes.clone();

        while versions.len() < config.max_versions {
            // Restrict each job to alternatives avoiding every node used
            // so far.
            let mut restricted: Vec<JobAlternatives> = Vec::with_capacity(alternatives.len());
            let mut fully_diverse = true;
            for ja in alternatives {
                let mut filtered = JobAlternatives::new(ja.job());
                for alt in ja {
                    let clean = alt
                        .window()
                        .slots()
                        .iter()
                        .all(|ws| !forbidden.contains(&ws.node()));
                    if clean {
                        filtered.push(alt.clone());
                    }
                }
                if filtered.is_empty() {
                    if !config.allow_overlap_fallback {
                        return Ok(ScheduleStrategy { versions });
                    }
                    fully_diverse = false;
                    filtered = ja.clone();
                }
                restricted.push(filtered);
            }
            let Ok(assignment) = min_cost_under_time(&restricted, quota.max(TimeDelta::new(1)))
            else {
                break;
            };
            let version = version_from(&restricted, assignment);
            if versions.iter().any(|v| v.nodes == version.nodes) {
                // No new diversity left; a repeat version adds nothing.
                break;
            }
            forbidden.extend(version.nodes.iter().copied());
            versions.push(version);
            if !fully_diverse && versions.len() >= config.max_versions {
                break;
            }
        }
        Ok(ScheduleStrategy { versions })
    }

    /// The versions, best first.
    #[must_use]
    pub fn versions(&self) -> &[StrategyVersion] {
        &self.versions
    }

    /// Number of versions held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Returns `true` if the strategy holds no version (never produced by
    /// [`ScheduleStrategy::build`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// The first version that avoids every failed node, if any.
    #[must_use]
    pub fn select(&self, failed: &BTreeSet<NodeId>) -> Option<&StrategyVersion> {
        self.versions.iter().find(|v| v.survives(failed))
    }
}

fn version_from(alternatives: &[JobAlternatives], assignment: Assignment) -> StrategyVersion {
    let mut nodes = BTreeSet::new();
    for choice in assignment.choices() {
        let ja = alternatives
            .iter()
            .find(|ja| ja.job() == choice.job)
            .expect("choices refer to the optimized table");
        for ws in ja.alternatives()[choice.alternative].window().slots() {
            nodes.insert(ws.node());
        }
    }
    StrategyVersion { assignment, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{
        Alternative, JobId, Perf, Price, Slot, SlotId, Span, TimePoint, Window, WindowSlot,
    };

    /// One job with one single-node alternative per listed (node, price).
    fn job_with_options(job: u32, options: &[(u32, i64)]) -> JobAlternatives {
        let mut ja = JobAlternatives::new(JobId::new(job));
        for &(node, price) in options {
            let slot = Slot::new(
                SlotId::new(u64::from(node)),
                NodeId::new(node),
                Perf::UNIT,
                Price::from_credits(price),
                Span::new(TimePoint::ZERO, TimePoint::new(1_000)).unwrap(),
            )
            .unwrap();
            let ws = WindowSlot::from_slot(&slot, TimeDelta::new(10)).unwrap();
            ja.push(Alternative::new(
                JobId::new(job),
                Window::new(TimePoint::ZERO, vec![ws]).unwrap(),
            ));
        }
        ja
    }

    #[test]
    fn builds_node_disjoint_versions() {
        // Each job can run on node 0/1 (cheap) or node 2/3 (pricey).
        let table = vec![
            job_with_options(0, &[(0, 1), (2, 5)]),
            job_with_options(1, &[(1, 1), (3, 5)]),
        ];
        let strategy = ScheduleStrategy::build(&table, &StrategyConfig::default()).unwrap();
        assert!(strategy.len() >= 2);
        let v1 = &strategy.versions()[0];
        let v2 = &strategy.versions()[1];
        // Best version takes the cheap nodes; the backup the pricey ones.
        assert_eq!(v1.nodes, BTreeSet::from([NodeId::new(0), NodeId::new(1)]));
        assert_eq!(v2.nodes, BTreeSet::from([NodeId::new(2), NodeId::new(3)]));
        assert!(v1.assignment.total_cost() < v2.assignment.total_cost());
    }

    #[test]
    fn select_falls_through_failed_versions() {
        let table = vec![
            job_with_options(0, &[(0, 1), (2, 5)]),
            job_with_options(1, &[(1, 1), (3, 5)]),
        ];
        let strategy = ScheduleStrategy::build(&table, &StrategyConfig::default()).unwrap();
        // No failures → the optimum.
        assert_eq!(
            strategy.select(&BTreeSet::new()).unwrap(),
            &strategy.versions()[0]
        );
        // Node 0 fails → version 2 executes unchanged.
        let failed = BTreeSet::from([NodeId::new(0)]);
        let chosen = strategy.select(&failed).unwrap();
        assert!(chosen.survives(&failed));
        assert_eq!(chosen, &strategy.versions()[1]);
        // Everything fails → no version survives.
        let all = BTreeSet::from([
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
        ]);
        assert!(strategy.select(&all).is_none());
    }

    #[test]
    fn single_option_jobs_yield_a_single_version_without_fallback() {
        let table = vec![job_with_options(0, &[(0, 1)])];
        let config = StrategyConfig {
            max_versions: 3,
            allow_overlap_fallback: false,
        };
        let strategy = ScheduleStrategy::build(&table, &config).unwrap();
        assert_eq!(strategy.len(), 1);
    }

    #[test]
    fn overlap_fallback_does_not_duplicate_versions() {
        let table = vec![job_with_options(0, &[(0, 1)])];
        let strategy = ScheduleStrategy::build(&table, &StrategyConfig::default()).unwrap();
        // The fallback re-derives the same node set, which is dropped.
        assert_eq!(strategy.len(), 1);
        assert!(!strategy.is_empty());
    }

    #[test]
    fn max_versions_is_honoured() {
        let table = vec![job_with_options(
            0,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)],
        )];
        let config = StrategyConfig {
            max_versions: 4,
            allow_overlap_fallback: true,
        };
        let strategy = ScheduleStrategy::build(&table, &config).unwrap();
        assert_eq!(strategy.len(), 4);
        // Versions are increasingly expensive: cost-optimal first.
        for pair in strategy.versions().windows(2) {
            assert!(pair[0].assignment.total_cost() <= pair[1].assignment.total_cost());
        }
    }

    #[test]
    fn empty_table_is_an_error() {
        assert!(ScheduleStrategy::build(&[], &StrategyConfig::default()).is_err());
    }
}
