//! The `JobGenerator` of the paper's Sec. 5: generates job batches with the
//! study's distributions.

use ecosched_core::{Batch, Job, JobId, Perf, Price, ResourceRequest, TimeDelta};
use rand::Rng;

use crate::config::JobGenConfig;
use crate::rng_ext::{draw_int, draw_real};

/// Generates job batches per the paper's distributions.
///
/// The paper's `JobGenerator` omits a distribution for the price cap `C`;
/// per DESIGN.md note R3 we derive it from the job's own minimum
/// performance requirement: `C = factor · price_base^min_perf`, with
/// `factor` uniform in [`JobGenConfig::budget_factor`]. This makes `C`
/// track the market price of the slowest acceptable node, which is the
/// natural "minimum acceptable price/quality" reading of Sec. 6.
///
/// # Examples
///
/// ```
/// use ecosched_sim::{JobGenConfig, JobGenerator};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let batch = JobGenerator::new(JobGenConfig::default()).generate(&mut rng);
/// assert!((3..=7).contains(&batch.len()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobGenerator {
    config: JobGenConfig,
}

impl JobGenerator {
    /// Creates a generator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`JobGenConfig::validate`]).
    #[must_use]
    pub fn new(config: JobGenConfig) -> Self {
        config
            .validate()
            .expect("invalid job generator configuration");
        JobGenerator { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &JobGenConfig {
        &self.config
    }

    /// Generates one batch.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Batch {
        let count = draw_int(rng, self.config.jobs_per_batch) as usize;
        self.generate_exact(rng, count)
    }

    /// Generates a batch with exactly `count` jobs.
    pub fn generate_exact<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Batch {
        let cfg = &self.config;
        let jobs: Vec<Job> = (0..count)
            .map(|i| {
                let nodes = draw_int(rng, cfg.nodes) as usize;
                let length = draw_int(rng, cfg.length);
                let min_perf = draw_real(rng, cfg.min_perf);
                let factor = draw_real(rng, cfg.budget_factor);
                let cap = factor * cfg.price_base.powf(min_perf);
                let request = ResourceRequest::new(
                    nodes,
                    TimeDelta::new(length),
                    Perf::from_f64(min_perf),
                    Price::from_f64(cap),
                )
                .expect("generated requests are valid by construction");
                Job::new(JobId::new(i as u32), request)
            })
            .collect();
        Batch::from_jobs(jobs).expect("sequential ids cannot collide")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn generate(seed: u64) -> Batch {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        JobGenerator::new(JobGenConfig::default()).generate(&mut rng)
    }

    #[test]
    fn respects_batch_size_bounds() {
        for seed in 0..20 {
            let batch = generate(seed);
            assert!((3..=7).contains(&batch.len()));
        }
    }

    #[test]
    fn requests_respect_distributions() {
        let batch = generate(3);
        for job in &batch {
            let r = job.request();
            assert!((1..=6).contains(&r.nodes()));
            assert!((50..=150).contains(&r.wall_time().ticks()));
            let p = r.min_perf().to_f64();
            assert!((1.0..=2.0).contains(&p));
            let cap = r.price_cap().to_f64();
            let base = 1.7f64.powf(p);
            assert!(
                cap >= 0.74 * base && cap <= 1.26 * base,
                "cap {cap} vs base {base}"
            );
        }
    }

    #[test]
    fn generation_is_reproducible() {
        assert_eq!(generate(4), generate(4));
        assert_ne!(generate(4), generate(5));
    }

    #[test]
    fn exact_count_variant() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let batch = JobGenerator::new(JobGenConfig::default()).generate_exact(&mut rng, 12);
        assert_eq!(batch.len(), 12);
    }

    #[test]
    fn ids_are_sequential_priorities() {
        let batch = generate(8);
        for (i, job) in batch.iter().enumerate() {
            assert_eq!(job.id().index(), i as u32);
        }
    }
}
