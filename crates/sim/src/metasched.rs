//! The metascheduler loop: job batch scheduling runs iteratively on
//! periodically updated local schedules (paper Sec. 1–2).
//!
//! Each cycle the local managers publish fresh vacant slots, newly arrived
//! jobs join whatever was postponed before, and one scheduling iteration
//! runs. Jobs that fail to accumulate `N` suitable slots are carried to the
//! next cycle, exactly as the paper prescribes.
//!
//! # Revocation-tolerant execution
//!
//! The paper's Sec. 5 study keeps the environment static between the
//! combination optimization and "scheduled". Our extension inserts an
//! execution step: a [`RevocationModel`] withdraws vacant regions after
//! commitment, and a three-tier repair pass recovers each broken lease
//! within a bounded attempt budget ([`RepairPolicy`]):
//!
//! 1. **failover** — adopt a surviving pre-computed alternative (they are
//!    pairwise disjoint by construction, but must be re-validated against
//!    regions consumed by other jobs and against the revocations);
//! 2. **bounded repair search** — re-run the window search for just the
//!    broken job on the post-revocation execution list, resuming from the
//!    broken window's start via the incremental checkpoint machinery;
//! 3. **postpone** — carry the job to the next cycle with a
//!    [`PostponeReason`].
//!
//! Every job therefore ends each cycle in a terminal [`JobFate`], and
//! [`RepairStats`] accounts for 100% of the injected revocations.

use ecosched_core::{
    Batch, Job, JobId, Lease, LeaseOrigin, Money, ResourceRequest, Revocation, Slot, SlotList,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use ecosched_optimize::{IncrementalOptimizer, OptStats};
use ecosched_select::{repair_search, try_adopt_window, RepairError, ScanStats, SlotSelector};

use crate::config::{JobGenConfig, SlotGenConfig};
use crate::iteration::{run_iteration_cached_with, IterationConfig, IterationError, Parallelism};
use crate::job_gen::JobGenerator;
use crate::revocation::{RepairStats, RevocationConfig, RevocationModel};
use crate::slot_gen::SlotGenerator;

/// Why a job left a cycle unscheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PostponeReason {
    /// The alternatives search found no suitable window (the paper's
    /// original postpone path).
    NoAlternatives,
    /// Revocation broke the lease, every surviving alternative failed
    /// re-validation, and the repair search found no replacement.
    AllAlternativesStale,
    /// The repair attempt budget ran out before a replacement was secured.
    RepairBudgetExhausted,
}

/// The terminal state of one job at the end of a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobFate {
    /// The planned window survived the cycle untouched.
    ScheduledIntact,
    /// Revocation broke the plan; a pre-computed alternative took over.
    FailedOver {
        /// Index of the adopted alternative within the job's set.
        alternative: usize,
    },
    /// A bounded repair search found a fresh window on the survivors.
    Repaired,
    /// The job is carried to the next cycle.
    Postponed(PostponeReason),
}

impl JobFate {
    /// Returns `true` when the job holds a window at cycle end.
    #[must_use]
    pub fn is_scheduled(&self) -> bool {
        !matches!(self, JobFate::Postponed(_))
    }
}

/// Bounds the per-lease recovery work.
///
/// Each broken lease may spend at most `max_attempts` recovery attempts,
/// where one attempt is either one failover re-validation or one bounded
/// repair scan. Exhausting the budget postpones the job with
/// [`PostponeReason::RepairBudgetExhausted`].
///
/// # Earlier-start exclusion
///
/// The tier-2 repair scan deliberately resumes **at the broken window's
/// start** (via the incremental checkpoint machinery's `resume_from`),
/// never earlier. Windows beginning before the broken plan are excluded
/// by design: the original search already walked that prefix against a
/// strictly *larger* availability list and committed or rejected every
/// start point in it, so under slot subtraction (which only removes
/// availability) no start earlier than the original plan can newly become
/// feasible. Skipping the prefix keeps the repair O(survivors past the
/// anchor) instead of O(list) without giving up any window the sequential
/// rescan could have found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairPolicy {
    /// Maximum recovery attempts (validations plus scans) per broken lease.
    pub max_attempts: u32,
    /// When the bounded anchored repair is exhausted — the attempt budget
    /// ran out, or the anchored scan came up dry — retry **once** with a
    /// full rescan from the start of the execution list before
    /// postponing. This is the escape hatch from the earlier-start
    /// exclusion: under pure slot *subtraction* no earlier start can
    /// newly become feasible, but broken leases **release** their
    /// surviving fragments back into the list first, so a fragment of a
    /// pre-anchor slot can make a window feasible that starts before the
    /// broken plan. The full rescan is the only tier that can see it.
    /// Costs one O(list) scan per otherwise-postponed lease; default off.
    pub full_rescan_on_exhaustion: bool,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy {
            max_attempts: 8,
            full_rescan_on_exhaustion: false,
        }
    }
}

/// Summary of one metascheduler cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleSummary {
    /// Jobs in the cycle's batch (new + carried over).
    pub batch_size: usize,
    /// Jobs holding a window at cycle end (intact + failed over +
    /// repaired).
    pub scheduled: usize,
    /// Of the scheduled jobs, how many kept their planned window.
    pub scheduled_intact: usize,
    /// Of the scheduled jobs, how many adopted a surviving alternative.
    pub failed_over: usize,
    /// Of the scheduled jobs, how many hold a freshly searched window.
    pub repaired: usize,
    /// Jobs postponed to the next cycle.
    pub postponed: usize,
    /// Of the postponed jobs, how many were already carried over before.
    pub postponed_again: usize,
    /// Mean per-job execution time over the cycle's final leases (0 when
    /// no job holds a window).
    pub avg_time: f64,
    /// Mean per-job execution cost over the cycle's final leases.
    pub avg_cost: f64,
    /// Fault-and-repair accounting for the cycle.
    pub repair: RepairStats,
    /// Combination-optimizer cache accounting for the cycle (rows reused
    /// vs rebuilt across the shared [`ecosched_optimize::IncrementalOptimizer`]).
    pub opt: OptStats,
}

/// The report of a multi-cycle metascheduler run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetaschedulerReport {
    /// Per-cycle summaries, in order.
    pub cycles: Vec<CycleSummary>,
}

impl MetaschedulerReport {
    /// Total jobs scheduled across all cycles.
    #[must_use]
    pub fn total_scheduled(&self) -> usize {
        self.cycles.iter().map(|c| c.scheduled).sum()
    }

    /// Jobs still postponed after the final cycle.
    #[must_use]
    pub fn final_backlog(&self) -> usize {
        self.cycles.last().map_or(0, |c| c.postponed)
    }

    /// Fault-and-repair totals over all cycles.
    #[must_use]
    pub fn repair_totals(&self) -> RepairStats {
        let mut total = RepairStats::default();
        for c in &self.cycles {
            total.merge(&c.repair);
        }
        total
    }

    /// Combination-optimizer cache totals over all cycles.
    #[must_use]
    pub fn opt_totals(&self) -> OptStats {
        let mut total = OptStats::default();
        for c in &self.cycles {
            total.merge(&c.opt);
        }
        total
    }
}

/// Everything one cycle decided, for tests and deep analysis.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CycleTrace {
    /// The batch's resource requests, in batch (priority) order.
    pub requests: Vec<ResourceRequest>,
    /// The terminal fate of each job, in batch order.
    pub fates: Vec<JobFate>,
    /// The leases held at cycle end (scheduled jobs only, batch order).
    pub leases: Vec<Lease>,
    /// The revocations injected this cycle.
    pub revocations: Vec<Revocation>,
}

/// A [`MetaschedulerReport`] plus per-cycle traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedRun {
    /// The per-cycle summaries.
    pub report: MetaschedulerReport,
    /// One trace per cycle, in order.
    pub traces: Vec<CycleTrace>,
}

/// The iterative metascheduler.
#[derive(Debug, Clone)]
pub struct Metascheduler {
    slot_gen: SlotGenerator,
    job_gen: JobGenerator,
    config: IterationConfig,
    revocation: RevocationModel,
    policy: RepairPolicy,
    parallelism: Parallelism,
}

impl Metascheduler {
    /// Creates a metascheduler over the given generator configurations,
    /// with revocation disabled.
    ///
    /// # Panics
    ///
    /// Panics if either generator configuration is invalid.
    #[must_use]
    pub fn new(
        slot_config: SlotGenConfig,
        job_config: JobGenConfig,
        config: IterationConfig,
    ) -> Self {
        Metascheduler {
            slot_gen: SlotGenerator::new(slot_config),
            job_gen: JobGenerator::new(job_config),
            config,
            revocation: RevocationModel::new(RevocationConfig::none()),
            policy: RepairPolicy::default(),
            parallelism: Parallelism::default(),
        }
    }

    /// Enables the given revocation model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`RevocationConfig::validate`]).
    #[must_use]
    pub fn with_revocation(mut self, config: RevocationConfig) -> Self {
        self.revocation = RevocationModel::new(config);
        self
    }

    /// Overrides the repair attempt budget.
    #[must_use]
    pub fn with_repair_policy(mut self, policy: RepairPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the worker-thread budget for each cycle's scheduling
    /// iteration (see [`Parallelism`]). An execution knob only: reports
    /// and traces are byte-identical at every thread count.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Runs `cycles` scheduling cycles with `selector`, carrying postponed
    /// jobs forward.
    ///
    /// # Errors
    ///
    /// Propagates [`IterationError`] from any cycle.
    pub fn run<R: Rng + ?Sized>(
        &self,
        selector: impl SlotSelector + Copy,
        cycles: usize,
        rng: &mut R,
    ) -> Result<MetaschedulerReport, IterationError> {
        self.run_traced(selector, cycles, rng).map(|t| t.report)
    }

    /// Like [`Metascheduler::run`], but also returns per-cycle traces
    /// (leases, fates, and injected revocations).
    ///
    /// # Errors
    ///
    /// Propagates [`IterationError`] from any cycle.
    pub fn run_traced<R: Rng + ?Sized>(
        &self,
        selector: impl SlotSelector + Copy,
        cycles: usize,
        rng: &mut R,
    ) -> Result<TracedRun, IterationError> {
        let mut report = MetaschedulerReport::default();
        let mut traces = Vec::with_capacity(cycles);
        // Requests carried over, with their carry count.
        let mut backlog: Vec<(ResourceRequest, u32)> = Vec::new();
        // One optimizer for the whole run: cycles that carry most of their
        // batch (or only shift the VO limits) reuse the cached DP rows.
        let mut optimizer = IncrementalOptimizer::new();

        for _ in 0..cycles {
            let list: SlotList = self.slot_gen.generate(rng);
            let fresh = self.job_gen.generate(rng);

            // Postponed jobs take the head of the batch (they have waited
            // longest — highest priority), then the fresh arrivals. Ids are
            // re-keyed per cycle.
            let mut jobs: Vec<Job> = Vec::with_capacity(backlog.len() + fresh.len());
            let carried = backlog.len();
            for (i, (request, _)) in backlog.iter().enumerate() {
                jobs.push(Job::new(JobId::new(i as u32), *request));
            }
            for (i, job) in fresh.iter().enumerate() {
                jobs.push(Job::new(JobId::new((carried + i) as u32), *job.request()));
            }
            let batch = Batch::from_jobs(jobs).expect("re-keyed ids are unique");

            let result = run_iteration_cached_with(
                selector,
                &list,
                &batch,
                &self.config,
                &mut optimizer,
                self.parallelism,
            )?;
            let per_job = result.search.alternatives.per_job();

            let mut stats = RepairStats::default();
            let mut fates: Vec<Option<JobFate>> = vec![None; batch.len()];
            for id in &result.postponed {
                fates[id.index() as usize] =
                    Some(JobFate::Postponed(PostponeReason::NoAlternatives));
            }
            stats.postponed_no_alternatives = result.postponed.len() as u64;

            // The optimizer's choice per batch index (None for uncovered
            // jobs).
            let mut chosen: Vec<Option<usize>> = vec![None; batch.len()];
            if let Some(assignment) = &result.assignment {
                for choice in assignment.choices() {
                    chosen[choice.job.index() as usize] = Some(choice.alternative);
                }
            }

            let mut leases: Vec<Option<Lease>> = vec![None; batch.len()];
            for (i, job) in batch.as_slice().iter().enumerate() {
                if let Some(alt) = chosen[i] {
                    let window = per_job[i].alternatives()[alt].window().clone();
                    leases[i] = Some(Lease::planned(job.id(), window));
                }
            }

            let revocations = if self.revocation.config().is_enabled() {
                self.execute_and_repair(
                    &selector,
                    &list,
                    &result.search.remaining,
                    &batch,
                    per_job,
                    &chosen,
                    &mut leases,
                    &mut fates,
                    &mut stats,
                    rng,
                )
            } else {
                Vec::new()
            };

            // Whatever holds a lease and was never broken survived intact.
            for (i, fate) in fates.iter_mut().enumerate() {
                if fate.is_none() {
                    debug_assert!(leases[i].is_some(), "fateless jobs must hold a lease");
                    *fate = Some(JobFate::ScheduledIntact);
                }
            }

            let mut postponed_again = 0;
            let mut next_backlog: Vec<(ResourceRequest, u32)> = Vec::new();
            let mut final_fates: Vec<JobFate> = Vec::with_capacity(batch.len());
            for (i, fate) in fates.into_iter().enumerate() {
                // invariant: every index was assigned a fate above — jobs
                // are either search-postponed, leased, or repair-postponed.
                let fate = fate.expect("every job ends the cycle with a fate");
                if let JobFate::Postponed(_) = fate {
                    let (request, age) = if i < carried {
                        postponed_again += 1;
                        (backlog[i].0, backlog[i].1 + 1)
                    } else {
                        (*batch.as_slice()[i].request(), 1)
                    };
                    next_backlog.push((request, age));
                }
                final_fates.push(fate);
            }

            let (mut scheduled_intact, mut failed_over, mut repaired) = (0, 0, 0);
            for fate in &final_fates {
                match fate {
                    JobFate::ScheduledIntact => scheduled_intact += 1,
                    JobFate::FailedOver { .. } => failed_over += 1,
                    JobFate::Repaired => repaired += 1,
                    JobFate::Postponed(_) => {}
                }
            }
            let scheduled = scheduled_intact + failed_over + repaired;

            let final_leases: Vec<Lease> = leases.into_iter().flatten().collect();
            let (avg_time, avg_cost) = if final_leases.is_empty() {
                (0.0, 0.0)
            } else {
                let ticks: i64 = final_leases.iter().map(|l| l.window.length().ticks()).sum();
                let cost: Money = final_leases.iter().map(|l| l.window.total_cost()).sum();
                let n = final_leases.len() as f64;
                (ticks as f64 / n, cost.to_f64() / n)
            };

            report.cycles.push(CycleSummary {
                batch_size: batch.len(),
                scheduled,
                scheduled_intact,
                failed_over,
                repaired,
                postponed: batch.len() - scheduled,
                postponed_again,
                avg_time,
                avg_cost,
                repair: stats,
                opt: result.opt,
            });
            traces.push(CycleTrace {
                requests: batch.as_slice().iter().map(|j| *j.request()).collect(),
                fates: final_fates,
                leases: final_leases,
                revocations,
            });
            backlog = next_backlog;
        }
        Ok(TracedRun { report, traces })
    }

    /// Injects this cycle's revocations and runs the three-tier repair
    /// pass. `leases`, `fates`, and `stats` are updated in place; returns
    /// the injected revocations.
    #[allow(clippy::too_many_arguments)]
    fn execute_and_repair<R: Rng + ?Sized>(
        &self,
        selector: &(impl SlotSelector + Copy),
        published: &SlotList,
        remaining: &SlotList,
        batch: &Batch,
        per_job: &[ecosched_core::JobAlternatives],
        chosen: &[Option<usize>],
        leases: &mut [Option<Lease>],
        fates: &mut [Option<JobFate>],
        stats: &mut RepairStats,
        rng: &mut R,
    ) -> Vec<Revocation> {
        // The execution list: everything still vacant after the committed
        // windows were carved out. The search subtracted *every* found
        // alternative; the non-chosen ones return to the pool as freshly
        // minted slots so failovers and repairs can reuse that time.
        let mut exec = remaining.clone();
        for (i, ja) in per_job.iter().enumerate() {
            for (alt_idx, alt) in ja.alternatives().iter().enumerate() {
                if chosen[i] == Some(alt_idx) {
                    continue;
                }
                release_window(&mut exec, alt.window());
            }
        }

        let revocations = self.revocation.draw(published, rng);
        for r in &revocations {
            exec.remove_region(r.node, r.span);
        }
        stats.revocations_injected = revocations.len() as u64;

        // Classify every revocation and find the broken leases.
        let mut breaking = vec![false; revocations.len()];
        let mut broken = vec![false; leases.len()];
        for (ri, r) in revocations.iter().enumerate() {
            for (li, lease) in leases.iter().enumerate() {
                if lease.as_ref().is_some_and(|l| l.broken_by(r)) {
                    breaking[ri] = true;
                    broken[li] = true;
                }
            }
        }
        stats.revocations_breaking = breaking.iter().filter(|&&b| b).count() as u64;
        stats.revocations_vacant_only = stats.revocations_injected - stats.revocations_breaking;
        stats.leases_broken = broken.iter().filter(|&&b| b).count() as u64;

        // Broken leases first release their surviving (non-revoked)
        // fragments back into the execution list, so later failovers and
        // repairs — including their own — can reuse that time.
        for (li, lease) in leases.iter().enumerate() {
            if !broken[li] {
                continue;
            }
            // invariant: `broken` is only set for indices holding a lease.
            let lease = lease.as_ref().expect("broken implies leased");
            for ws in lease.window.slots() {
                let mut fragments = vec![lease.window.used_span(ws)];
                for r in revocations.iter().filter(|r| r.node == ws.node()) {
                    let mut survivors = Vec::new();
                    for frag in fragments {
                        let (left, right) = frag.subtract(r.span);
                        survivors.extend(left);
                        survivors.extend(right);
                    }
                    fragments = survivors;
                }
                for frag in fragments {
                    let id = exec.mint_id();
                    let slot = Slot::new(id, ws.node(), ws.perf(), ws.price(), frag)
                        .expect("surviving fragments are non-empty");
                    exec.insert(slot)
                        .expect("lease regions were held exclusively");
                }
            }
        }

        // Three-tier recovery, in batch (priority) order.
        for li in 0..leases.len() {
            if !broken[li] {
                continue;
            }
            // invariant: `broken` is only set for indices holding a lease.
            let original = leases[li].take().expect("broken implies leased");
            let request = batch.as_slice()[li].request();
            let original_cost = original.window.total_cost();
            let mut attempts: u32 = 0;
            let mut recovered: Option<(Lease, JobFate)> = None;

            // Tier 1: fail over to a surviving pre-computed alternative.
            // Disjoint from the broken window by construction, but other
            // jobs' commitments and this cycle's revocations may have
            // consumed it since — re-validate before adopting.
            for (alt_idx, alt) in per_job[li].alternatives().iter().enumerate() {
                if chosen[li] == Some(alt_idx) {
                    continue;
                }
                if attempts >= self.policy.max_attempts {
                    break;
                }
                attempts += 1;
                stats.failover_validations += 1;
                match try_adopt_window(alt.window(), &mut exec, &revocations) {
                    Ok(()) => {
                        stats.failovers_taken += 1;
                        stats.repair_cost_delta +=
                            (alt.window().total_cost() - original_cost).to_f64();
                        recovered = Some((
                            Lease {
                                job: original.job,
                                window: alt.window().clone(),
                                origin: LeaseOrigin::FailedOver {
                                    alternative: alt_idx,
                                },
                            },
                            JobFate::FailedOver {
                                alternative: alt_idx,
                            },
                        ));
                        break;
                    }
                    Err(RepairError::Revoked { .. }) => stats.failover_stale_revoked += 1,
                    Err(RepairError::Consumed { .. }) => stats.failover_stale_consumed += 1,
                }
            }

            // Tier 2: bounded repair search on the survivors, resuming at
            // the broken window's start (checkpointed, O(survivors)).
            if recovered.is_none() && attempts < self.policy.max_attempts {
                attempts += 1;
                stats.repairs_attempted += 1;
                let mut scan = ScanStats::new();
                let found =
                    repair_search(selector, request, original.window.start(), &exec, &mut scan);
                stats.budget_violations_avoided += scan.acceptance_tests - scan.windows_found;
                stats.repair_scan.merge(&scan);
                if let Some(window) = found {
                    exec.subtract_window(&window)
                        .expect("repair windows are carved from the execution list");
                    stats.repairs_succeeded += 1;
                    stats.repair_cost_delta += (window.total_cost() - original_cost).to_f64();
                    recovered = Some((
                        Lease {
                            job: original.job,
                            window,
                            origin: LeaseOrigin::Repaired,
                        },
                        JobFate::Repaired,
                    ));
                }
            }

            // Tier 2.5 (optional, off by default): the anchored repair is
            // exhausted — budget spent or scan dry. Retry once from the
            // start of the execution list. Released fragments of *other*
            // broken leases can make a window feasible that starts before
            // this job's broken plan, and the anchored scan can never see
            // it (earlier-start exclusion); the full rescan can.
            if recovered.is_none() && self.policy.full_rescan_on_exhaustion {
                stats.full_rescans_attempted += 1;
                let mut scan = ScanStats::new();
                let found = selector.find_window(&exec, request, &mut scan);
                stats.budget_violations_avoided += scan.acceptance_tests - scan.windows_found;
                stats.repair_scan.merge(&scan);
                if let Some(window) = found {
                    exec.subtract_window(&window)
                        .expect("repair windows are carved from the execution list");
                    stats.full_rescans_succeeded += 1;
                    stats.repair_cost_delta += (window.total_cost() - original_cost).to_f64();
                    recovered = Some((
                        Lease {
                            job: original.job,
                            window,
                            origin: LeaseOrigin::Repaired,
                        },
                        JobFate::Repaired,
                    ));
                }
            }

            // Tier 3: postpone with the reason.
            match recovered {
                Some((lease, fate)) => {
                    leases[li] = Some(lease);
                    fates[li] = Some(fate);
                }
                None => {
                    let reason = if attempts >= self.policy.max_attempts {
                        stats.postponed_budget_exhausted += 1;
                        PostponeReason::RepairBudgetExhausted
                    } else {
                        stats.postponed_stale += 1;
                        PostponeReason::AllAlternativesStale
                    };
                    fates[li] = Some(JobFate::Postponed(reason));
                }
            }
        }

        revocations
    }
}

/// Returns a window's regions to the execution list as freshly minted
/// slots.
fn release_window(exec: &mut SlotList, window: &ecosched_core::Window) {
    for ws in window.slots() {
        let id = exec.mint_id();
        let slot = Slot::new(id, ws.node(), ws.perf(), ws.price(), window.used_span(ws))
            .expect("window members have positive runtimes");
        exec.insert(slot)
            .expect("released regions were carved from this list");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_select::{Alp, Amp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn meta() -> Metascheduler {
        Metascheduler::new(
            SlotGenConfig::default(),
            JobGenConfig::default(),
            IterationConfig::default(),
        )
    }

    #[test]
    fn runs_requested_number_of_cycles() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = meta().run(Amp::new(), 5, &mut rng).unwrap();
        assert_eq!(report.cycles.len(), 5);
        assert!(report.total_scheduled() > 0);
    }

    #[test]
    fn batch_accounting_balances() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let report = meta().run(Alp::new(), 8, &mut rng).unwrap();
        for c in &report.cycles {
            assert_eq!(c.scheduled + c.postponed, c.batch_size);
            assert_eq!(c.scheduled_intact + c.failed_over + c.repaired, c.scheduled);
            assert!(c.postponed_again <= c.postponed);
        }
    }

    #[test]
    fn postponed_jobs_are_carried_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = meta().run(Alp::new(), 10, &mut rng).unwrap();
        // Whenever cycle k postpones jobs, cycle k+1's batch includes them.
        for pair in report.cycles.windows(2) {
            assert!(
                pair[1].batch_size >= pair[0].postponed + 3,
                "carried jobs must rejoin the next batch (plus ≥3 fresh)"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(4);
        let mut rng2 = ChaCha8Rng::seed_from_u64(4);
        let a = meta().run(Amp::new(), 4, &mut rng1).unwrap();
        let b = meta().run(Amp::new(), 4, &mut rng2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_revocation_stays_fault_free() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let run = meta().run_traced(Amp::new(), 4, &mut rng).unwrap();
        let totals = run.report.repair_totals();
        assert_eq!(totals.revocations_injected, 0);
        assert_eq!(totals.leases_broken, 0);
        assert_eq!(totals.recovered(), 0);
        for (c, t) in run.report.cycles.iter().zip(&run.traces) {
            assert_eq!(c.scheduled_intact, c.scheduled);
            assert!(t.revocations.is_empty());
            assert!(t.fates.iter().all(|f| matches!(
                f,
                JobFate::ScheduledIntact | JobFate::Postponed(PostponeReason::NoAlternatives)
            )));
        }
    }

    #[test]
    fn deterministic_under_churn() {
        let churn = RevocationConfig {
            per_slot: 0.1,
            domain_outage: 0.05,
            nodes_per_domain: 10,
            price_burst: 0.3,
            burst_fraction: 0.1,
        };
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            meta()
                .with_revocation(churn)
                .run_traced(Amp::new(), 5, &mut rng)
                .unwrap()
        };
        let a = run(6);
        assert_eq!(a, run(6));
        assert_ne!(a, run(7));
    }

    #[test]
    fn churn_accounting_is_complete() {
        for &p in &[0.05, 0.15] {
            for seed in 0..4 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let run = meta()
                    .with_revocation(RevocationConfig::per_slot(p))
                    .run_traced(Amp::new(), 4, &mut rng)
                    .unwrap();
                for (c, t) in run.report.cycles.iter().zip(&run.traces) {
                    // Every revocation is accounted for, exactly once.
                    assert_eq!(
                        c.repair.revocations_injected,
                        c.repair.revocations_breaking + c.repair.revocations_vacant_only
                    );
                    assert_eq!(c.repair.revocations_injected as usize, t.revocations.len());
                    // Every job ends in a terminal fate.
                    assert_eq!(t.fates.len(), c.batch_size);
                    assert_eq!(c.scheduled + c.postponed, c.batch_size);
                    assert_eq!(c.scheduled_intact + c.failed_over + c.repaired, c.scheduled);
                    assert_eq!(t.leases.len(), c.scheduled);
                    // Recovery arithmetic: every broken lease either
                    // recovered or was postponed with a churn reason.
                    assert_eq!(
                        c.repair.leases_broken,
                        c.repair.recovered()
                            + c.repair.postponed_stale
                            + c.repair.postponed_budget_exhausted
                    );
                    // No surviving lease references a revoked region.
                    for lease in &t.leases {
                        for r in &t.revocations {
                            assert!(!lease.broken_by(r), "final lease overlaps a revocation");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn final_leases_stay_pairwise_disjoint_under_churn() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let run = meta()
            .with_revocation(RevocationConfig::per_slot(0.15))
            .run_traced(Amp::new(), 5, &mut rng)
            .unwrap();
        for t in &run.traces {
            let regions: Vec<_> = t
                .leases
                .iter()
                .flat_map(|l| {
                    l.window
                        .slots()
                        .iter()
                        .map(move |ws| (ws.node(), l.window.used_span(ws)))
                })
                .collect();
            for (i, a) in regions.iter().enumerate() {
                for b in &regions[i + 1..] {
                    assert!(
                        a.0 != b.0 || !a.1.overlaps(b.1),
                        "two leases share {:?} {:?}",
                        a,
                        b
                    );
                }
            }
        }
    }

    #[test]
    fn repairs_resume_from_checkpoints() {
        // Under churn heavy enough to trigger repair scans, every scan
        // must resume from its seeded anchor — never a full rescan.
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let report = meta()
            .with_revocation(RevocationConfig::per_slot(0.15))
            .run(Amp::new(), 6, &mut rng)
            .unwrap();
        let totals = report.repair_totals();
        assert!(totals.leases_broken > 0, "churn must break something");
        assert_eq!(
            totals.repair_scan.checkpoint_hits, totals.repairs_attempted,
            "every repair scan resumes from its anchor"
        );
    }

    #[test]
    fn parallelism_is_trace_invisible_under_churn() {
        // The worker-thread budget is an execution knob: full traced runs
        // (leases, fates, revocations, repair stats) must be byte-identical
        // at every thread count, even when revocations force repairs.
        let run = |threads| {
            let mut rng = ChaCha8Rng::seed_from_u64(2011);
            meta()
                .with_revocation(RevocationConfig::per_slot(0.1))
                .with_parallelism(Parallelism::new(threads))
                .run_traced(Amp::new(), 5, &mut rng)
                .unwrap()
        };
        let baseline = run(1);
        assert_eq!(baseline, run(2));
        assert_eq!(baseline, run(4));
    }

    #[test]
    fn zero_attempt_budget_postpones_with_reason() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let report = meta()
            .with_revocation(RevocationConfig::per_slot(0.15))
            .with_repair_policy(RepairPolicy {
                max_attempts: 0,
                ..RepairPolicy::default()
            })
            .run(Alp::new(), 5, &mut rng)
            .unwrap();
        let totals = report.repair_totals();
        assert!(totals.leases_broken > 0);
        assert_eq!(totals.recovered(), 0);
        assert_eq!(totals.repairs_attempted, 0);
        assert_eq!(totals.postponed_budget_exhausted, totals.leases_broken);
    }
}
