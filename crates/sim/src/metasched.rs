//! The metascheduler loop: job batch scheduling runs iteratively on
//! periodically updated local schedules (paper Sec. 1–2).
//!
//! Each cycle the local managers publish fresh vacant slots, newly arrived
//! jobs join whatever was postponed before, and one scheduling iteration
//! runs. Jobs that fail to accumulate `N` suitable slots are carried to the
//! next cycle, exactly as the paper prescribes.

use ecosched_core::{Batch, Job, JobId, ResourceRequest, SlotList};
use rand::Rng;
use serde::{Deserialize, Serialize};

use ecosched_select::SlotSelector;

use crate::config::{JobGenConfig, SlotGenConfig};
use crate::iteration::{run_iteration, IterationConfig, IterationError};
use crate::job_gen::JobGenerator;
use crate::slot_gen::SlotGenerator;

/// Summary of one metascheduler cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleSummary {
    /// Jobs in the cycle's batch (new + carried over).
    pub batch_size: usize,
    /// Jobs scheduled this cycle.
    pub scheduled: usize,
    /// Jobs postponed to the next cycle.
    pub postponed: usize,
    /// Of the postponed jobs, how many were already carried over before.
    pub postponed_again: usize,
    /// Mean per-job execution time of the cycle's assignment (0 when no
    /// job was scheduled).
    pub avg_time: f64,
    /// Mean per-job execution cost of the cycle's assignment.
    pub avg_cost: f64,
}

/// The report of a multi-cycle metascheduler run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetaschedulerReport {
    /// Per-cycle summaries, in order.
    pub cycles: Vec<CycleSummary>,
}

impl MetaschedulerReport {
    /// Total jobs scheduled across all cycles.
    #[must_use]
    pub fn total_scheduled(&self) -> usize {
        self.cycles.iter().map(|c| c.scheduled).sum()
    }

    /// Jobs still postponed after the final cycle.
    #[must_use]
    pub fn final_backlog(&self) -> usize {
        self.cycles.last().map_or(0, |c| c.postponed)
    }
}

/// The iterative metascheduler.
#[derive(Debug, Clone)]
pub struct Metascheduler {
    slot_gen: SlotGenerator,
    job_gen: JobGenerator,
    config: IterationConfig,
}

impl Metascheduler {
    /// Creates a metascheduler over the given generator configurations.
    ///
    /// # Panics
    ///
    /// Panics if either generator configuration is invalid.
    #[must_use]
    pub fn new(
        slot_config: SlotGenConfig,
        job_config: JobGenConfig,
        config: IterationConfig,
    ) -> Self {
        Metascheduler {
            slot_gen: SlotGenerator::new(slot_config),
            job_gen: JobGenerator::new(job_config),
            config,
        }
    }

    /// Runs `cycles` scheduling cycles with `selector`, carrying postponed
    /// jobs forward.
    ///
    /// # Errors
    ///
    /// Propagates [`IterationError`] from any cycle.
    pub fn run<R: Rng + ?Sized>(
        &self,
        selector: impl SlotSelector + Copy,
        cycles: usize,
        rng: &mut R,
    ) -> Result<MetaschedulerReport, IterationError> {
        let mut report = MetaschedulerReport::default();
        // Requests carried over, with their carry count.
        let mut backlog: Vec<(ResourceRequest, u32)> = Vec::new();

        for _ in 0..cycles {
            let list: SlotList = self.slot_gen.generate(rng);
            let fresh = self.job_gen.generate(rng);

            // Postponed jobs take the head of the batch (they have waited
            // longest — highest priority), then the fresh arrivals. Ids are
            // re-keyed per cycle.
            let mut jobs: Vec<Job> = Vec::with_capacity(backlog.len() + fresh.len());
            let carried = backlog.len();
            for (i, (request, _)) in backlog.iter().enumerate() {
                jobs.push(Job::new(JobId::new(i as u32), *request));
            }
            for (i, job) in fresh.iter().enumerate() {
                jobs.push(Job::new(JobId::new((carried + i) as u32), *job.request()));
            }
            let batch = Batch::from_jobs(jobs).expect("re-keyed ids are unique");

            let result = run_iteration(selector, &list, &batch, &self.config)?;

            let mut postponed_again = 0;
            let mut next_backlog: Vec<(ResourceRequest, u32)> = Vec::new();
            for id in &result.postponed {
                let index = id.index() as usize;
                let (request, age) = if index < carried {
                    postponed_again += 1;
                    (backlog[index].0, backlog[index].1 + 1)
                } else {
                    (*batch.as_slice()[index].request(), 1)
                };
                next_backlog.push((request, age));
            }

            let (avg_time, avg_cost) = result
                .assignment
                .as_ref()
                .map_or((0.0, 0.0), |a| (a.avg_time(), a.avg_cost()));
            report.cycles.push(CycleSummary {
                batch_size: batch.len(),
                scheduled: batch.len() - result.postponed.len(),
                postponed: result.postponed.len(),
                postponed_again,
                avg_time,
                avg_cost,
            });
            backlog = next_backlog;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_select::{Alp, Amp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn meta() -> Metascheduler {
        Metascheduler::new(
            SlotGenConfig::default(),
            JobGenConfig::default(),
            IterationConfig::default(),
        )
    }

    #[test]
    fn runs_requested_number_of_cycles() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = meta().run(Amp::new(), 5, &mut rng).unwrap();
        assert_eq!(report.cycles.len(), 5);
        assert!(report.total_scheduled() > 0);
    }

    #[test]
    fn batch_accounting_balances() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let report = meta().run(Alp::new(), 8, &mut rng).unwrap();
        for c in &report.cycles {
            assert_eq!(c.scheduled + c.postponed, c.batch_size);
            assert!(c.postponed_again <= c.postponed);
        }
    }

    #[test]
    fn postponed_jobs_are_carried_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = meta().run(Alp::new(), 10, &mut rng).unwrap();
        // Whenever cycle k postpones jobs, cycle k+1's batch includes them.
        for pair in report.cycles.windows(2) {
            assert!(
                pair[1].batch_size >= pair[0].postponed + 3,
                "carried jobs must rejoin the next batch (plus ≥3 fresh)"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(4);
        let mut rng2 = ChaCha8Rng::seed_from_u64(4);
        let a = meta().run(Amp::new(), 4, &mut rng1).unwrap();
        let b = meta().run(Amp::new(), 4, &mut rng2).unwrap();
        assert_eq!(a, b);
    }
}
