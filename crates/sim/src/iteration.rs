//! One scheduling iteration: alternatives search → VO limits → combination
//! optimization.
//!
//! This is the paper's two-stage scheme end to end. Jobs whose alternative
//! set comes back empty are postponed (reported, not optimized); the
//! remaining jobs are optimized under the configured criterion with the VO
//! limits derived from Eq. (2)/(3).

use ecosched_core::{Batch, CoreError, JobAlternatives, JobId, Money, SlotList, TimeDelta};
use ecosched_optimize::{time_quota, Assignment, IncrementalOptimizer, OptStats, OptimizeError};
use ecosched_select::{SearchOutcome, SlotSelector};
use serde::{Deserialize, Serialize};

/// The VO-level optimization criterion for the iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Criterion {
    /// `min T(s̄)` subject to `C(s̄) ≤ B*` (the paper's Fig. 4–5 task).
    #[default]
    MinTimeUnderBudget,
    /// `min C(s̄)` subject to `T(s̄) ≤ T*` (the paper's Fig. 6 task).
    MinCostUnderTime,
}

/// Which combination solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// The paper's backward-run DP (Eq. (1)); money is quantized into
    /// `resolution_steps` levels of the budget. Falls back to the exact
    /// Pareto sweep if quantization makes a feasible instance look
    /// infeasible.
    BackwardRun {
        /// Number of quantization levels for the money dimension.
        resolution_steps: u32,
    },
    /// The exact Pareto-frontier sweep (no quantization).
    ParetoExact,
}

impl Default for OptimizerKind {
    fn default() -> Self {
        OptimizerKind::BackwardRun {
            resolution_steps: 1500,
        }
    }
}

/// How the alternatives search traverses the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SearchMode {
    /// The paper's sequential per-job search, in priority order.
    #[default]
    Sequential,
    /// The batch-at-once extension: windows committed in global
    /// earliest-start order (Sec. 7 future work, experiment E9).
    Coscheduled,
}

/// Configuration of a scheduling iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IterationConfig {
    /// The optimization criterion.
    pub criterion: Criterion,
    /// The solver.
    pub optimizer: OptimizerKind,
    /// The alternatives-search traversal.
    pub search_mode: SearchMode,
}

/// Worker-pool width for the per-job fan-out inside an iteration.
///
/// Purely an execution knob, deliberately *not* part of
/// [`IterationConfig`]: the scheduling outcome — alternatives, VO limits,
/// assignment, and the [`IterationResult::opt`] counters — is byte-
/// identical at any width, so two runs of the same config and seed stay
/// comparable whatever hardware they ran on. The per-job alternatives
/// scans of each search pass and the columns of each DP row are fanned
/// out over scoped workers with a deterministic batch-index-order merge;
/// winner subtraction and cache commits stay on the caller's thread
/// (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// A worker pool of `threads` (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// The configured width; 1 means today's single-threaded path.
    #[must_use]
    pub fn threads(self) -> usize {
        self.threads
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::new(1)
    }
}

/// The result of one scheduling iteration.
#[derive(Debug, Clone)]
pub struct IterationResult {
    /// The alternatives search outcome (alternatives, stats, leftover list).
    pub search: SearchOutcome,
    /// Eq. (2)'s time quota `T*` over the covered jobs (possibly relaxed —
    /// see [`IterationResult::quota_relaxed`]).
    pub quota: TimeDelta,
    /// Whether Eq. (2)'s quota had to be relaxed to the tightest feasible
    /// total time (its flooring can undercut the minimum — DESIGN.md).
    pub quota_relaxed: bool,
    /// Eq. (3)'s VO budget `B*` over the covered jobs (`None` when no job
    /// was covered).
    pub budget: Option<Money>,
    /// The optimized combination over the covered jobs (`None` when no job
    /// was covered).
    pub assignment: Option<Assignment>,
    /// Jobs postponed to the next iteration (no alternatives found).
    pub postponed: Vec<JobId>,
    /// Optimizer work counters for this iteration (rows reused vs rebuilt;
    /// all-rebuilt when running without a shared cache).
    pub opt: OptStats,
}

impl IterationResult {
    /// Returns `true` if every batch job got at least one alternative — the
    /// paper's precondition for counting an experiment.
    #[must_use]
    pub fn all_covered(&self) -> bool {
        self.postponed.is_empty()
    }
}

/// Errors from the iteration driver.
#[derive(Debug)]
pub enum IterationError {
    /// Slot subtraction failed (only possible with a misbehaving custom
    /// selector).
    Core(CoreError),
    /// The optimizer failed on a covered, feasible-looking instance.
    Optimize(OptimizeError),
}

impl std::fmt::Display for IterationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IterationError::Core(e) => write!(f, "slot bookkeeping failed: {e}"),
            IterationError::Optimize(e) => write!(f, "combination optimization failed: {e}"),
        }
    }
}

impl std::error::Error for IterationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IterationError::Core(e) => Some(e),
            IterationError::Optimize(e) => Some(e),
        }
    }
}

impl From<CoreError> for IterationError {
    fn from(e: CoreError) -> Self {
        IterationError::Core(e)
    }
}

impl From<OptimizeError> for IterationError {
    fn from(e: OptimizeError) -> Self {
        IterationError::Optimize(e)
    }
}

/// Runs one full scheduling iteration of `batch` over `list` with
/// `selector` (ALP/AMP/baseline) under `config`.
///
/// # Errors
///
/// Returns [`IterationError`] on slot-bookkeeping failures (impossible with
/// the built-in selectors) or optimizer failures that survive the fallback.
pub fn run_iteration(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
    config: &IterationConfig,
) -> Result<IterationResult, IterationError> {
    run_iteration_cached(
        selector,
        list,
        batch,
        config,
        &mut IncrementalOptimizer::new(),
    )
}

/// [`run_iteration`] with an explicit worker-pool width. Byte-identical
/// results at any [`Parallelism`].
///
/// # Errors
///
/// See [`run_iteration`].
pub fn run_iteration_with(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
    config: &IterationConfig,
    parallelism: Parallelism,
) -> Result<IterationResult, IterationError> {
    run_iteration_cached_with(
        selector,
        list,
        batch,
        config,
        &mut IncrementalOptimizer::new(),
        parallelism,
    )
}

/// [`run_iteration`] with a caller-held [`IncrementalOptimizer`], so the
/// DP rows and Pareto layers survive across cycles: a batch that changed
/// in a few positions (arrivals, completions, repairs) or whose VO limits
/// shifted only pays for the rows its mutations actually invalidated. The
/// returned [`IterationResult::opt`] holds this call's work delta.
///
/// Results are byte-identical to [`run_iteration`] regardless of the
/// optimizer's prior state — the cache revalidates itself by fingerprint.
///
/// # Errors
///
/// See [`run_iteration`].
pub fn run_iteration_cached(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
    config: &IterationConfig,
    optimizer: &mut IncrementalOptimizer,
) -> Result<IterationResult, IterationError> {
    run_iteration_cached_with(
        selector,
        list,
        batch,
        config,
        optimizer,
        Parallelism::default(),
    )
}

/// [`run_iteration_cached`] with an explicit worker-pool width: the
/// per-job alternatives scans and the DP row columns fan out over
/// `parallelism.threads()` scoped workers. Byte-identical results — and
/// identical [`IterationResult::opt`] counters — at any width, restored
/// optimizer snapshots included (the width is re-applied here on every
/// call precisely so snapshots never carry it).
///
/// # Errors
///
/// See [`run_iteration`].
pub fn run_iteration_cached_with(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
    config: &IterationConfig,
    optimizer: &mut IncrementalOptimizer,
    parallelism: Parallelism,
) -> Result<IterationResult, IterationError> {
    let threads = parallelism.threads();
    optimizer.set_threads(threads);
    let stats_before = optimizer.stats();
    let search = match config.search_mode {
        SearchMode::Sequential => {
            ecosched_select::find_alternatives_threads(selector, list, batch, threads)?
        }
        SearchMode::Coscheduled => {
            ecosched_select::find_alternatives_coscheduled_threads(selector, list, batch, threads)?
        }
    };
    let postponed: Vec<JobId> = search.postponed().collect();
    let covered: Vec<JobAlternatives> = search
        .alternatives
        .per_job()
        .iter()
        .filter(|ja| !ja.is_empty())
        .cloned()
        .collect();

    if covered.is_empty() {
        return Ok(IterationResult {
            search,
            quota: TimeDelta::ZERO,
            quota_relaxed: false,
            budget: None,
            assignment: None,
            postponed,
            opt: OptStats::default(),
        });
    }

    // Eq. (2), relaxed to the tightest feasible total when flooring
    // undercuts it.
    let tightest: TimeDelta = covered
        .iter()
        .map(|ja| {
            ja.iter()
                .map(|a| a.time())
                .min()
                // invariant: `covered` holds only non-empty sets — the
                // partition above moved empty ones into `postponed`.
                .expect("covered jobs have alternatives")
        })
        .sum();
    let eq2 = time_quota(&covered);
    let (quota, quota_relaxed) = if eq2 < tightest {
        (tightest, true)
    } else {
        (eq2, false)
    };

    // Eq. (3).
    let budget = optimizer.vo_budget_with_quota(&covered, quota)?;

    let assignment = match config.criterion {
        Criterion::MinTimeUnderBudget => {
            optimize_min_time(optimizer, &covered, budget, config.optimizer)?
        }
        Criterion::MinCostUnderTime => optimizer.min_cost_under_time(&covered, quota)?,
    };

    Ok(IterationResult {
        search,
        quota,
        quota_relaxed,
        budget: Some(budget),
        assignment: Some(assignment),
        postponed,
        opt: optimizer.stats().delta_since(&stats_before),
    })
}

fn optimize_min_time(
    optimizer: &mut IncrementalOptimizer,
    covered: &[JobAlternatives],
    budget: Money,
    kind: OptimizerKind,
) -> Result<Assignment, OptimizeError> {
    match kind {
        OptimizerKind::ParetoExact => optimizer.pareto_min_time_under_budget(covered, budget),
        OptimizerKind::BackwardRun { resolution_steps } => {
            let steps = i64::from(resolution_steps.max(1));
            let resolution = Money::from_micro((budget.micro() / steps).max(1));
            match optimizer.min_time_under_budget(covered, budget, resolution) {
                Ok(a) => Ok(a),
                // Quantization can starve a feasible instance; the exact
                // sweep settles it.
                Err(OptimizeError::Infeasible) => {
                    optimizer.pareto_min_time_under_budget(covered, budget)
                }
                Err(e) => Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{Job, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, Span, TimePoint};
    use ecosched_select::{Alp, Amp};

    fn slot(id: u64, node: u32, perf: f64, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::from_f64(perf),
            Price::from_credits(price),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    fn job(id: u32, n: usize, t: i64, c: i64) -> Job {
        Job::new(
            JobId::new(id),
            ResourceRequest::new(n, TimeDelta::new(t), Perf::UNIT, Price::from_credits(c)).unwrap(),
        )
    }

    fn environment() -> SlotList {
        SlotList::from_slots(vec![
            slot(0, 0, 1.0, 2, 0, 600),
            slot(1, 1, 1.5, 3, 0, 600),
            slot(2, 2, 2.0, 4, 0, 600),
            slot(3, 3, 2.5, 6, 0, 600),
        ])
        .unwrap()
    }

    #[test]
    fn full_iteration_produces_feasible_assignment() {
        let batch = Batch::from_jobs(vec![job(0, 2, 100, 4), job(1, 1, 80, 5)]).unwrap();
        let result = run_iteration(
            Amp::new(),
            &environment(),
            &batch,
            &IterationConfig::default(),
        )
        .unwrap();
        assert!(result.all_covered());
        let a = result.assignment.unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.total_cost() <= result.budget.unwrap());
    }

    #[test]
    fn cost_criterion_respects_quota() {
        let batch = Batch::from_jobs(vec![job(0, 2, 100, 4), job(1, 1, 80, 5)]).unwrap();
        let config = IterationConfig {
            criterion: Criterion::MinCostUnderTime,
            ..IterationConfig::default()
        };
        let result = run_iteration(Amp::new(), &environment(), &batch, &config).unwrap();
        let a = result.assignment.unwrap();
        assert!(a.total_time() <= result.quota);
    }

    #[test]
    fn uncovered_jobs_are_postponed_not_fatal() {
        // Second job wants 9 nodes — impossible in a 4-node environment.
        let batch = Batch::from_jobs(vec![job(0, 1, 50, 5), job(1, 9, 50, 5)]).unwrap();
        let result = run_iteration(
            Alp::new(),
            &environment(),
            &batch,
            &IterationConfig::default(),
        )
        .unwrap();
        assert_eq!(result.postponed, vec![JobId::new(1)]);
        assert!(!result.all_covered());
        // The covered job is still optimized.
        assert_eq!(result.assignment.unwrap().len(), 1);
    }

    #[test]
    fn fully_uncovered_batch_yields_no_assignment() {
        let batch = Batch::from_jobs(vec![job(0, 9, 50, 5)]).unwrap();
        let result = run_iteration(
            Alp::new(),
            &environment(),
            &batch,
            &IterationConfig::default(),
        )
        .unwrap();
        assert!(result.assignment.is_none());
        assert!(result.budget.is_none());
        assert_eq!(result.postponed.len(), 1);
    }

    #[test]
    fn pareto_and_dp_agree_on_time_criterion() {
        let batch = Batch::from_jobs(vec![job(0, 2, 100, 4), job(1, 1, 80, 5)]).unwrap();
        let dp = run_iteration(
            Amp::new(),
            &environment(),
            &batch,
            &IterationConfig {
                criterion: Criterion::MinTimeUnderBudget,
                optimizer: OptimizerKind::BackwardRun {
                    resolution_steps: 4000,
                },
                ..IterationConfig::default()
            },
        )
        .unwrap();
        let pareto = run_iteration(
            Amp::new(),
            &environment(),
            &batch,
            &IterationConfig {
                criterion: Criterion::MinTimeUnderBudget,
                optimizer: OptimizerKind::ParetoExact,
                ..IterationConfig::default()
            },
        )
        .unwrap();
        // With fine enough resolution, both reach the same optimum time.
        assert_eq!(
            dp.assignment.unwrap().total_time(),
            pareto.assignment.unwrap().total_time()
        );
    }

    #[test]
    fn quota_relaxation_engages_when_eq2_undercuts() {
        // One job, two identical tiny alternatives of time 3 →
        // T* = ⌊3/2⌋+⌊3/2⌋ = 2 < 3 → relaxed to 3.
        let list =
            SlotList::from_slots(vec![slot(0, 0, 1.0, 1, 0, 6), slot(1, 1, 1.0, 1, 0, 6)]).unwrap();
        let batch = Batch::from_jobs(vec![job(0, 1, 3, 2)]).unwrap();
        let result = run_iteration(
            Alp::new(),
            &list,
            &batch,
            &IterationConfig {
                criterion: Criterion::MinCostUnderTime,
                ..IterationConfig::default()
            },
        )
        .unwrap();
        assert!(result.quota_relaxed);
        assert_eq!(result.quota, TimeDelta::new(3));
        assert!(result.assignment.is_some());
    }

    #[test]
    fn error_display_chains() {
        let err = IterationError::from(OptimizeError::Infeasible);
        assert!(format!("{err}").contains("optimization failed"));
        assert!(std::error::Error::source(&err).is_some());
    }
}

#[cfg(test)]
mod search_mode_tests {
    use super::*;
    use crate::{JobGenConfig, JobGenerator, SlotGenConfig, SlotGenerator};
    use ecosched_select::Amp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// threads=1 ≡ threads=N over generated paper-scale instances, for
    /// both search modes and both criteria: identical alternatives,
    /// quota/budget, assignment, postponements, and opt counters.
    #[test]
    fn parallelism_is_outcome_invisible() {
        let mut rng = ChaCha8Rng::seed_from_u64(2011);
        for mode in [SearchMode::Sequential, SearchMode::Coscheduled] {
            for criterion in [Criterion::MinTimeUnderBudget, Criterion::MinCostUnderTime] {
                let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
                let batch = JobGenerator::new(JobGenConfig::default()).generate(&mut rng);
                let config = IterationConfig {
                    criterion,
                    search_mode: mode,
                    ..IterationConfig::default()
                };
                let one = run_iteration(Amp::new(), &list, &batch, &config).unwrap();
                for threads in [2, 4] {
                    let par = run_iteration_with(
                        Amp::new(),
                        &list,
                        &batch,
                        &config,
                        Parallelism::new(threads),
                    )
                    .unwrap();
                    assert_eq!(
                        par.search.alternatives, one.search.alternatives,
                        "{mode:?}/{criterion:?} threads={threads}: alternatives"
                    );
                    assert_eq!(par.search.remaining, one.search.remaining);
                    assert_eq!(par.quota, one.quota);
                    assert_eq!(par.budget, one.budget);
                    assert_eq!(par.postponed, one.postponed);
                    assert_eq!(par.opt, one.opt, "opt counters must not depend on threads");
                    match (&par.assignment, &one.assignment) {
                        (Some(a), Some(b)) => assert_eq!(a.choices(), b.choices()),
                        (None, None) => {}
                        _ => panic!("assignment presence diverged"),
                    }
                }
            }
        }
    }

    #[test]
    fn coscheduled_mode_runs_end_to_end() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
        let batch = JobGenerator::new(JobGenConfig::default()).generate(&mut rng);
        let sequential =
            run_iteration(Amp::new(), &list, &batch, &IterationConfig::default()).unwrap();
        let coscheduled = run_iteration(
            Amp::new(),
            &list,
            &batch,
            &IterationConfig {
                search_mode: SearchMode::Coscheduled,
                ..IterationConfig::default()
            },
        )
        .unwrap();
        // Co-scheduling can only widen coverage.
        assert!(coscheduled.postponed.len() <= sequential.postponed.len());
        if let Some(a) = &coscheduled.assignment {
            assert!(a.total_cost() <= coscheduled.budget.unwrap());
        }
    }
}
