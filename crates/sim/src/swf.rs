//! Standard Workload Format (SWF) import.
//!
//! The backfilling literature the paper compares against (refs [11, 12])
//! evaluates on traces from the Parallel Workloads Archive, published in
//! SWF: one job per line, 18 whitespace-separated fields, `;` comments.
//! This module parses SWF text and converts rigid trace jobs into economic
//! [`Batch`]es, drawing the paper-style economic attributes (minimum
//! performance, price cap) that traces do not carry.

use std::error::Error;
use std::fmt;

use ecosched_core::{Batch, Job, JobId, Perf, Price, ResourceRequest, TimeDelta};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::RealRange;
use crate::rng_ext::draw_real;

/// One job parsed from an SWF trace (the fields this crate consumes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwfJob {
    /// SWF field 1: job number.
    pub id: u32,
    /// SWF field 2: submit time (seconds since trace start).
    pub submit: i64,
    /// SWF field 4: actual run time, seconds.
    pub run_time: i64,
    /// Requested processors (field 8, falling back to allocated, field 5).
    pub procs: usize,
    /// Requested time (field 9, falling back to the run time, field 4).
    pub requested_time: i64,
}

impl SwfJob {
    /// Renders the job as one standard 18-field SWF line, `-1` for every
    /// field this crate does not consume. [`parse_swf`] reads the line
    /// back to an identical [`SwfJob`].
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "{} {} -1 {} {} -1 -1 {} {} -1 -1 -1 -1 -1 -1 -1 -1 -1",
            self.id, self.submit, self.run_time, self.procs, self.procs, self.requested_time
        )
    }
}

/// Renders jobs as SWF text (a header comment plus one line per job).
/// `parse_swf(&write_swf(&jobs))` returns the same jobs — the round-trip
/// contract the fixture test pins down.
#[must_use]
pub fn write_swf(jobs: &[SwfJob]) -> String {
    let mut out = String::from("; SWF written by ecosched-sim\n");
    for job in jobs {
        out.push_str(&job.to_line());
        out.push('\n');
    }
    out
}

/// Errors raised while parsing SWF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSwfError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ParseSwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseSwfError {}

/// Parses SWF text into trace jobs.
///
/// Comment lines (starting with `;`) and blank lines are skipped, and a
/// trailing `; comment` after the data fields is stripped — both forms
/// appear in archive headers and hand-annotated traces. CRLF line endings
/// are tolerated (the trailing `\r` is trimmed with the surrounding
/// whitespace). A `-1` sentinel in the submit-time field (seen in
/// anonymized traces) is clamped to `0`; `-1` sentinels in the processor
/// and time fields engage the documented fallbacks. Jobs with non-positive
/// processor counts or times (failed/cancelled entries) are silently
/// dropped, as is conventional when replaying traces.
///
/// # Errors
///
/// Returns [`ParseSwfError`] for structurally malformed lines (fewer than
/// 9 fields, unparsable numbers).
///
/// # Examples
///
/// ```
/// use ecosched_sim::swf::parse_swf;
///
/// let text = "\
/// ; SWF sample
/// 1 0 5 120 4 -1 -1 4 150 -1 1 1 1 1 1 1 -1 -1
/// 2 10 0 60 2 -1 -1 -1 -1 -1 1 1 1 1 1 1 -1 -1
/// ";
/// let jobs = parse_swf(text)?;
/// assert_eq!(jobs.len(), 2);
/// assert_eq!(jobs[0].procs, 4);
/// assert_eq!(jobs[0].requested_time, 150);
/// assert_eq!(jobs[1].procs, 2);          // fell back to allocated procs
/// assert_eq!(jobs[1].requested_time, 60); // fell back to run time
/// # Ok::<(), ecosched_sim::swf::ParseSwfError>(())
/// ```
pub fn parse_swf(text: &str) -> Result<Vec<SwfJob>, ParseSwfError> {
    let mut jobs = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        // Strip a trailing comment first: this also handles whole-line
        // comments and leaves CRLF remnants to the trim.
        let data = raw.find(';').map_or(raw, |pos| &raw[..pos]);
        let line = data.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 9 {
            return Err(ParseSwfError {
                line: index + 1,
                reason: format!("expected ≥ 9 fields, found {}", fields.len()),
            });
        }
        let parse = |pos: usize| -> Result<i64, ParseSwfError> {
            fields[pos].parse().map_err(|_| ParseSwfError {
                line: index + 1,
                reason: format!("field {} ({:?}) is not an integer", pos + 1, fields[pos]),
            })
        };
        let id = parse(0)?;
        // `-1` marks an unknown submit time in anonymized traces; treat it
        // as the trace epoch rather than dropping the job.
        let submit = parse(1)?.max(0);
        let run_time = parse(3)?;
        let allocated = parse(4)?;
        let requested_procs = parse(7)?;
        let requested_time = parse(8)?;

        let procs = if requested_procs > 0 {
            requested_procs
        } else {
            allocated
        };
        let time = if requested_time > 0 {
            requested_time
        } else {
            run_time
        };
        if procs <= 0 || time <= 0 || id < 0 {
            continue; // failed/cancelled entry
        }
        jobs.push(SwfJob {
            id: id as u32,
            submit,
            run_time,
            procs: procs as usize,
            requested_time: time,
        });
    }
    Ok(jobs)
}

/// How to turn rigid trace jobs into economic resource requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwfImportConfig {
    /// Take at most this many jobs (in trace order). `0` = no limit.
    pub max_jobs: usize,
    /// Cap each job's processor count (traces routinely exceed a small
    /// VO's width). `0` = no cap.
    pub max_procs: usize,
    /// Divide trace seconds by this factor to get scheduler ticks.
    pub seconds_per_tick: i64,
    /// Minimum node performance requirement, drawn per job (the paper's
    /// `[1, 2]` by default).
    pub min_perf: RealRange,
    /// The R3 price-cap factor (see `JobGenConfig::budget_factor`).
    pub budget_factor: RealRange,
    /// The price-model base (keep equal to the slot generator's).
    pub price_base: f64,
}

impl Default for SwfImportConfig {
    fn default() -> Self {
        SwfImportConfig {
            max_jobs: 0,
            max_procs: 6,
            seconds_per_tick: 60,
            min_perf: RealRange::new(1.0, 2.0),
            budget_factor: RealRange::new(0.75, 1.25),
            price_base: 1.7,
        }
    }
}

/// Converts parsed trace jobs into an economic [`Batch`], preserving trace
/// order as batch priority. Jobs whose scaled time rounds to zero are
/// dropped.
///
/// # Examples
///
/// ```
/// use ecosched_sim::swf::{batch_from_swf, parse_swf, SwfImportConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let jobs = parse_swf("1 0 5 7200 4 -1 -1 4 7200 -1 1 1 1 1 1 1 -1 -1\n")?;
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let batch = batch_from_swf(&jobs, &SwfImportConfig::default(), &mut rng);
/// assert_eq!(batch.len(), 1);
/// assert_eq!(batch.as_slice()[0].request().wall_time().ticks(), 120); // 7200 s / 60
/// # Ok::<(), ecosched_sim::swf::ParseSwfError>(())
/// ```
pub fn batch_from_swf<R: Rng + ?Sized>(
    jobs: &[SwfJob],
    config: &SwfImportConfig,
    rng: &mut R,
) -> Batch {
    assert!(
        config.seconds_per_tick > 0,
        "seconds_per_tick must be positive"
    );
    let limit = if config.max_jobs == 0 {
        usize::MAX
    } else {
        config.max_jobs
    };
    let mut out = Vec::new();
    for job in jobs.iter().take(limit) {
        let ticks = job.requested_time / config.seconds_per_tick;
        if ticks <= 0 {
            continue;
        }
        let procs = if config.max_procs == 0 {
            job.procs
        } else {
            job.procs.min(config.max_procs)
        };
        let min_perf = draw_real(rng, config.min_perf);
        let factor = draw_real(rng, config.budget_factor);
        let cap = factor * config.price_base.powf(min_perf);
        let request = ResourceRequest::new(
            procs,
            TimeDelta::new(ticks),
            Perf::from_f64(min_perf),
            Price::from_f64(cap),
        )
        .expect("positive procs and ticks form a valid request");
        out.push(Job::new(JobId::new(out.len() as u32), request));
    }
    Batch::from_jobs(out).expect("sequential ids cannot collide")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: test cluster
1 0 10 3600 4 -1 -1 4 3600 -1 1 3 4 1 1 1 -1 -1
2 30 5 1800 2 -1 -1 2 2400 -1 1 3 4 1 1 1 -1 -1
; a trailing comment
3 60 0 0 0 -1 -1 -1 -1 -1 0 3 4 1 1 1 -1 -1
4 90 2 600 16 -1 -1 16 900 -1 1 3 4 1 1 1 -1 -1
";

    #[test]
    fn parses_and_skips_junk() {
        let jobs = parse_swf(SAMPLE).unwrap();
        // Job 3 is a cancelled entry (no procs/time) and is dropped.
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].id, 1);
        assert_eq!(jobs[1].requested_time, 2400);
        assert_eq!(jobs[2].procs, 16);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("9 fields"));
        // The corrupt field must be one the parser consumes (run time).
        let err = parse_swf("; ok\n1 0 5 x 4 -1 -1 4 3600\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(format!("{err}").contains("line 2"));
    }

    #[test]
    fn tolerates_crlf_trailing_comments_and_sentinels() {
        // CRLF endings, an inline trailing comment, and a -1 submit
        // sentinel — all three hardening cases on one trace.
        let text = "; header\r\n1 -1 5 3600 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1 ; first\r\n\r\n2 30 5 1800 2 -1 -1 2 2400 -1 1 1 1 1 1 1 -1 -1\r\n";
        let jobs = parse_swf(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].submit, 0, "-1 submit clamps to the trace epoch");
        assert_eq!(jobs[0].procs, 4);
        assert_eq!(jobs[1].submit, 30);
        // A line that is only a comment after stripping is skipped, not a
        // field-count error.
        assert!(parse_swf("  ; indented comment\n").unwrap().is_empty());
    }

    #[test]
    fn write_swf_round_trips() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let text = write_swf(&jobs);
        assert_eq!(parse_swf(&text).unwrap(), jobs);
        // Every emitted line is a full 18-field SWF record.
        for line in text.lines().filter(|l| !l.starts_with(';')) {
            assert_eq!(line.split_whitespace().count(), 18);
        }
    }

    #[test]
    fn batch_conversion_scales_and_caps() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let batch = batch_from_swf(&jobs, &SwfImportConfig::default(), &mut rng);
        assert_eq!(batch.len(), 3);
        let first = batch.as_slice()[0].request();
        assert_eq!(first.wall_time().ticks(), 60); // 3600 s / 60
        assert_eq!(first.nodes(), 4);
        // 16-proc trace job capped to the VO width of 6.
        assert_eq!(batch.as_slice()[2].request().nodes(), 6);
        // Economic attributes follow the R3 rule.
        for job in &batch {
            let p = job.request().min_perf().to_f64();
            assert!((1.0..=2.0).contains(&p));
            let cap = job.request().price_cap().to_f64();
            let base = 1.7f64.powf(p);
            assert!(cap >= 0.74 * base && cap <= 1.26 * base);
        }
    }

    #[test]
    fn limits_are_honoured() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let config = SwfImportConfig {
            max_jobs: 1,
            ..SwfImportConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(batch_from_swf(&jobs, &config, &mut rng).len(), 1);
        // Sub-tick jobs are dropped.
        let config = SwfImportConfig {
            seconds_per_tick: 100_000,
            ..SwfImportConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert!(batch_from_swf(&jobs, &config, &mut rng).is_empty());
    }

    #[test]
    fn conversion_is_deterministic_per_seed() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let config = SwfImportConfig::default();
        let a = batch_from_swf(&jobs, &config, &mut ChaCha8Rng::seed_from_u64(1));
        let b = batch_from_swf(&jobs, &config, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn imported_batch_schedules_end_to_end() {
        use crate::{run_iteration, IterationConfig, SlotGenConfig, SlotGenerator};
        use ecosched_select::Amp;
        let jobs = parse_swf(SAMPLE).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batch = batch_from_swf(&jobs, &SwfImportConfig::default(), &mut rng);
        let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
        let result = run_iteration(Amp::new(), &list, &batch, &IterationConfig::default());
        assert!(result.is_ok());
    }
}
