//! Descriptive statistics over vacant-slot lists.
//!
//! Used by the generator-validation experiment: the paper replaced "the
//! whole distributed system model" with directly generated slot lists;
//! profiling both shows in which respects the shortcut is faithful.

use ecosched_core::{SlotList, TimeDelta};
use serde::{Deserialize, Serialize};

/// Summary statistics of one slot list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotListProfile {
    /// Number of slots.
    pub slots: usize,
    /// Mean slot length in ticks.
    pub mean_length: f64,
    /// Mean node performance rate.
    pub mean_perf: f64,
    /// Mean price per time unit.
    pub mean_price: f64,
    /// Mean price/quality ratio `C/P` (Sec. 6's measure).
    pub mean_price_quality: f64,
    /// Fraction of adjacent slot pairs sharing a start time.
    pub same_start_share: f64,
    /// Mean number of slots concurrently live at each slot start.
    pub mean_concurrency: f64,
    /// Distance from first start to last end.
    pub horizon: TimeDelta,
}

impl SlotListProfile {
    /// Profiles a slot list. Zero-valued for an empty list.
    #[must_use]
    pub fn of(list: &SlotList) -> Self {
        let n = list.len();
        if n == 0 {
            return SlotListProfile {
                slots: 0,
                mean_length: 0.0,
                mean_perf: 0.0,
                mean_price: 0.0,
                mean_price_quality: 0.0,
                same_start_share: 0.0,
                mean_concurrency: 0.0,
                horizon: TimeDelta::ZERO,
            };
        }
        let nf = n as f64;
        let mean_length = list.iter().map(|s| s.length().ticks() as f64).sum::<f64>() / nf;
        let mean_perf = list.iter().map(|s| s.perf().to_f64()).sum::<f64>() / nf;
        let mean_price = list.iter().map(|s| s.price().to_f64()).sum::<f64>() / nf;
        let mean_price_quality = list
            .iter()
            .map(|s| s.price().to_f64() / s.perf().to_f64())
            .sum::<f64>()
            / nf;
        let same_start_share = if n < 2 {
            0.0
        } else {
            list.iter()
                .zip(list.iter().skip(1))
                .filter(|(a, b)| a.start() == b.start())
                .count() as f64
                / (n - 1) as f64
        };
        let mean_concurrency = list
            .iter()
            .map(|anchor| {
                list.iter()
                    .filter(|s| s.start() <= anchor.start() && anchor.start() < s.end())
                    .count() as f64
            })
            .sum::<f64>()
            / nf;
        let first = list.earliest_start().expect("non-empty list");
        let last_end = list.iter().map(|s| s.end()).max().expect("non-empty list");
        SlotListProfile {
            slots: n,
            mean_length,
            mean_perf,
            mean_price,
            mean_price_quality,
            same_start_share,
            mean_concurrency,
            horizon: last_end - first,
        }
    }

    /// Averages a set of profiles (component-wise; `slots` rounds down).
    #[must_use]
    pub fn mean_of(profiles: &[SlotListProfile]) -> SlotListProfile {
        if profiles.is_empty() {
            return SlotListProfile::of(&SlotList::new());
        }
        let nf = profiles.len() as f64;
        SlotListProfile {
            slots: (profiles.iter().map(|p| p.slots).sum::<usize>() as f64 / nf) as usize,
            mean_length: profiles.iter().map(|p| p.mean_length).sum::<f64>() / nf,
            mean_perf: profiles.iter().map(|p| p.mean_perf).sum::<f64>() / nf,
            mean_price: profiles.iter().map(|p| p.mean_price).sum::<f64>() / nf,
            mean_price_quality: profiles.iter().map(|p| p.mean_price_quality).sum::<f64>() / nf,
            same_start_share: profiles.iter().map(|p| p.same_start_share).sum::<f64>() / nf,
            mean_concurrency: profiles.iter().map(|p| p.mean_concurrency).sum::<f64>() / nf,
            horizon: TimeDelta::new(
                (profiles.iter().map(|p| p.horizon.ticks()).sum::<i64>() as f64 / nf) as i64,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, Span, TimePoint};

    fn slot(id: u64, node: u32, perf: f64, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::from_f64(perf),
            Price::from_credits(price),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn profile_of_handcrafted_list() {
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 2, 0, 100),  // length 100
            slot(1, 1, 2.0, 4, 0, 50),   // length 50, same start
            slot(2, 2, 3.0, 6, 80, 180), // length 100
        ])
        .unwrap();
        let p = SlotListProfile::of(&list);
        assert_eq!(p.slots, 3);
        assert!((p.mean_length - (100.0 + 50.0 + 100.0) / 3.0).abs() < 1e-9);
        assert!((p.mean_perf - 2.0).abs() < 1e-9);
        assert!((p.mean_price - 4.0).abs() < 1e-9);
        assert!((p.mean_price_quality - 2.0).abs() < 1e-9);
        assert!((p.same_start_share - 0.5).abs() < 1e-9);
        // Concurrency at starts: at t=0 → 2 live; at t=0 → 2; at t=80 → 2.
        assert!((p.mean_concurrency - 2.0).abs() < 1e-9);
        assert_eq!(p.horizon, TimeDelta::new(180));
    }

    #[test]
    fn empty_list_profiles_to_zero() {
        let p = SlotListProfile::of(&SlotList::new());
        assert_eq!(p.slots, 0);
        assert_eq!(p.mean_concurrency, 0.0);
        assert_eq!(SlotListProfile::mean_of(&[]).slots, 0);
    }

    #[test]
    fn mean_of_averages_componentwise() {
        let list = SlotList::from_slots(vec![slot(0, 0, 1.0, 2, 0, 100)]).unwrap();
        let p = SlotListProfile::of(&list);
        let m = SlotListProfile::mean_of(&[p, p]);
        assert_eq!(m.slots, 1);
        assert!((m.mean_length - p.mean_length).abs() < 1e-9);
    }

    #[test]
    fn generated_lists_profile_within_configured_bands() {
        use crate::{SlotGenConfig, SlotGenerator};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
        let p = SlotListProfile::of(&list);
        assert!((50.0..=300.0).contains(&p.mean_length));
        assert!((1.0..=3.0).contains(&p.mean_perf));
        // Same-start share tracks the configured 0.4 probability plus the
        // zero draws of the [0, 10] gap (≈ 0.4 + 0.6/11 ≈ 0.45 expected).
        assert!(
            (0.25..=0.65).contains(&p.same_start_share),
            "{}",
            p.same_start_share
        );
        // "At each moment of time we have at least five different slots
        // ready for utilization" (paper Sec. 5).
        assert!(p.mean_concurrency >= 5.0, "{}", p.mean_concurrency);
    }
}
