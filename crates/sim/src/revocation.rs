//! Seeded fault injection: the revocation model and repair accounting.
//!
//! The paper's resources are non-dedicated — owner jobs have priority, so
//! a vacant slot published to the metascheduler can be withdrawn between
//! the alternatives search and the launch. The paper's Sec. 5 study keeps
//! the environment static; this module is our extension that injects that
//! churn deterministically so the repair tiers (failover → bounded repair
//! search → postpone) can be exercised and measured.
//!
//! Three fault processes, all driven by the cycle's `ChaCha8Rng`:
//!
//! * **per-slot drops** — each published slot is independently revoked
//!   with probability [`RevocationConfig::per_slot`];
//! * **domain outages** — nodes are grouped into pseudo-domains of
//!   [`RevocationConfig::nodes_per_domain`] consecutive node indices, and
//!   each domain goes down with probability
//!   [`RevocationConfig::domain_outage`], killing every slot on its nodes;
//! * **price-withdrawal bursts** — with probability
//!   [`RevocationConfig::price_burst`] per cycle, the owners of the most
//!   expensive [`RevocationConfig::burst_fraction`] of the slots withdraw
//!   their offers at once (a correlated economic shock).
//!
//! A disabled model ([`RevocationConfig::none`]) draws **nothing** from
//! the RNG, so runs without churn remain byte-identical to the
//! pre-revocation simulator.

use std::collections::BTreeSet;

use ecosched_core::{Lease, Revocation, RevocationReason, Slot, SlotList};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::{positive_int, probability, ConfigError};
use crate::rng_ext::draw_bool;

/// Configuration of the revocation fault model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RevocationConfig {
    /// Independent per-slot revocation probability.
    pub per_slot: f64,
    /// Per-domain outage probability (each pseudo-domain flips
    /// independently per cycle).
    pub domain_outage: f64,
    /// Consecutive node indices per pseudo-domain for the outage process.
    pub nodes_per_domain: i64,
    /// Probability that a correlated price-withdrawal burst fires this
    /// cycle.
    pub price_burst: f64,
    /// Fraction of the most expensive slots a burst withdraws.
    pub burst_fraction: f64,
}

impl RevocationConfig {
    /// The disabled model: no fault process fires and no RNG draw happens.
    #[must_use]
    pub fn none() -> Self {
        RevocationConfig {
            per_slot: 0.0,
            domain_outage: 0.0,
            nodes_per_domain: 8,
            price_burst: 0.0,
            burst_fraction: 0.0,
        }
    }

    /// The pure per-slot Bernoulli model (the churn-sweep scenario).
    #[must_use]
    pub fn per_slot(p: f64) -> Self {
        RevocationConfig {
            per_slot: p,
            ..RevocationConfig::none()
        }
    }

    /// Returns `true` if any fault process can fire.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.per_slot > 0.0 || self.domain_outage > 0.0 || self.price_burst > 0.0
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first probability or fraction
    /// outside `[0, 1]`, or a non-positive domain size.
    pub fn validate(&self) -> Result<(), ConfigError> {
        probability(self.per_slot, "per_slot")?;
        probability(self.domain_outage, "domain_outage")?;
        positive_int(self.nodes_per_domain, "nodes_per_domain")?;
        probability(self.price_burst, "price_burst")?;
        probability(self.burst_fraction, "burst_fraction")
    }
}

impl Default for RevocationConfig {
    /// Disabled — churn is opt-in.
    fn default() -> Self {
        RevocationConfig::none()
    }
}

/// Draws seeded revocations against a published slot list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevocationModel {
    config: RevocationConfig,
}

impl RevocationModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`RevocationConfig::validate`]).
    #[must_use]
    pub fn new(config: RevocationConfig) -> Self {
        config.validate().expect("invalid revocation configuration");
        RevocationModel { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &RevocationConfig {
        &self.config
    }

    /// Draws this cycle's revocations against the published `list`.
    ///
    /// Revocations carry the full `(node, span)` region of the withdrawn
    /// slot — the published list is the owners' offer, so a withdrawal
    /// takes the whole offer back regardless of how the metascheduler has
    /// since carved it. Each slot is revoked at most once; the domain
    /// outage draws first, then the per-slot drops, then the burst, each
    /// skipping already-revoked slots. A disabled model returns an empty
    /// vector without touching `rng`.
    pub fn draw<R: Rng + ?Sized>(&self, list: &SlotList, rng: &mut R) -> Vec<Revocation> {
        if !self.config.is_enabled() {
            return Vec::new();
        }
        let mut revocations: Vec<Revocation> = Vec::new();
        let mut revoked = vec![false; list.len()];

        if self.config.domain_outage > 0.0 {
            let domain_of = |node: u32| i64::from(node) / self.config.nodes_per_domain;
            let domains: BTreeSet<i64> = list
                .iter()
                .map(|slot| domain_of(slot.node().index()))
                .collect();
            for domain in domains {
                if !draw_bool(rng, self.config.domain_outage) {
                    continue;
                }
                for (i, slot) in list.iter().enumerate() {
                    if !revoked[i] && domain_of(slot.node().index()) == domain {
                        revoked[i] = true;
                        revocations.push(Revocation {
                            slot: slot.id(),
                            node: slot.node(),
                            span: slot.span(),
                            reason: RevocationReason::DomainOutage {
                                domain: domain as u32,
                            },
                        });
                    }
                }
            }
        }

        if self.config.per_slot > 0.0 {
            for (i, slot) in list.iter().enumerate() {
                if !revoked[i] && draw_bool(rng, self.config.per_slot) {
                    revoked[i] = true;
                    revocations.push(Revocation {
                        slot: slot.id(),
                        node: slot.node(),
                        span: slot.span(),
                        reason: RevocationReason::SlotDrop,
                    });
                }
            }
        }

        if self.config.price_burst > 0.0 && draw_bool(rng, self.config.price_burst) {
            let take = (self.config.burst_fraction * list.len() as f64).ceil() as usize;
            let slots: Vec<&Slot> = list.iter().collect();
            // Most expensive first; ties broken by id for determinism.
            let mut by_price: Vec<usize> = (0..list.len()).filter(|&i| !revoked[i]).collect();
            by_price.sort_by_key(|&i| {
                let slot = slots[i];
                (std::cmp::Reverse(slot.price()), slot.id())
            });
            for &i in by_price.iter().take(take) {
                let slot = slots[i];
                revoked[i] = true;
                revocations.push(Revocation {
                    slot: slot.id(),
                    node: slot.node(),
                    span: slot.span(),
                    reason: RevocationReason::PriceWithdrawal,
                });
            }
        }

        revocations
    }

    /// Draws revocations against the **live** execution state: the vacant
    /// `list` plus the regions currently held by `leases`.
    ///
    /// The batch-cycle path ([`RevocationModel::draw`]) samples the
    /// published list only, so faults can never land on time the repair
    /// tiers have since carved out — a known blind spot (ROADMAP). The
    /// discrete-event engine strikes *mid-cycle*, when committed leases
    /// (including repair-carved replacements) are part of the owners'
    /// exposed surface, so its sampling domain is the union of the vacant
    /// slots and every active lease's used regions. Lease regions are
    /// disjoint from the vacant list by construction (commitment subtracts
    /// them), so the union is a valid slot list.
    ///
    /// The fault processes and their RNG draw order are identical to
    /// [`RevocationModel::draw`]; with no active leases the two produce
    /// the same revocations, and a disabled model still returns an empty
    /// vector without touching `rng` — the legacy byte-stability guarantee
    /// is unaffected because the metascheduler keeps calling `draw`.
    pub fn draw_live<R: Rng + ?Sized>(
        &self,
        list: &SlotList,
        leases: &[Lease],
        rng: &mut R,
    ) -> Vec<Revocation> {
        if !self.config.is_enabled() {
            return Vec::new();
        }
        let mut domain = list.clone();
        for lease in leases {
            for ws in lease.window.slots() {
                let id = domain.mint_id();
                let slot = Slot::new(
                    id,
                    ws.node(),
                    ws.perf(),
                    ws.price(),
                    lease.window.used_span(ws),
                )
                .expect("lease members have positive runtimes");
                domain
                    .insert(slot)
                    .expect("lease regions are disjoint from the vacant list");
            }
        }
        self.draw(&domain, rng)
    }
}

/// Counters describing one cycle's (or one run's) fault-and-repair
/// activity. Every injected revocation is accounted for:
/// `revocations_injected == revocations_breaking + revocations_vacant_only`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairStats {
    /// Revocations drawn by the model.
    pub revocations_injected: u64,
    /// Revocations whose region intersected at least one committed lease.
    pub revocations_breaking: u64,
    /// Revocations that only removed vacant (uncommitted) time.
    pub revocations_vacant_only: u64,
    /// Committed leases broken by at least one revocation.
    pub leases_broken: u64,
    /// Alternative re-validations attempted during failover (tier 1).
    pub failover_validations: u64,
    /// Failovers whose re-validation failed because a region was revoked.
    pub failover_stale_revoked: u64,
    /// Failovers whose re-validation failed because a region was consumed
    /// by another job's commitment or repair.
    pub failover_stale_consumed: u64,
    /// Broken leases recovered by adopting a surviving alternative.
    pub failovers_taken: u64,
    /// Bounded repair searches started (tier 2).
    pub repairs_attempted: u64,
    /// Bounded repair searches that found a fresh window.
    pub repairs_succeeded: u64,
    /// Full rescans started after the anchored repair was exhausted
    /// (tier 2.5, only under
    /// [`RepairPolicy::full_rescan_on_exhaustion`]).
    ///
    /// [`RepairPolicy::full_rescan_on_exhaustion`]: crate::RepairPolicy::full_rescan_on_exhaustion
    pub full_rescans_attempted: u64,
    /// Full rescans that recovered a window the anchored tiers missed.
    pub full_rescans_succeeded: u64,
    /// Total recovered-minus-original window cost over every failover and
    /// repair, in credits (negative when recovery found cheaper windows).
    pub repair_cost_delta: f64,
    /// AMP acceptance tests during repair scans that were rejected by the
    /// job budget — windows the repair refused rather than overspend.
    pub budget_violations_avoided: u64,
    /// Scan-work counters of every repair search, including the
    /// checkpoint-resume proof ([`ScanStats::checkpoint_hits`]).
    ///
    /// [`ScanStats::checkpoint_hits`]: ecosched_select::ScanStats::checkpoint_hits
    pub repair_scan: ecosched_select::ScanStats,
    /// Jobs postponed because the search found no alternatives at all.
    pub postponed_no_alternatives: u64,
    /// Broken jobs postponed after every alternative went stale and the
    /// repair search came up empty.
    pub postponed_stale: u64,
    /// Broken jobs postponed because the repair attempt budget ran out.
    pub postponed_budget_exhausted: u64,
}

impl RepairStats {
    /// Adds another counter set into this one (`repair_scan` merges per
    /// [`ScanStats::merge`]).
    ///
    /// [`ScanStats::merge`]: ecosched_select::ScanStats::merge
    pub fn merge(&mut self, other: &RepairStats) {
        self.revocations_injected += other.revocations_injected;
        self.revocations_breaking += other.revocations_breaking;
        self.revocations_vacant_only += other.revocations_vacant_only;
        self.leases_broken += other.leases_broken;
        self.failover_validations += other.failover_validations;
        self.failover_stale_revoked += other.failover_stale_revoked;
        self.failover_stale_consumed += other.failover_stale_consumed;
        self.failovers_taken += other.failovers_taken;
        self.repairs_attempted += other.repairs_attempted;
        self.repairs_succeeded += other.repairs_succeeded;
        self.full_rescans_attempted += other.full_rescans_attempted;
        self.full_rescans_succeeded += other.full_rescans_succeeded;
        self.repair_cost_delta += other.repair_cost_delta;
        self.budget_violations_avoided += other.budget_violations_avoided;
        self.repair_scan.merge(&other.repair_scan);
        self.postponed_no_alternatives += other.postponed_no_alternatives;
        self.postponed_stale += other.postponed_stale;
        self.postponed_budget_exhausted += other.postponed_budget_exhausted;
    }

    /// Broken leases that recovered without postponing.
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.failovers_taken + self.repairs_succeeded + self.full_rescans_succeeded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, Span, TimePoint};
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn slot(id: u64, node: u32, price: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::UNIT,
            Price::from_credits(price),
            Span::new(TimePoint::new(0), TimePoint::new(100)).unwrap(),
        )
        .unwrap()
    }

    fn list(n: u32) -> SlotList {
        SlotList::from_slots(
            (0..n)
                .map(|i| slot(u64::from(i), i, 2 + i64::from(i)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn disabled_model_draws_nothing() {
        let model = RevocationModel::new(RevocationConfig::none());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(model.draw(&list(20), &mut rng).is_empty());
        // The RNG was untouched: it yields the same stream as a fresh one.
        let mut fresh = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn per_slot_drops_are_seeded_and_plausible() {
        let model = RevocationModel::new(RevocationConfig::per_slot(0.3));
        let draw = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            model.draw(&list(200), &mut rng)
        };
        let a = draw(7);
        assert_eq!(a, draw(7));
        assert!(!a.is_empty() && a.len() < 150, "{} revoked", a.len());
        assert!(a.iter().all(|r| r.reason == RevocationReason::SlotDrop));
    }

    #[test]
    fn domain_outage_kills_whole_domains() {
        let model = RevocationModel::new(RevocationConfig {
            domain_outage: 0.5,
            nodes_per_domain: 5,
            ..RevocationConfig::none()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let revocations = model.draw(&list(40), &mut rng);
        assert!(!revocations.is_empty());
        // Every revocation names its domain, and each hit domain is
        // revoked completely (5 slots per domain in this list).
        let mut per_domain = std::collections::HashMap::new();
        for r in &revocations {
            let RevocationReason::DomainOutage { domain } = r.reason else {
                panic!("unexpected reason {:?}", r.reason);
            };
            assert_eq!(i64::from(r.node.index()) / 5, i64::from(domain));
            *per_domain.entry(domain).or_insert(0u32) += 1;
        }
        assert!(per_domain.values().all(|&n| n == 5));
    }

    #[test]
    fn price_burst_takes_the_most_expensive() {
        let model = RevocationModel::new(RevocationConfig {
            price_burst: 1.0,
            burst_fraction: 0.25,
            ..RevocationConfig::none()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let revocations = model.draw(&list(20), &mut rng);
        assert_eq!(revocations.len(), 5); // ⌈0.25 · 20⌉
                                          // The list prices rise with the node index, so the top-priced
                                          // slots are the last five.
        let mut nodes: Vec<u32> = revocations.iter().map(|r| r.node.index()).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![15, 16, 17, 18, 19]);
        assert!(revocations
            .iter()
            .all(|r| r.reason == RevocationReason::PriceWithdrawal));
    }

    #[test]
    fn each_slot_is_revoked_at_most_once() {
        let model = RevocationModel::new(RevocationConfig {
            per_slot: 0.5,
            domain_outage: 0.5,
            nodes_per_domain: 4,
            price_burst: 1.0,
            burst_fraction: 0.5,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let revocations = model.draw(&list(40), &mut rng);
        let mut ids: Vec<u64> = revocations.iter().map(|r| r.slot.raw()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "a slot was revoked twice");
    }

    fn lease_over(node: u32, a: i64, b: i64, price: i64) -> Lease {
        use ecosched_core::{JobId, TimeDelta, Window, WindowSlot};
        let member = WindowSlot::from_slot(
            &Slot::new(
                SlotId::new(900 + u64::from(node)),
                NodeId::new(node),
                Perf::UNIT,
                Price::from_credits(price),
                Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
            )
            .unwrap(),
            TimeDelta::new(b - a),
        )
        .unwrap();
        Lease::planned(
            JobId::new(0),
            Window::new(TimePoint::new(a), vec![member]).unwrap(),
        )
    }

    #[test]
    fn live_draw_can_strike_lease_held_regions() {
        // The vacant list covers nodes 0..20; the lease holds carved-out
        // time on node 99 that `draw` could never sample.
        let model = RevocationModel::new(RevocationConfig::per_slot(1.0));
        let leases = vec![lease_over(99, 200, 260, 3)];
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let revocations = model.draw_live(&list(20), &leases, &mut rng);
        assert_eq!(revocations.len(), 21, "every vacant slot plus the lease");
        let hit = revocations
            .iter()
            .find(|r| r.node == NodeId::new(99))
            .expect("the lease region is part of the sampling domain");
        assert_eq!(
            hit.span,
            Span::new(TimePoint::new(200), TimePoint::new(260)).unwrap()
        );
        assert!(leases[0].broken_by(hit));
    }

    #[test]
    fn live_draw_without_leases_matches_the_legacy_draw() {
        let model = RevocationModel::new(RevocationConfig {
            per_slot: 0.3,
            price_burst: 0.5,
            burst_fraction: 0.2,
            ..RevocationConfig::none()
        });
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(
            model.draw_live(&list(30), &[], &mut a),
            model.draw(&list(30), &mut b)
        );
    }

    #[test]
    fn disabled_live_draw_touches_no_rng() {
        let model = RevocationModel::new(RevocationConfig::none());
        let leases = vec![lease_over(5, 0, 40, 2)];
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        assert!(model.draw_live(&list(10), &leases, &mut rng).is_empty());
        let mut fresh = ChaCha8Rng::seed_from_u64(10);
        assert_eq!(rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn config_validation() {
        assert!(RevocationConfig::none().validate().is_ok());
        assert!(!RevocationConfig::none().is_enabled());
        assert!(RevocationConfig::per_slot(0.1).is_enabled());
        assert_eq!(
            RevocationConfig::per_slot(1.5).validate(),
            Err(ConfigError::NotAProbability { field: "per_slot" })
        );
        assert_eq!(
            RevocationConfig {
                nodes_per_domain: 0,
                ..RevocationConfig::none()
            }
            .validate(),
            Err(ConfigError::NotPositive {
                field: "nodes_per_domain"
            })
        );
    }

    #[test]
    fn repair_stats_merge_is_additive() {
        let mut a = RepairStats {
            revocations_injected: 3,
            revocations_breaking: 1,
            revocations_vacant_only: 2,
            failovers_taken: 1,
            repair_cost_delta: -2.5,
            ..RepairStats::default()
        };
        let b = RepairStats {
            revocations_injected: 2,
            revocations_breaking: 2,
            repairs_attempted: 1,
            repair_cost_delta: 4.0,
            ..RepairStats::default()
        };
        a.merge(&b);
        assert_eq!(a.revocations_injected, 5);
        assert_eq!(a.revocations_breaking, 3);
        assert_eq!(a.revocations_vacant_only, 2);
        assert_eq!(a.repairs_attempted, 1);
        assert_eq!(a.recovered(), 1);
        assert!((a.repair_cost_delta - 1.5).abs() < 1e-12);
    }
}
