//! Simulation substrate for the economic co-allocation study.
//!
//! Reproduces Sec. 5 of Toporkov et al. (PaCT 2011):
//!
//! * [`SlotGenerator`] / [`JobGenerator`] — the paper's generators with its
//!   exact distributions ([`SlotGenConfig`] / [`JobGenConfig`] default to
//!   the published parameters);
//! * [`mod@env`] — the full distributed-system model the paper's study skipped
//!   for convenience (domains, local job flows, vacant-slot extraction),
//!   built so the shortcut can be validated;
//! * [`run_iteration`] — one complete scheduling iteration: alternatives
//!   search → Eq. (2)/(3) VO limits → combination optimization;
//! * [`Metascheduler`] — the iterative loop with postponed-job carry-over
//!   and revocation-tolerant execution ([`RevocationModel`] injects seeded
//!   slot revocations; a three-tier repair pass — failover to surviving
//!   alternatives, bounded repair search, postpone — recovers and accounts
//!   for every fault in [`RepairStats`]);
//! * [`RunningStats`] — streaming aggregates for the experiment harness.
//!
//! # Example
//!
//! ```
//! use ecosched_select::Amp;
//! use ecosched_sim::{
//!     run_iteration, IterationConfig, JobGenConfig, JobGenerator, SlotGenConfig, SlotGenerator,
//! };
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(2011);
//! let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
//! let batch = JobGenerator::new(JobGenConfig::default()).generate(&mut rng);
//! let result = run_iteration(&Amp::new(), &list, &batch, &IterationConfig::default())?;
//! assert!(result.search.alternatives.total_found() > 0);
//! # Ok::<(), ecosched_sim::IterationError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
// Library code must propagate or document failures; bare `unwrap()` is
// reserved for tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod analysis;
mod config;
pub mod env;
mod iteration;
mod job_gen;
mod market;
mod metasched;
pub mod pricing;
mod revocation;
mod rng_ext;
mod slot_gen;
mod stats;
mod strategy;
pub mod swf;

pub use config::{ConfigError, IntRange, JobGenConfig, RealRange, SlotGenConfig};
pub use iteration::{
    run_iteration, run_iteration_cached, run_iteration_cached_with, run_iteration_with, Criterion,
    IterationConfig, IterationError, IterationResult, OptimizerKind, Parallelism, SearchMode,
};
pub use job_gen::JobGenerator;
pub use market::{MarketConfig, MarketCycleReport, MarketSimulation};
pub use metasched::{
    CycleSummary, CycleTrace, JobFate, Metascheduler, MetaschedulerReport, PostponeReason,
    RepairPolicy, TracedRun,
};
pub use revocation::{RepairStats, RevocationConfig, RevocationModel};
pub use slot_gen::SlotGenerator;
pub use stats::RunningStats;
pub use strategy::{ScheduleStrategy, StrategyConfig, StrategyVersion};
