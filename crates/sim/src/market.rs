//! The resource market: a persistent environment whose owners adjust
//! prices between scheduling cycles based on observed demand — the
//! integration of [`crate::pricing`] with the environment substrate and
//! the iteration driver.

use std::collections::BTreeMap;

use ecosched_core::{Money, NodeId, TimeDelta};
use rand::Rng;
use serde::{Deserialize, Serialize};

use ecosched_select::SlotSelector;

use crate::env::{extract_vacant_slots, generate_local_flow, EnvConfig, Environment};
use crate::iteration::{run_iteration, IterationConfig, IterationError};
use crate::job_gen::JobGenerator;
use crate::pricing::{PricingConfig, SupplyDemandPricing};
use crate::JobGenConfig;

/// Configuration of a market simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarketConfig {
    /// The physical environment.
    pub env: EnvConfig,
    /// The owners' pricing policy.
    pub pricing: PricingConfig,
    /// The global job flow.
    pub jobs: JobGenConfig,
    /// The per-cycle scheduling configuration.
    pub iteration: IterationConfig,
}

impl Default for MarketConfig {
    /// A *demand-balanced* market: a single modest domain and a job flow
    /// sized so the global demand is comparable to the published supply —
    /// otherwise every node idles below target and all prices sink to the
    /// floor, which teaches nothing about supply-and-demand trends.
    fn default() -> Self {
        let env = EnvConfig {
            domains: crate::IntRange::new(1, 2),
            nodes_per_domain: crate::IntRange::new(5, 8),
            local_jobs_per_domain: crate::IntRange::new(3, 7),
            ..EnvConfig::default()
        };
        let jobs = JobGenConfig {
            jobs_per_batch: crate::IntRange::new(6, 12),
            nodes: crate::IntRange::new(1, 4),
            ..JobGenConfig::default()
        };
        let pricing = PricingConfig {
            target_utilization: 0.25,
            ..PricingConfig::default()
        };
        MarketConfig {
            env,
            pricing,
            jobs,
            iteration: IterationConfig::default(),
        }
    }
}

/// One market cycle's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarketCycleReport {
    /// Jobs in the cycle's batch.
    pub batch_size: usize,
    /// Jobs scheduled.
    pub scheduled: usize,
    /// Owners' revenue: the committed assignment's total cost.
    pub revenue: Money,
    /// Mean price multiplier across all nodes after the cycle.
    pub mean_multiplier: f64,
    /// Mean multiplier over fast nodes (rate ≥ 2.0).
    pub fast_multiplier: f64,
    /// Mean multiplier over slow nodes (rate < 2.0).
    pub slow_multiplier: f64,
}

/// A persistent market: environment + evolving prices.
#[derive(Debug, Clone)]
pub struct MarketSimulation {
    config: MarketConfig,
    environment: Environment,
    pricing: SupplyDemandPricing,
    job_gen: JobGenerator,
}

impl MarketSimulation {
    /// Generates a market with a fresh environment.
    pub fn generate<R: Rng + ?Sized>(config: MarketConfig, rng: &mut R) -> Self {
        MarketSimulation {
            environment: Environment::generate(&config.env, rng),
            pricing: SupplyDemandPricing::new(config.pricing),
            job_gen: JobGenerator::new(config.jobs),
            config,
        }
    }

    /// The persistent environment.
    #[must_use]
    pub fn environment(&self) -> &Environment {
        &self.environment
    }

    /// The current pricing state.
    #[must_use]
    pub fn pricing(&self) -> &SupplyDemandPricing {
        &self.pricing
    }

    /// Runs one market cycle: local flows regenerate, slots are extracted
    /// and repriced, a fresh batch is scheduled, and owners adjust prices
    /// from the observed per-node utilization.
    ///
    /// # Errors
    ///
    /// Propagates [`IterationError`] from the scheduling iteration.
    pub fn run_cycle<R: Rng + ?Sized>(
        &mut self,
        selector: impl SlotSelector,
        rng: &mut R,
    ) -> Result<MarketCycleReport, IterationError> {
        let occupancy = generate_local_flow(&self.environment, &self.config.env, rng);
        let published = extract_vacant_slots(&self.environment, &occupancy);
        let priced = self.pricing.reprice(&published);
        let batch = self.job_gen.generate(rng);

        let result = run_iteration(selector, &priced, &batch, &self.config.iteration)?;

        // Sold node-ticks per node, from the committed assignment only.
        let mut sold: BTreeMap<NodeId, TimeDelta> = BTreeMap::new();
        let mut revenue = Money::ZERO;
        if let Some(assignment) = &result.assignment {
            revenue = assignment.total_cost();
            for choice in assignment.choices() {
                let ja = result
                    .search
                    .alternatives
                    // invariant: the optimizer only emits choices for jobs
                    // present in the search outcome it was given.
                    .get(choice.job)
                    .expect("choices refer to searched jobs");
                let window = ja.alternatives()[choice.alternative].window();
                for ws in window.slots() {
                    *sold.entry(ws.node()).or_insert(TimeDelta::ZERO) += ws.runtime();
                }
            }
        }

        // Observed utilization: sold fraction of the vacant time each node
        // actually published this cycle.
        for (_, resource) in self.environment.nodes() {
            let vacant: TimeDelta = occupancy
                .vacancies(resource.id(), self.environment.horizon())
                .iter()
                .map(|s| s.length())
                .sum();
            if !vacant.is_positive() {
                continue; // nothing offered, nothing to learn
            }
            let sold_ticks = sold.get(&resource.id()).copied().unwrap_or(TimeDelta::ZERO);
            let utilization = sold_ticks.ticks() as f64 / vacant.ticks() as f64;
            self.pricing.observe(resource.id(), utilization.min(1.0));
        }

        let (mut fast_sum, mut fast_n, mut slow_sum, mut slow_n) = (0.0, 0u32, 0.0, 0u32);
        for (_, resource) in self.environment.nodes() {
            let m = self.pricing.multiplier(resource.id());
            if resource.perf().to_f64() >= 2.0 {
                fast_sum += m;
                fast_n += 1;
            } else {
                slow_sum += m;
                slow_n += 1;
            }
        }
        Ok(MarketCycleReport {
            batch_size: batch.len(),
            scheduled: batch.len() - result.postponed.len(),
            revenue,
            mean_multiplier: self.pricing.mean_multiplier(),
            fast_multiplier: if fast_n > 0 {
                fast_sum / f64::from(fast_n)
            } else {
                1.0
            },
            slow_multiplier: if slow_n > 0 {
                slow_sum / f64::from(slow_n)
            } else {
                1.0
            },
        })
    }

    /// Runs `cycles` consecutive market cycles.
    ///
    /// # Errors
    ///
    /// Propagates [`IterationError`] from any cycle.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        selector: impl SlotSelector + Copy,
        cycles: usize,
        rng: &mut R,
    ) -> Result<Vec<MarketCycleReport>, IterationError> {
        (0..cycles).map(|_| self.run_cycle(selector, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_select::Amp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn market(seed: u64) -> (MarketSimulation, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let market = MarketSimulation::generate(MarketConfig::default(), &mut rng);
        (market, rng)
    }

    #[test]
    fn cycles_produce_revenue_and_move_prices() {
        let (mut market, mut rng) = market(3);
        let reports = market.run(Amp::new(), 8, &mut rng).unwrap();
        assert_eq!(reports.len(), 8);
        assert!(
            reports.iter().any(|r| r.revenue > Money::ZERO),
            "no cycle produced revenue"
        );
        let last = reports.last().unwrap();
        assert!(
            (last.mean_multiplier - 1.0).abs() > 1e-6,
            "prices never moved"
        );
    }

    #[test]
    fn multipliers_stay_within_bounds() {
        let (mut market, mut rng) = market(5);
        let reports = market.run(Amp::new(), 15, &mut rng).unwrap();
        let bounds = market.pricing().config();
        for report in reports {
            assert!(report.mean_multiplier >= bounds.min_multiplier);
            assert!(report.mean_multiplier <= bounds.max_multiplier);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (mut m1, mut r1) = market(7);
        let (mut m2, mut r2) = market(7);
        let a = m1.run(Amp::new(), 5, &mut r1).unwrap();
        let b = m2.run(Amp::new(), 5, &mut r2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn demand_prices_fast_nodes_above_slow_ones() {
        // Both ALP and AMP favour fast nodes (shorter runtimes, often
        // cheaper in total), so after a warm-up the fast tier must carry a
        // higher multiplier.
        let (mut market, mut rng) = market(11);
        let reports = market.run(Amp::new(), 20, &mut rng).unwrap();
        let last = reports.last().unwrap();
        assert!(
            last.fast_multiplier > last.slow_multiplier,
            "fast {} !> slow {}",
            last.fast_multiplier,
            last.slow_multiplier
        );
    }

    #[test]
    fn unsold_market_cools_prices() {
        // A job flow nobody can serve (jobs demand more nodes than any
        // batch can find at their price) leaves every node unsold, so all
        // multipliers must fall.
        let mut config = MarketConfig::default();
        config.jobs.budget_factor = crate::RealRange::new(0.01, 0.02);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut market = MarketSimulation::generate(config, &mut rng);
        let reports = market.run(Amp::new(), 6, &mut rng).unwrap();
        let last = reports.last().unwrap();
        assert!(
            last.mean_multiplier < 1.0,
            "idle market must cool prices, got {}",
            last.mean_multiplier
        );
    }
}
