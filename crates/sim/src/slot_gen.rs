//! The `SlotGenerator` of the paper's Sec. 5: directly generates the
//! ordered list of vacant slots with the study's distributions.

use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
use rand::Rng;

use crate::config::SlotGenConfig;
use crate::rng_ext::{draw_bool, draw_int, draw_real};

/// Generates ordered vacant-slot lists per the paper's distributions.
///
/// Each generated slot lives on its own [`NodeId`]: the paper's generator
/// abstracts away node identity, and a fresh node per slot keeps per-node
/// disjointness trivially true while preserving every distribution the
/// study defines.
///
/// # Examples
///
/// ```
/// use ecosched_sim::{SlotGenConfig, SlotGenerator};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
/// assert!((120..=150).contains(&list.len()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotGenerator {
    config: SlotGenConfig,
}

impl SlotGenerator {
    /// Creates a generator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SlotGenConfig::validate`]).
    #[must_use]
    pub fn new(config: SlotGenConfig) -> Self {
        config
            .validate()
            .expect("invalid slot generator configuration");
        SlotGenerator { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SlotGenConfig {
        &self.config
    }

    /// Generates one ordered vacant-slot list.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> SlotList {
        let count = draw_int(rng, self.config.slot_count) as usize;
        self.generate_exact(rng, count)
    }

    /// Generates a list with exactly `count` slots (used by the scaling
    /// experiment, which sweeps `m` explicitly).
    pub fn generate_exact<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> SlotList {
        let cfg = &self.config;
        let mut slots = Vec::with_capacity(count);
        let mut start: i64 = 0;
        for i in 0..count {
            if i > 0 && !draw_bool(rng, cfg.same_start_probability) {
                start += draw_int(rng, cfg.start_gap);
            }
            let length = draw_int(rng, cfg.slot_length);
            let perf = draw_real(rng, cfg.node_perf);
            let price = draw_real(rng, cfg.price_jitter) * cfg.price_base.powf(perf);
            let slot = Slot::new(
                SlotId::new(i as u64),
                NodeId::new(i as u32),
                Perf::from_f64(perf),
                Price::from_f64(price),
                Span::new(TimePoint::new(start), TimePoint::new(start + length))
                    .expect("positive lengths make valid spans"),
            )
            .expect("generated slots are non-empty");
            slots.push(slot);
        }
        // Starts are non-decreasing and ids strictly increase, so the
        // pre-sorted O(m) constructor applies.
        SlotList::from_sorted_slots(slots).expect("generated slots arrive in (start, id) order")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn generate(seed: u64) -> SlotList {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng)
    }

    #[test]
    fn respects_count_bounds() {
        for seed in 0..20 {
            let list = generate(seed);
            assert!((120..=150).contains(&list.len()), "{} slots", list.len());
        }
    }

    #[test]
    fn slots_respect_all_distributions() {
        let list = generate(3);
        for slot in &list {
            let len = slot.length().ticks();
            assert!((50..=300).contains(&len), "length {len}");
            let perf = slot.perf().to_f64();
            assert!((1.0..=3.0).contains(&perf), "perf {perf}");
            let price = slot.price().to_f64();
            let p = 1.7f64.powf(perf);
            assert!(
                price >= 0.74 * p && price <= 1.26 * p,
                "price {price} vs base {p}"
            );
        }
    }

    #[test]
    fn list_is_ordered_and_valid() {
        let list = generate(11);
        list.validate().unwrap();
        let starts: Vec<i64> = list.iter().map(|s| s.start().ticks()).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn same_start_clusters_appear() {
        // With probability 0.4 per neighbour and ~135 slots, shared starts
        // are statistically certain across a handful of seeds.
        let list = generate(5);
        let shares = list
            .iter()
            .zip(list.iter().skip(1))
            .filter(|(a, b)| a.start() == b.start())
            .count();
        assert!(shares > 10, "only {shares} shared starts");
    }

    #[test]
    fn generation_is_reproducible() {
        assert_eq!(generate(9), generate(9));
        assert_ne!(generate(9), generate(10));
    }

    #[test]
    fn exact_count_variant() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let list = SlotGenerator::new(SlotGenConfig::default()).generate_exact(&mut rng, 500);
        assert_eq!(list.len(), 500);
    }

    #[test]
    fn faster_nodes_cost_more_on_average() {
        // The price model ties price to performance; check the trend over a
        // large sample.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let list = SlotGenerator::new(SlotGenConfig::default()).generate_exact(&mut rng, 2000);
        let (mut slow_sum, mut slow_n, mut fast_sum, mut fast_n) = (0.0, 0, 0.0, 0);
        for slot in &list {
            if slot.perf().to_f64() < 1.5 {
                slow_sum += slot.price().to_f64();
                slow_n += 1;
            } else if slot.perf().to_f64() > 2.5 {
                fast_sum += slot.price().to_f64();
                fast_n += 1;
            }
        }
        assert!(slow_n > 0 && fast_n > 0);
        assert!(fast_sum / fast_n as f64 > 1.5 * (slow_sum / slow_n as f64));
    }
}
