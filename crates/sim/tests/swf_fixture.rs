//! Fixture-trace tests for the hardened SWF parser: a small archive-style
//! trace with CRLF line endings, `-1` sentinel fields, and trailing
//! comments must parse, survive a write/parse round trip, and convert to a
//! schedulable economic batch.

use ecosched_sim::swf::{batch_from_swf, parse_swf, write_swf, SwfImportConfig};
use ecosched_sim::{run_iteration, IterationConfig, SlotGenConfig, SlotGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const FIXTURE: &str = include_str!("data/mini.swf");

#[test]
fn fixture_really_exercises_the_hardening_cases() {
    assert!(FIXTURE.contains("\r\n"), "fixture must carry CRLF endings");
    assert!(
        FIXTURE
            .lines()
            .any(|l| !l.starts_with(';') && l.contains(';')),
        "fixture must carry a trailing comment on a data line"
    );
    assert!(
        FIXTURE.lines().any(|l| {
            let data = l.split(';').next().unwrap_or("");
            data.split_whitespace().nth(1) == Some("-1")
        }),
        "fixture must carry a -1 submit sentinel"
    );
}

#[test]
fn fixture_parses_with_sentinels_resolved() {
    let jobs = parse_swf(FIXTURE).expect("fixture parses");
    // Job 3 is a cancelled entry and is dropped.
    assert_eq!(jobs.len(), 4);
    let ids: Vec<u32> = jobs.iter().map(|j| j.id).collect();
    assert_eq!(ids, vec![1, 2, 4, 5]);
    // -1 submit clamps to the trace epoch.
    assert_eq!(jobs[0].submit, 0);
    // Requested procs fall back to the allocated count (field 5).
    assert_eq!(jobs[1].procs, 2);
    // Requested time falls back to the run time (field 4).
    assert_eq!(jobs[2].requested_time, 600);
    // Submit times stay in trace order.
    assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
}

#[test]
fn fixture_round_trips_through_write_swf() {
    let jobs = parse_swf(FIXTURE).expect("fixture parses");
    let rewritten = write_swf(&jobs);
    let reparsed = parse_swf(&rewritten).expect("rewritten trace parses");
    assert_eq!(reparsed, jobs);
    // A second round trip is byte-stable.
    assert_eq!(write_swf(&reparsed), rewritten);
}

#[test]
fn fixture_converts_and_schedules_end_to_end() {
    let jobs = parse_swf(FIXTURE).expect("fixture parses");
    let mut rng = ChaCha8Rng::seed_from_u64(15);
    let batch = batch_from_swf(&jobs, &SwfImportConfig::default(), &mut rng);
    assert_eq!(batch.len(), 4);
    let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
    let result = run_iteration(
        ecosched_select::Amp::new(),
        &list,
        &batch,
        &IterationConfig::default(),
    )
    .expect("imported batch schedules");
    assert!(result.search.alternatives.total_found() > 0);
}
