//! Property-based tests for revocation-tolerant execution: after any
//! interleaving of revocations and repairs, the committed state must stay
//! consistent — pairwise slot-disjoint leases, budgets respected, no lease
//! referencing a revoked region, every revocation accounted for, and every
//! job ending in a terminal fate.

use ecosched_core::{NodeId, Span};
use ecosched_select::{Alp, Amp};
use ecosched_sim::{
    CycleTrace, IterationConfig, JobFate, JobGenConfig, Metascheduler, RepairPolicy,
    RevocationConfig, SlotGenConfig, TracedRun,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn meta(churn: RevocationConfig) -> Metascheduler {
    Metascheduler::new(
        SlotGenConfig::default(),
        JobGenConfig::default(),
        IterationConfig::default(),
    )
    .with_revocation(churn)
}

fn run_amp(churn: RevocationConfig, cycles: usize, seed: u64) -> TracedRun {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    meta(churn)
        .run_traced(Amp::new(), cycles, &mut rng)
        .expect("simulation must not fail")
}

fn run_alp(churn: RevocationConfig, cycles: usize, seed: u64) -> TracedRun {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    meta(churn)
        .run_traced(Alp::new(), cycles, &mut rng)
        .expect("simulation must not fail")
}

/// Every post-repair guarantee checked on one cycle trace.
fn assert_cycle_consistent(trace: &CycleTrace) {
    // Terminal fates for the whole batch.
    assert_eq!(trace.fates.len(), trace.requests.len());
    let scheduled = trace.fates.iter().filter(|f| f.is_scheduled()).count();
    assert_eq!(trace.leases.len(), scheduled);

    // No surviving lease references a revoked region.
    for lease in &trace.leases {
        for r in &trace.revocations {
            assert!(
                !lease.broken_by(r),
                "lease of {} overlaps revocation {:?}",
                lease.job,
                r
            );
        }
    }

    // Committed windows stay pairwise slot-disjoint.
    let regions: Vec<(NodeId, Span)> = trace
        .leases
        .iter()
        .flat_map(|l| {
            l.window
                .slots()
                .iter()
                .map(move |ws| (ws.node(), l.window.used_span(ws)))
        })
        .collect();
    for (i, a) in regions.iter().enumerate() {
        for b in &regions[i + 1..] {
            assert!(
                a.0 != b.0 || !a.1.overlaps(b.1),
                "committed regions overlap: {a:?} vs {b:?}"
            );
        }
    }

    // Failed-over jobs cite a real alternative index.
    for fate in &trace.fates {
        if let JobFate::FailedOver { alternative } = fate {
            assert!(*alternative < 64, "implausible alternative index");
        }
    }
}

proptest! {
    #[test]
    fn repairs_preserve_consistency_under_amp(
        seed in 0u64..1_000_000,
        p_idx in 0usize..2,
        cycles in 2usize..5,
    ) {
        let p = [0.05f64, 0.15][p_idx];
        let run = run_amp(RevocationConfig::per_slot(p), cycles, seed);
        for (cycle, trace) in run.report.cycles.iter().zip(&run.traces) {
            assert_cycle_consistent(trace);
            // 100% revocation accounting.
            prop_assert_eq!(
                cycle.repair.revocations_injected,
                cycle.repair.revocations_breaking + cycle.repair.revocations_vacant_only
            );
            prop_assert_eq!(
                cycle.repair.revocations_injected as usize,
                trace.revocations.len()
            );
            prop_assert_eq!(
                cycle.repair.leases_broken,
                cycle.repair.recovered()
                    + cycle.repair.postponed_stale
                    + cycle.repair.postponed_budget_exhausted
            );
            // Every lease respects its job's AMP budget — including the
            // failed-over and repaired ones.
            for lease in &trace.leases {
                let request = &trace.requests[lease.job.index() as usize];
                prop_assert!(
                    lease.window.total_cost() <= request.budget(),
                    "lease cost {} exceeds budget {}",
                    lease.window.total_cost(),
                    request.budget()
                );
            }
            // Repairs are incremental: every repair scan resumed from its
            // seeded anchor instead of rescanning the whole list.
            prop_assert_eq!(
                cycle.repair.repair_scan.checkpoint_hits,
                cycle.repair.repairs_attempted
            );
        }
    }

    #[test]
    fn repairs_preserve_consistency_under_alp(
        seed in 0u64..1_000_000,
        p_idx in 0usize..2,
    ) {
        let p = [0.05f64, 0.15][p_idx];
        let run = run_alp(RevocationConfig::per_slot(p), 3, seed);
        for trace in &run.traces {
            assert_cycle_consistent(trace);
            // ALP's invariant is per-slot: every member price within the cap.
            for lease in &trace.leases {
                let request = &trace.requests[lease.job.index() as usize];
                for ws in lease.window.slots() {
                    prop_assert!(
                        ws.price() <= request.price_cap(),
                        "ALP member price {} above cap {}",
                        ws.price(),
                        request.price_cap()
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_fault_processes_stay_consistent(
        seed in 0u64..1_000_000,
        outage_idx in 0usize..3,
        burst_idx in 0usize..2,
    ) {
        let outage = [0.0f64, 0.1, 0.3][outage_idx];
        let burst = [0.0f64, 0.5][burst_idx];
        let churn = RevocationConfig {
            per_slot: 0.05,
            domain_outage: outage,
            nodes_per_domain: 10,
            price_burst: burst,
            burst_fraction: 0.2,
        };
        let run = run_amp(churn, 3, seed);
        for (cycle, trace) in run.report.cycles.iter().zip(&run.traces) {
            assert_cycle_consistent(trace);
            prop_assert_eq!(
                cycle.repair.revocations_injected,
                cycle.repair.revocations_breaking + cycle.repair.revocations_vacant_only
            );
        }
    }

    #[test]
    fn tight_budgets_still_terminate_cleanly(
        seed in 0u64..1_000_000,
        max_attempts in 0u32..4,
    ) {
        // Even with a tiny (or zero) repair budget, every broken lease must
        // end in a terminal fate — recovered or postponed with a reason.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let run = meta(RevocationConfig::per_slot(0.15))
            .with_repair_policy(RepairPolicy {
                max_attempts,
                ..RepairPolicy::default()
            })
            .run_traced(Amp::new(), 3, &mut rng)
            .expect("simulation must not fail");
        for (cycle, trace) in run.report.cycles.iter().zip(&run.traces) {
            assert_cycle_consistent(trace);
            prop_assert_eq!(
                cycle.repair.leases_broken,
                cycle.repair.recovered()
                    + cycle.repair.postponed_stale
                    + cycle.repair.postponed_budget_exhausted
            );
            if max_attempts == 0 {
                prop_assert_eq!(cycle.repair.recovered(), 0);
            }
        }
    }
}
