//! Regression coverage for the optional tier-2.5 full-rescan repair:
//! after the anchored repair budget is exhausted, retry once from the
//! start of the execution list. Released fragments of *other* broken
//! leases can form a feasible window that starts before the broken
//! plan's own start — a region the anchored scan can never revisit — so
//! without the rescan these jobs are postponed, not recovered.

use ecosched_select::Amp;
use ecosched_sim::{
    IterationConfig, JobGenConfig, Metascheduler, PostponeReason, RepairPolicy, RevocationConfig,
    SlotGenConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn meta(policy: RepairPolicy) -> Metascheduler {
    Metascheduler::new(
        SlotGenConfig::default(),
        JobGenConfig::default(),
        IterationConfig::default(),
    )
    .with_revocation(RevocationConfig::per_slot(0.25))
    .with_repair_policy(policy)
}

fn run(seed: u64, full_rescan: bool) -> ecosched_sim::MetaschedulerReport {
    let policy = RepairPolicy {
        max_attempts: 1,
        full_rescan_on_exhaustion: full_rescan,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    meta(policy)
        .run(Amp::new(), 4, &mut rng)
        .expect("simulation must not fail")
}

/// Scans a seed range and prints, for each seed, whether the rescan tier
/// recovered leases the anchored tiers could not. Used once to pick the
/// hardcoded seed below; kept (ignored) so the fixture can be re-derived
/// if generator defaults change.
#[test]
#[ignore = "fixture finder, run by hand"]
fn find_rescan_seed() {
    for seed in 0..64u64 {
        let off = run(seed, false).repair_totals();
        let on = run(seed, true).repair_totals();
        if on.full_rescans_succeeded > 0 {
            println!(
                "seed {seed}: rescans {}/{} recovered_on={} recovered_off={} \
                 exhausted_off={} repairs_attempted={} repairs_succeeded={}",
                on.full_rescans_succeeded,
                on.full_rescans_attempted,
                on.recovered(),
                off.recovered(),
                off.postponed_budget_exhausted,
                on.repairs_attempted,
                on.repairs_succeeded,
            );
        }
    }
}

/// With the flag off, the broken lease hits `RepairBudgetExhausted` and
/// is postponed; the identical seed with the flag on recovers it via the
/// full rescan. The fate delta is attributable to the new tier alone.
#[test]
fn full_rescan_recovers_lease_lost_without_it() {
    // Seed chosen by `find_rescan_seed`: the flag-off run postpones at
    // least one lease with a budget-exhausted reason that the flag-on
    // run repairs through tier 2.5.
    let seed = REGRESSION_SEED;
    let off = run(seed, false);
    let on = run(seed, true);

    let off_totals = off.repair_totals();
    let on_totals = on.repair_totals();

    // The flag-off run exhausted its repair budget on some lease...
    assert!(
        off_totals.postponed_budget_exhausted > 0,
        "fixture seed no longer exhausts the anchored budget; rerun find_rescan_seed"
    );
    // ...and the new tier — and only the new tier — recovered leases.
    assert!(
        on_totals.full_rescans_succeeded > 0,
        "fixture seed no longer exercises the rescan tier; rerun find_rescan_seed"
    );
    assert!(
        on_totals.recovered() > off_totals.recovered(),
        "rescan tier recovered nothing beyond the anchored tiers"
    );
    // Everything the rescan recovered came out of the postponed pool:
    // accounting still balances in both runs.
    for report in [&off, &on] {
        for cycle in &report.cycles {
            assert_eq!(
                cycle.repair.leases_broken,
                cycle.repair.recovered()
                    + cycle.repair.postponed_stale
                    + cycle.repair.postponed_budget_exhausted
            );
        }
    }
    // The flag is genuinely off by default.
    assert!(!RepairPolicy::default().full_rescan_on_exhaustion);
    let _ = PostponeReason::RepairBudgetExhausted; // reason cited above
}

/// The rescan tier must leave determinism intact: same seed, same flag,
/// byte-identical reports.
#[test]
fn full_rescan_runs_are_deterministic() {
    let a = run(REGRESSION_SEED, true);
    let b = run(REGRESSION_SEED, true);
    assert_eq!(
        a.cycles.last().map(|c| c.repair.full_rescans_succeeded),
        b.cycles.last().map(|c| c.repair.full_rescans_succeeded)
    );
    assert_eq!(a.total_scheduled(), b.total_scheduled());
    assert_eq!(
        a.repair_totals().full_rescans_attempted,
        b.repair_totals().full_rescans_attempted
    );
}

/// Fixture seed picked by [`find_rescan_seed`].
const REGRESSION_SEED: u64 = 0;
