//! Checkpointed, incremental alternatives search.
//!
//! The naive multi-pass search restarts every window search from the head
//! of the slot list, so a batch that commits `A` alternatives on a list of
//! `m` slots performs `O(A·m)` slot examinations (plus a full cost sort
//! per candidate group for AMP). This module keeps a **checkpoint** per
//! job — the anchor of its last accepted window and the candidate pool of
//! everything admitted *before* that anchor — and resumes each subsequent
//! search there, re-admitting only the remnants that slot subtraction
//! minted behind the checkpoint. Amortized over a search this is
//! `O(m + A·N·log m)`.
//!
//! # Why resuming is sound
//!
//! Let a job's scan accept at anchor `a` on list `L`, and let `L'` be `L`
//! after any [`SlotList::subtract_window_report`] (this job's or another
//! job's). A fresh scan of `L'` can never accept at an anchor `< a`:
//!
//! * Subtraction only removes availability: each surviving slot maps to
//!   itself and each remnant maps to its parent slot. The map preserves
//!   admission, liveness at any anchor, and cost (a remnant shares its
//!   parent's node, performance, and price), and at most one remnant per
//!   parent is live at a given anchor (the left remnant dies at the cut
//!   start, the right one is born after the cut end). So the candidate
//!   pool on `L'` at any anchor injects cost-preservingly into the pool on
//!   `L` at that anchor.
//! * Both acceptance tests are monotone under that injection: ALP needs
//!   `N` pool members and AMP needs the `N` cheapest to fit the budget,
//!   and a subset has fewer members and a no-cheaper `N`-cheapest sum.
//! * Between group anchors the pool only expires, so anchors that did not
//!   exist in `L` (remnant starts) cannot accept either: their pool is a
//!   subset of the pool at the last tested anchor before them.
//!
//! Every anchor `< a` failed on `L`, hence fails on `L'`, and the scan can
//! resume at `a` — provided the carried pool equals what a fresh scan of
//! `L'` would hold just before processing the group at `a`. The checkpoint
//! maintains exactly that set: consumed ids are dropped and remnants
//! starting before `a` are admitted on notification, while the group *at*
//! `a` is always re-read from the list (its membership changes under
//! subtraction, and whether an acceptance test runs at `a` at all depends
//! on it).

use std::collections::{BTreeSet, HashMap};

use ecosched_core::{
    Alternative, Batch, BatchAlternatives, CoreError, Money, ResourceRequest, Slot, SlotId,
    SlotList, SubtractionReport, TimePoint, Window,
};

use crate::scan::{admit_slot, LengthRule, Pool, PoolMember};
use crate::search::SearchOutcome;
use crate::stats::{ScanStats, SearchStats};

/// An opaque description of a built-in selection algorithm, used by
/// [`crate::SlotSelector::as_algo`] to opt into the incremental search.
///
/// Only the built-in selectors ([`crate::Alp`], [`crate::Amp`]) can
/// construct one; custom selectors return `None` from `as_algo` and the
/// search falls back to the naive restart-per-window driver.
#[derive(Debug, Clone, Copy)]
pub struct AlgoSpec {
    kind: AlgoKind,
}

#[derive(Debug, Clone, Copy)]
enum AlgoKind {
    Alp { rule: LengthRule },
    Amp { rule: LengthRule, rho: f64 },
}

impl AlgoSpec {
    /// ALP with the given length rule.
    pub(crate) fn alp(rule: LengthRule) -> Self {
        AlgoSpec {
            kind: AlgoKind::Alp { rule },
        }
    }

    /// AMP with the given length rule and budget discount ρ.
    pub(crate) fn amp(rule: LengthRule, rho: f64) -> Self {
        AlgoSpec {
            kind: AlgoKind::Amp { rule, rho },
        }
    }
}

/// The pool size at which AMP's candidate pool switches from the flat
/// vector to the cost-ordered tree representation.
///
/// The paper-scale lists (`m ∈ [120, 150]`) produce pools of a few dozen
/// members, where the tree's per-operation pointer chasing and the
/// four-structure bookkeeping cost ~2× the flat vector's memmove (the
/// ROADMAP small-pool item, measured by the `find_window_amp` bench).
/// Pools only cross this threshold on large lists with slow-expiring
/// slots — exactly where the tree's `O(log m)` operations win.
const SMALL_POOL_MAX: usize = 128;

/// AMP's cost-ordered candidate pool, with an adaptive representation.
///
/// Below [`SMALL_POOL_MAX`] members the pool is a flat vector sorted by
/// `(cost, id)` — the exact DESIGN.md R5 tie-break — where insertion is a
/// binary search plus memmove and acceptance reads the first `n` members.
/// Above the threshold it promotes (one way) to [`LargeCostPool`], which
/// splits members into a `head` of the `n` cheapest and a `tail` of
/// everything else with a running head sum, making every operation
/// `O(log m)`. Both representations accept byte-identically: the same
/// `n` cheapest members in `(cost, id)` order under the same budget test.
#[derive(Debug)]
struct CostPool {
    n: usize,
    repr: CostRepr,
}

#[derive(Debug)]
enum CostRepr {
    /// Members sorted by `(cost, id)`; acceptance reads the prefix.
    Small(Vec<PoolMember>),
    /// Head/tail trees with a running head sum.
    Large(LargeCostPool),
}

impl CostPool {
    fn new(n: usize) -> Self {
        CostPool {
            n,
            repr: CostRepr::Small(Vec::new()),
        }
    }

    fn len(&self) -> usize {
        match &self.repr {
            CostRepr::Small(members) => members.len(),
            CostRepr::Large(pool) => pool.len(),
        }
    }

    fn insert(&mut self, member: PoolMember) {
        match &mut self.repr {
            CostRepr::Small(members) => {
                let key = (member.cost(), member.slot.id());
                let pos = members.partition_point(|m| (m.cost(), m.slot.id()) < key);
                members.insert(pos, member);
                if members.len() > SMALL_POOL_MAX {
                    let mut pool = LargeCostPool::new(self.n);
                    for member in members.drain(..) {
                        pool.insert(member);
                    }
                    self.repr = CostRepr::Large(pool);
                }
            }
            CostRepr::Large(pool) => pool.insert(member),
        }
    }

    fn remove(&mut self, id: SlotId) -> bool {
        match &mut self.repr {
            CostRepr::Small(members) => match members.iter().position(|m| m.slot.id() == id) {
                Some(pos) => {
                    members.remove(pos);
                    true
                }
                None => false,
            },
            CostRepr::Large(pool) => pool.remove(id),
        }
    }

    /// Expires every member no longer live at `anchor`; returns the count.
    fn advance(&mut self, anchor: TimePoint) -> u64 {
        match &mut self.repr {
            CostRepr::Small(members) => {
                let before = members.len();
                members.retain(|m| m.live_at(anchor));
                (before - members.len()) as u64
            }
            CostRepr::Large(pool) => pool.advance(anchor),
        }
    }

    /// The `n` cheapest members in `(cost, id)` order iff the pool holds
    /// at least `n` and they fit `budget` — byte-identical to the naive
    /// sort-and-take in both representations.
    fn accept(&self, budget: Money) -> Option<Vec<PoolMember>> {
        match &self.repr {
            CostRepr::Small(members) => {
                if members.len() < self.n {
                    return None;
                }
                let sum: Money = members[..self.n].iter().map(PoolMember::cost).sum();
                if sum <= budget {
                    Some(members[..self.n].to_vec())
                } else {
                    None
                }
            }
            CostRepr::Large(pool) => pool.accept(budget),
        }
    }
}

/// The tree representation of [`CostPool`], used above [`SMALL_POOL_MAX`]:
/// a `head` of the `n` cheapest by `(cost, id)` and a `tail` of everything
/// else, with a running sum of the head. One insertion, removal, or expiry
/// costs `O(log m)`, and the acceptance test (`head` full and within
/// budget) is `O(1)` instead of the naive `O(p log p)` sort of the whole
/// pool.
#[derive(Debug)]
struct LargeCostPool {
    n: usize,
    head: BTreeSet<(Money, SlotId)>,
    head_sum: Money,
    tail: BTreeSet<(Money, SlotId)>,
    /// Members keyed by the last anchor they are live at
    /// (`end − runtime`), for incremental expiry.
    by_deadline: BTreeSet<(TimePoint, SlotId)>,
    members: HashMap<SlotId, PoolMember>,
}

impl LargeCostPool {
    fn new(n: usize) -> Self {
        LargeCostPool {
            n,
            head: BTreeSet::new(),
            head_sum: Money::ZERO,
            tail: BTreeSet::new(),
            by_deadline: BTreeSet::new(),
            members: HashMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.members.len()
    }

    fn insert(&mut self, member: PoolMember) {
        let id = member.slot.id();
        let key = (member.cost(), id);
        let deadline = member.slot.end() - member.runtime;
        let replaced = self.members.insert(id, member);
        debug_assert!(replaced.is_none(), "slot {id} pooled twice");
        self.by_deadline.insert((deadline, id));
        if self.head.len() < self.n {
            self.head.insert(key);
            self.head_sum += key.0;
        } else if self.head.last().is_some_and(|max| key < *max) {
            let max = *self.head.last().expect("head is non-empty");
            self.head.remove(&max);
            self.head_sum -= max.0;
            self.tail.insert(max);
            self.head.insert(key);
            self.head_sum += key.0;
        } else {
            self.tail.insert(key);
        }
    }

    fn remove(&mut self, id: SlotId) -> bool {
        let Some(member) = self.members.remove(&id) else {
            return false;
        };
        let key = (member.cost(), id);
        self.by_deadline
            .remove(&(member.slot.end() - member.runtime, id));
        if self.head.remove(&key) {
            self.head_sum -= key.0;
            if let Some(promoted) = self.tail.pop_first() {
                self.head.insert(promoted);
                self.head_sum += promoted.0;
            }
        } else {
            self.tail.remove(&key);
        }
        true
    }

    /// Expires every member no longer live at `anchor`; returns the count.
    fn advance(&mut self, anchor: TimePoint) -> u64 {
        let mut expired = 0;
        while let Some(&(deadline, id)) = self.by_deadline.first() {
            if deadline >= anchor {
                break;
            }
            self.remove(id);
            expired += 1;
        }
        expired
    }

    /// The `n` cheapest members in `(cost, id)` order iff the head is full
    /// and fits `budget` — byte-identical to the naive sort-and-take.
    fn accept(&self, budget: Money) -> Option<Vec<PoolMember>> {
        if self.head.len() == self.n && self.head_sum <= budget {
            Some(self.head.iter().map(|&(_, id)| self.members[&id]).collect())
        } else {
            None
        }
    }
}

/// The per-algorithm candidate pool of one incremental job scan.
#[derive(Debug)]
enum AcceptPool {
    /// ALP: members kept in `(start, id)` order — identical to the naive
    /// scan's insertion order, since the slot list is sorted the same way.
    /// Acceptance takes the first `n`. The pool never exceeds `n − 1`
    /// members between groups, so a plain vector is the right structure.
    Ordered(Vec<PoolMember>),
    /// AMP: cost-ordered pool with an adaptive representation (flat
    /// vector below [`SMALL_POOL_MAX`] members, head/tail trees above).
    Cost(CostPool),
}

impl AcceptPool {
    fn len(&self) -> usize {
        match self {
            AcceptPool::Ordered(members) => members.len(),
            AcceptPool::Cost(pool) => pool.len(),
        }
    }

    fn insert(&mut self, member: PoolMember) {
        match self {
            AcceptPool::Ordered(members) => {
                let key = (member.slot.start(), member.slot.id());
                let pos = members.partition_point(|m| (m.slot.start(), m.slot.id()) < key);
                members.insert(pos, member);
            }
            AcceptPool::Cost(pool) => pool.insert(member),
        }
    }

    fn remove(&mut self, id: SlotId) -> bool {
        match self {
            AcceptPool::Ordered(members) => match members.iter().position(|m| m.slot.id() == id) {
                Some(pos) => {
                    members.remove(pos);
                    true
                }
                None => false,
            },
            AcceptPool::Cost(pool) => pool.remove(id),
        }
    }

    fn advance(&mut self, anchor: TimePoint) -> u64 {
        match self {
            AcceptPool::Ordered(members) => {
                let before = members.len();
                members.retain(|m| m.live_at(anchor));
                (before - members.len()) as u64
            }
            AcceptPool::Cost(pool) => pool.advance(anchor),
        }
    }

    fn accept(&self, n: usize, budget: Option<Money>) -> Option<Vec<PoolMember>> {
        match self {
            AcceptPool::Ordered(members) => {
                debug_assert!(members.len() >= n, "accept called on a short pool");
                Some(members[..n].to_vec())
            }
            AcceptPool::Cost(pool) => pool.accept(budget.expect("AMP scans always carry a budget")),
        }
    }
}

/// One job's checkpointed forward scan.
pub(crate) struct JobScan {
    request: ResourceRequest,
    rule: LengthRule,
    /// ALP's per-slot price cap (condition 2°c); AMP admits every price.
    price_capped: bool,
    /// AMP's job budget; `None` for ALP.
    budget: Option<Money>,
    /// Resume anchor: everything before it has already been scanned, and
    /// `pool` holds the still-live members admitted there. `None` until
    /// the first window is accepted.
    anchor: Option<TimePoint>,
    pool: AcceptPool,
    /// Once a scan reaches the end of the list without a window the job
    /// can never succeed again within the search (monotonicity).
    dead: bool,
}

impl JobScan {
    pub(crate) fn new(spec: &AlgoSpec, request: &ResourceRequest) -> Self {
        let (rule, price_capped, budget, pool) = match spec.kind {
            AlgoKind::Alp { rule } => (rule, true, None, AcceptPool::Ordered(Vec::new())),
            AlgoKind::Amp { rule, rho } => {
                let budget = if rho >= 1.0 {
                    request.budget()
                } else {
                    request.budget_scaled(rho)
                };
                (
                    rule,
                    false,
                    Some(budget),
                    AcceptPool::Cost(CostPool::new(request.nodes())),
                )
            }
        };
        JobScan {
            request: *request,
            rule,
            price_capped,
            budget,
            anchor: None,
            pool,
            dead: false,
        }
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead
    }

    /// Seeds the resume anchor of a fresh scan so the next [`JobScan::run`]
    /// starts at `anchor` with an empty pool instead of at the list head.
    ///
    /// This is the entry point of the *bounded repair search*
    /// ([`crate::repair_search`]): only slots starting at or after `anchor`
    /// are examined, so repairing a window scheduled at `anchor` costs
    /// O(survivors after `anchor`), not a full rescan. The price is a
    /// deliberate policy restriction — windows using slots that *start*
    /// before `anchor` (but are still live there) are not considered.
    pub(crate) fn resume_from(&mut self, anchor: TimePoint) {
        debug_assert!(
            self.anchor.is_none() && self.pool.len() == 0,
            "resume_from is for seeding fresh scans only"
        );
        self.anchor = Some(anchor);
    }

    fn filter_ok(&self, slot: &Slot) -> bool {
        !self.price_capped || self.request.price_ok(slot)
    }

    /// Runs (or resumes) the forward scan over `list`.
    ///
    /// On success the checkpoint is advanced to the acceptance anchor; the
    /// caller is expected to subtract the returned window (or another
    /// job's) and feed the report back through [`JobScan::apply_report`]
    /// before the next `run`. On failure the job is marked dead.
    pub(crate) fn run(&mut self, list: &SlotList, stats: &mut ScanStats) -> Option<Window> {
        self.run_detailed(list, stats).map(|hit| hit.window)
    }

    /// [`JobScan::run`], additionally reporting the *touched set* the
    /// parallel drivers use to revalidate a speculatively computed window
    /// (see [`crate::parallel`]): the ids of the chosen members plus every
    /// admitted member of the group at the acceptance anchor. A later
    /// subtraction that removes none of these ids — and mints no remnant
    /// starting before the window start — provably leaves this exact
    /// window as the scan's next result.
    pub(crate) fn run_detailed(
        &mut self,
        list: &SlotList,
        stats: &mut ScanStats,
    ) -> Option<ScanHit> {
        if self.dead {
            return None;
        }
        let mut slots = match self.anchor {
            Some(anchor) => {
                stats.checkpoint_hits += 1;
                list.iter_from(anchor)
            }
            None => list.iter(),
        }
        .peekable();
        let n = self.request.nodes();
        let mut group: Vec<PoolMember> = Vec::new();
        while let Some(first) = slots.next() {
            let anchor = first.start();
            group.clear();
            let mut slot = first;
            loop {
                stats.slots_examined += 1;
                if self.filter_ok(slot) {
                    if let Some(member) = admit_slot(&self.request, self.rule, slot) {
                        group.push(member);
                    }
                }
                match slots.next_if(|s| s.start() == anchor) {
                    Some(next) => slot = next,
                    None => break,
                }
            }
            if group.is_empty() {
                continue;
            }
            stats.groups_scanned += 1;
            stats.slots_expired += self.pool.advance(anchor);
            stats.slots_admitted += group.len() as u64;
            for member in &group {
                self.pool.insert(*member);
            }
            stats.pool_high_water = stats.pool_high_water.max(self.pool.len() as u64);
            if self.pool.len() >= n {
                stats.acceptance_tests += 1;
                if let Some(chosen) = self.pool.accept(n, self.budget) {
                    stats.windows_found += 1;
                    // Checkpoint: the group at the acceptance anchor is
                    // re-read from the list on resume, so only members
                    // from strictly earlier groups stay pooled.
                    for member in &group {
                        self.pool.remove(member.slot.id());
                    }
                    self.anchor = Some(anchor);
                    let touched = chosen
                        .iter()
                        .map(|m| m.slot.id())
                        .chain(group.iter().map(|m| m.slot.id()))
                        .collect();
                    return Some(ScanHit {
                        window: Pool::build_window(&chosen),
                        touched,
                    });
                }
            }
        }
        self.dead = true;
        None
    }

    /// Folds one window subtraction into the checkpoint: consumed slots
    /// leave the pool, and remnants minted behind the resume anchor are
    /// re-admitted if they are still useful at it. Remnants at or after
    /// the anchor are picked up by the forward scan itself.
    pub(crate) fn apply_report(&mut self, report: &SubtractionReport) {
        if self.dead {
            return;
        }
        let Some(anchor) = self.anchor else {
            return; // Fresh scans read the whole list anyway.
        };
        for &id in &report.removed {
            self.pool.remove(id);
        }
        for slot in &report.remnants {
            if slot.start() >= anchor || !self.filter_ok(slot) {
                continue;
            }
            if let Some(member) = admit_slot(&self.request, self.rule, slot) {
                if member.live_at(anchor) {
                    self.pool.insert(member);
                }
            }
        }
    }
}

/// A window found by [`JobScan::run_detailed`] plus the slot ids whose
/// removal could change it: the chosen members and every admitted member
/// of the group at the acceptance anchor (removing a non-chosen group
/// member can empty the group, which skips the acceptance test at that
/// anchor entirely and shifts the window).
#[derive(Debug, Clone)]
pub(crate) struct ScanHit {
    pub(crate) window: Window,
    pub(crate) touched: Vec<SlotId>,
}

impl ScanHit {
    /// Returns `true` if `report` provably leaves this hit as the owning
    /// scan's next result: it removes none of the touched ids and mints no
    /// remnant starting before the window start. (Remnants at or after the
    /// window start cannot create an earlier window — subtraction only
    /// removes availability, see the module docs — and cannot alter the
    /// chosen set at the acceptance anchor: a remnant shares its parent's
    /// cost and sorts after it under the `(cost, id)` / `(start, id)`
    /// tie-breaks, so it never displaces a chosen member.)
    pub(crate) fn survives(&self, report: &SubtractionReport) -> bool {
        if report.removed.iter().any(|id| self.touched.contains(id)) {
            return false;
        }
        let start = self.window.start();
        report.remnants.iter().all(|slot| slot.start() >= start)
    }
}

impl std::fmt::Debug for JobScan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobScan")
            .field("anchor", &self.anchor)
            .field("pool_len", &self.pool.len())
            .field("dead", &self.dead)
            .finish()
    }
}

/// The checkpointed sequential (priority-order) alternatives search.
/// Byte-identical results to [`crate::find_alternatives_naive`].
pub(crate) fn find_alternatives_incremental(
    spec: &AlgoSpec,
    list: &SlotList,
    batch: &Batch,
) -> Result<SearchOutcome, CoreError> {
    let mut remaining = list.clone();
    let mut alternatives = BatchAlternatives::for_jobs(batch.iter().map(|j| j.id()));
    let mut stats = SearchStats::new();
    let mut scans: Vec<JobScan> = batch
        .iter()
        .map(|job| JobScan::new(spec, job.request()))
        .collect();

    loop {
        let mut found_any = false;
        for (index, job) in batch.iter().enumerate() {
            if scans[index].is_dead() {
                continue;
            }
            if let Some(window) = scans[index].run(&remaining, &mut stats.scan) {
                let report = remaining.subtract_window_report(&window)?;
                for scan in &mut scans {
                    scan.apply_report(&report);
                }
                alternatives.per_job_mut()[index].push(Alternative::new(job.id(), window));
                stats.windows_committed += 1;
                found_any = true;
            }
        }
        stats.passes += 1;
        if !found_any {
            break;
        }
    }

    Ok(SearchOutcome {
        alternatives,
        stats,
        remaining,
    })
}

/// The checkpointed batch-at-once (earliest-window-first) search.
/// Byte-identical results to
/// [`crate::find_alternatives_coscheduled_naive`].
pub(crate) fn find_alternatives_coscheduled_incremental(
    spec: &AlgoSpec,
    list: &SlotList,
    batch: &Batch,
) -> Result<SearchOutcome, CoreError> {
    let mut remaining = list.clone();
    let mut alternatives = BatchAlternatives::for_jobs(batch.iter().map(|j| j.id()));
    let mut stats = SearchStats::new();
    let mut scans: Vec<JobScan> = batch
        .iter()
        .map(|job| JobScan::new(spec, job.request()))
        .collect();

    loop {
        let mut committed_this_pass = 0u64;
        let mut pending: Vec<usize> = (0..batch.len()).filter(|&i| !scans[i].is_dead()).collect();

        while !pending.is_empty() {
            // Evaluate every pending job on the *current* list; losers keep
            // their checkpoint and re-evaluate cheaply next round.
            let mut best: Option<(usize, Window)> = None;
            for &index in &pending {
                if let Some(window) = scans[index].run(&remaining, &mut stats.scan) {
                    let better = match &best {
                        None => true,
                        Some((best_index, best_window)) => {
                            (window.start(), index) < (best_window.start(), *best_index)
                        }
                    };
                    if better {
                        best = Some((index, window));
                    }
                }
            }
            let Some((index, window)) = best else { break };
            let report = remaining.subtract_window_report(&window)?;
            for scan in &mut scans {
                scan.apply_report(&report);
            }
            alternatives.per_job_mut()[index]
                .push(Alternative::new(batch.as_slice()[index].id(), window));
            stats.windows_committed += 1;
            committed_this_pass += 1;
            pending.retain(|&i| i != index && !scans[i].is_dead());
        }

        stats.passes += 1;
        if committed_this_pass == 0 {
            break;
        }
    }

    Ok(SearchOutcome {
        alternatives,
        stats,
        remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{NodeId, Perf, Price, Span, TimeDelta};

    fn slot(id: u64, node: u32, perf: f64, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::from_f64(perf),
            Price::from_credits(price),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    fn member(id: u64, price: i64, a: i64, b: i64, runtime: i64) -> PoolMember {
        PoolMember {
            slot: slot(id, id as u32, 1.0, price, a, b),
            runtime: TimeDelta::new(runtime),
        }
    }

    #[test]
    fn cost_pool_tracks_n_cheapest_with_running_sum() {
        let mut pool = CostPool::new(2);
        pool.insert(member(0, 5, 0, 100, 10)); // cost 50
        pool.insert(member(1, 3, 0, 100, 10)); // cost 30
        pool.insert(member(2, 1, 0, 100, 10)); // cost 10
        assert_eq!(pool.len(), 3);
        // Head = {10, 30}; 50 was displaced to the tail.
        let chosen = pool.accept(Money::from_credits(40)).unwrap();
        assert_eq!(chosen[0].slot.id(), SlotId::new(2));
        assert_eq!(chosen[1].slot.id(), SlotId::new(1));
        assert!(pool.accept(Money::from_credits(39)).is_none());
        // Removing a head member promotes the cheapest tail member.
        assert!(pool.remove(SlotId::new(2)));
        let chosen = pool.accept(Money::from_credits(80)).unwrap();
        assert_eq!(chosen[0].slot.id(), SlotId::new(1));
        assert_eq!(chosen[1].slot.id(), SlotId::new(0));
    }

    #[test]
    fn cost_pool_ties_break_by_slot_id() {
        let mut pool = CostPool::new(1);
        pool.insert(member(7, 2, 0, 100, 10)); // cost 20
        pool.insert(member(3, 2, 0, 100, 10)); // cost 20, lower id wins
        let chosen = pool.accept(Money::from_credits(20)).unwrap();
        assert_eq!(chosen[0].slot.id(), SlotId::new(3));
    }

    #[test]
    fn cost_pool_expires_by_deadline() {
        let mut pool = CostPool::new(2);
        pool.insert(member(0, 1, 0, 50, 10)); // live through anchor 40
        pool.insert(member(1, 1, 0, 100, 10)); // live through anchor 90
        assert_eq!(pool.advance(TimePoint::new(40)), 0);
        assert_eq!(pool.advance(TimePoint::new(41)), 1);
        assert_eq!(pool.len(), 1);
        assert!(pool.accept(Money::from_credits(100)).is_none()); // head short
    }

    #[test]
    fn cost_pool_starts_small_and_promotes_once() {
        let mut pool = CostPool::new(3);
        for i in 0..SMALL_POOL_MAX as u64 {
            pool.insert(member(i, 1 + (i % 7) as i64, 0, 10_000, 10));
        }
        assert!(matches!(pool.repr, CostRepr::Small(_)));
        pool.insert(member(SMALL_POOL_MAX as u64, 1, 0, 10_000, 10));
        assert!(matches!(pool.repr, CostRepr::Large(_)));
        // Promotion is one-way: shrinking below the threshold stays Large.
        for i in 0..=SMALL_POOL_MAX as u64 {
            pool.remove(SlotId::new(i));
        }
        assert_eq!(pool.len(), 0);
        assert!(matches!(pool.repr, CostRepr::Large(_)));
    }

    #[test]
    fn small_and_large_representations_accept_identically() {
        // Drive the same member sequence through a pool that stays small
        // and one forced across the threshold; acceptance must agree on
        // membership, order, and budget behaviour at every step.
        let members: Vec<PoolMember> = (0..40u64)
            .map(|i| member(i, 1 + ((i * 13) % 11) as i64, 0, 10_000, 10))
            .collect();
        let mut small = CostPool::new(4);
        let mut large = CostPool::new(4);
        // Force the tree representation up front.
        large.repr = CostRepr::Large(LargeCostPool::new(4));
        for (step, m) in members.iter().enumerate() {
            small.insert(*m);
            large.insert(*m);
            if step % 5 == 0 {
                let victim = SlotId::new((step as u64 * 7) % (step as u64 + 1));
                assert_eq!(small.remove(victim), large.remove(victim));
            }
            for budget in [10, 40, 400] {
                let budget = Money::from_credits(budget);
                let a = small.accept(budget);
                let b = large.accept(budget);
                match (&a, &b) {
                    (Some(x), Some(y)) => {
                        let xi: Vec<u64> = x.iter().map(|m| m.slot.id().raw()).collect();
                        let yi: Vec<u64> = y.iter().map(|m| m.slot.id().raw()).collect();
                        assert_eq!(xi, yi, "divergent acceptance at step {step}");
                    }
                    (None, None) => {}
                    _ => panic!("representations disagree at step {step}: {a:?} vs {b:?}"),
                }
            }
        }
        assert!(matches!(small.repr, CostRepr::Small(_)));
    }

    #[test]
    fn ordered_pool_keeps_start_id_order() {
        let mut pool = AcceptPool::Ordered(Vec::new());
        pool.insert(member(5, 1, 20, 100, 10));
        pool.insert(member(1, 1, 0, 100, 10));
        pool.insert(member(3, 1, 20, 100, 10));
        let chosen = pool.accept(3, None).unwrap();
        let ids: Vec<u64> = chosen.iter().map(|m| m.slot.id().raw()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert!(pool.remove(SlotId::new(3)));
        assert!(!pool.remove(SlotId::new(3)));
        assert_eq!(pool.len(), 2);
    }
}
