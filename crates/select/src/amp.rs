//! AMP — the Algorithm based on Maximal job Price (paper Sec. 3).
//!
//! AMP drops ALP's per-slot price cap and instead constrains the *window*:
//! the `N` cheapest live pool members must together cost no more than the
//! job budget `S = C·t·N` (optionally discounted to `ρ·C·t·N`, Sec. 6).
//! Expensive fast nodes can therefore join a window as long as cheaper
//! members compensate — the behaviour the paper credits for AMP's larger
//! alternative counts and shorter batch times.

use ecosched_core::{Money, ResourceRequest, SlotList, Window};

use crate::incremental::{AlgoSpec, JobScan};
use crate::scan::{forward_scan, LengthRule, PoolMember};
use crate::selector::SlotSelector;
use crate::stats::ScanStats;

/// The Algorithm based on Maximal job Price.
///
/// # Examples
///
/// AMP can use a slot priced above the per-slot cap when the window still
/// fits the budget — ALP cannot:
///
/// ```
/// use ecosched_core::{
///     NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span, TimeDelta, TimePoint,
/// };
/// use ecosched_select::{Alp, Amp, ScanStats, SlotSelector};
///
/// let mk = |id: u64, node: u32, price: i64| {
///     Slot::new(
///         SlotId::new(id),
///         NodeId::new(node),
///         Perf::UNIT,
///         Price::from_credits(price),
///         Span::new(TimePoint::new(0), TimePoint::new(500)).unwrap(),
///     )
/// };
/// // One cheap and one expensive slot; cap C = 5 per slot, budget = 5·80·2.
/// let list = SlotList::from_slots(vec![mk(0, 0, 2)?, mk(1, 1, 7)?])?;
/// let request = ResourceRequest::new(2, TimeDelta::new(80), Perf::UNIT, Price::from_credits(5))?;
///
/// let mut stats = ScanStats::new();
/// assert!(Alp::new().find_window(&list, &request, &mut stats).is_none());
/// assert!(Amp::new().find_window(&list, &request, &mut stats).is_some());
/// # Ok::<(), ecosched_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Amp {
    rule: LengthRule,
    rho: f64,
}

impl Amp {
    /// Creates AMP with the full budget `S = C·t·N` and the corrected
    /// length rule.
    #[must_use]
    pub fn new() -> Self {
        Amp {
            rule: LengthRule::Corrected,
            rho: 1.0,
        }
    }

    /// Creates AMP with the discounted budget `S = ρ·C·t·N` (Sec. 6).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `(0, 1]`.
    #[must_use]
    pub fn with_rho(rho: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        Amp {
            rule: LengthRule::Corrected,
            rho,
        }
    }

    /// Creates AMP with an explicit length rule (for the R1 ablation).
    #[must_use]
    pub fn with_length_rule(rule: LengthRule) -> Self {
        Amp { rule, rho: 1.0 }
    }

    /// The budget discount factor ρ.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The configured length rule.
    #[must_use]
    pub fn length_rule(&self) -> LengthRule {
        self.rule
    }

    /// The effective job budget for `request` under this configuration.
    #[must_use]
    pub fn budget(&self, request: &ResourceRequest) -> Money {
        if self.rho >= 1.0 {
            request.budget()
        } else {
            request.budget_scaled(self.rho)
        }
    }

    /// The sort-per-group reference implementation of
    /// [`SlotSelector::find_window`].
    ///
    /// Kept public as the equivalence oracle for the incremental
    /// cost-ordered pool (and as the "before" side of the search
    /// benchmarks). Returns exactly the same window and counters as
    /// `find_window`, in `O(p log p)` per acceptance test instead of
    /// `O(log p)`.
    pub fn find_window_naive(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window> {
        let n = request.nodes();
        let budget = self.budget(request);
        forward_scan(
            list,
            request,
            self.rule,
            stats,
            |_| true, // no per-slot price condition
            |pool, stats| {
                stats.acceptance_tests += 1;
                // Step 2°: sort live members by cost (ties broken by slot
                // id for determinism — DESIGN.md R5) and price the N
                // cheapest.
                let mut by_cost: Vec<&PoolMember> = pool.members().iter().collect();
                by_cost.sort_by_key(|m| (m.cost(), m.slot.id()));
                let chosen = &by_cost[..n];
                let total: Money = chosen.iter().map(|m| m.cost()).sum();
                if total <= budget {
                    Some(chosen.iter().map(|&&m| m).collect())
                } else {
                    None
                }
            },
        )
    }
}

impl Default for Amp {
    fn default() -> Self {
        Amp::new()
    }
}

impl SlotSelector for Amp {
    fn name(&self) -> &'static str {
        "AMP"
    }

    fn find_window(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window> {
        JobScan::new(&AlgoSpec::amp(self.rule, self.rho), request).run(list, stats)
    }

    fn as_algo(&self) -> Option<AlgoSpec> {
        Some(AlgoSpec::amp(self.rule, self.rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, Span, TimeDelta, TimePoint};

    fn slot(id: u64, node: u32, perf: f64, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::from_f64(perf),
            Price::from_credits(price),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    fn req(n: usize, t: i64, p: f64, c: i64) -> ResourceRequest {
        ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_f64(p),
            Price::from_credits(c),
        )
        .unwrap()
    }

    #[test]
    fn accepts_expensive_slot_within_budget() {
        // Cap 5/slot → budget 5·50·2 = 500. Slots cost 2·50=100 and
        // 7·50=350; total 450 ≤ 500, so AMP accepts what ALP would reject.
        let list =
            SlotList::from_slots(vec![slot(0, 0, 1.0, 2, 0, 500), slot(1, 1, 1.0, 7, 0, 500)])
                .unwrap();
        let mut stats = ScanStats::new();
        let w = Amp::new()
            .find_window(&list, &req(2, 50, 1.0, 5), &mut stats)
            .unwrap();
        assert_eq!(w.slot_count(), 2);
        assert_eq!(w.total_cost(), ecosched_core::Money::from_credits(450));
    }

    #[test]
    fn keeps_scanning_when_cheapest_n_over_budget() {
        // First two slots cost 6·50+7·50 = 650 > 500; a later cheap slot
        // brings the cheapest-2 down to 6·50+2·50 = 400 ≤ 500.
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 6, 0, 500),
            slot(1, 1, 1.0, 7, 10, 500),
            slot(2, 2, 1.0, 2, 30, 500),
        ])
        .unwrap();
        let mut stats = ScanStats::new();
        let w = Amp::new()
            .find_window(&list, &req(2, 50, 1.0, 5), &mut stats)
            .unwrap();
        assert!(w.uses_node(NodeId::new(0)));
        assert!(w.uses_node(NodeId::new(2)));
        assert!(!w.uses_node(NodeId::new(1)));
        assert_eq!(w.start(), TimePoint::new(30));
        assert!(stats.acceptance_tests >= 2);
    }

    #[test]
    fn cheapest_selection_prefers_fast_cheap_total() {
        // A fast node with a high price can still be the cheaper member
        // because it occupies fewer ticks. The slow node alone exceeds the
        // budget (5·100 = 500 > 4·100·1), so the scan must continue and
        // pick the fast node (6·50 = 300 ≤ 400).
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 5, 0, 500), // cost 5·100 = 500 — over budget
            slot(1, 1, 2.0, 6, 0, 500), // cost 6·50 = 300 — cheaper!
        ])
        .unwrap();
        let mut stats = ScanStats::new();
        let w = Amp::new()
            .find_window(&list, &req(1, 100, 1.0, 4), &mut stats)
            .unwrap();
        assert!(w.uses_node(NodeId::new(1)));
        assert_eq!(w.length(), TimeDelta::new(50));
    }

    #[test]
    fn fails_when_budget_unreachable() {
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 20, 0, 500),
            slot(1, 1, 1.0, 20, 0, 500),
        ])
        .unwrap();
        let mut stats = ScanStats::new();
        assert!(Amp::new()
            .find_window(&list, &req(2, 50, 1.0, 5), &mut stats)
            .is_none());
        assert_eq!(stats.slots_examined, 2);
    }

    #[test]
    fn rho_discount_tightens_budget() {
        // Costs: 5·50 + 5·50 = 500 = budget exactly → accepted at ρ=1.
        let list =
            SlotList::from_slots(vec![slot(0, 0, 1.0, 5, 0, 500), slot(1, 1, 1.0, 5, 0, 500)])
                .unwrap();
        let request = req(2, 50, 1.0, 5);
        let mut stats = ScanStats::new();
        assert!(Amp::new()
            .find_window(&list, &request, &mut stats)
            .is_some());
        assert!(Amp::with_rho(0.8)
            .find_window(&list, &request, &mut stats)
            .is_none());
    }

    #[test]
    fn any_alp_window_is_amp_feasible() {
        // Sec. 6: every window ALP can find, AMP can find too. Spot-check:
        // all slots within cap → both find a window with the same cost
        // bound satisfied.
        use crate::alp::Alp;
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 3, 0, 500),
            slot(1, 1, 1.0, 4, 10, 500),
            slot(2, 2, 1.0, 5, 20, 500),
        ])
        .unwrap();
        let request = req(3, 50, 1.0, 5);
        let mut stats = ScanStats::new();
        let alp_w = Alp::new().find_window(&list, &request, &mut stats).unwrap();
        let amp_w = Amp::new().find_window(&list, &request, &mut stats).unwrap();
        assert!(alp_w.total_cost() <= request.budget());
        assert!(amp_w.total_cost() <= request.budget());
    }

    #[test]
    #[should_panic(expected = "rho must be in (0, 1]")]
    fn invalid_rho_panics() {
        let _ = Amp::with_rho(0.0);
    }

    #[test]
    fn accessors() {
        let amp = Amp::with_rho(0.8);
        assert!((amp.rho() - 0.8).abs() < 1e-12);
        assert_eq!(amp.name(), "AMP");
        assert_eq!(Amp::default(), Amp::new());
        assert_eq!(
            Amp::with_length_rule(LengthRule::PaperLiteral).length_rule(),
            LengthRule::PaperLiteral
        );
    }
}
