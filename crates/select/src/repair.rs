//! Failover re-validation and bounded repair search.
//!
//! The paper's resources are non-dedicated: a vacant slot published to the
//! metascheduler can be withdrawn by its owner between the alternatives
//! search and the launch. This module provides the two search-layer tiers
//! of the recovery policy (the third tier — postponing to the next cycle —
//! lives in the metascheduler):
//!
//! 1. **Failover** — [`try_adopt_window`] re-validates one of the job's
//!    pre-computed alternatives against the current execution list and the
//!    revocations of this cycle, and carves it out atomically. The
//!    alternatives are pairwise disjoint by construction, but other jobs'
//!    commitments and revocations may have consumed their slots since the
//!    search ran; [`RepairError`] says which region went stale and why.
//! 2. **Bounded repair search** — [`repair_search`] re-runs the window
//!    search for just the broken job on the post-revocation list, resuming
//!    from the broken window's start via the incremental checkpoint
//!    machinery so the scan is O(survivors after the anchor), never a full
//!    rescan.
//!
//! Windows are validated by *region*, not by slot id: committed windows
//! reference remnant ids minted during subtraction while revocations are
//! drawn against the published list, so the `(node, span)` region is the
//! only identity both sides share.

use ecosched_core::{NodeId, Revocation, SlotId, SlotList, Span, TimePoint, Window};

use crate::incremental::JobScan;
use crate::selector::SlotSelector;
use crate::stats::ScanStats;
use ecosched_core::ResourceRequest;

/// Why a pre-computed alternative can no longer be adopted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairError {
    /// A member's used region intersects a revocation of this cycle.
    Revoked {
        /// The node the revoked member runs on.
        node: NodeId,
        /// The member's used region.
        span: Span,
    },
    /// A member's used region is no longer covered by any vacant slot —
    /// another job's commitment (or an earlier repair) consumed it.
    Consumed {
        /// The node the consumed member runs on.
        node: NodeId,
        /// The member's used region.
        span: Span,
    },
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::Revoked { node, span } => {
                write!(f, "region {span} on node {node} was revoked")
            }
            RepairError::Consumed { node, span } => {
                write!(
                    f,
                    "region {span} on node {node} was consumed by another commitment"
                )
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// Checks that every member of `window` is still launchable: its used
/// region intersects no revocation and is fully covered by a vacant slot
/// of `list`.
///
/// On success returns the covering slot ids in member order, ready to be
/// carved by [`try_adopt_window`]. `O(k log m)` for a `k`-member window via
/// the slot list's per-node index.
pub fn revalidate_window(
    window: &Window,
    list: &SlotList,
    revocations: &[Revocation],
) -> Result<Vec<SlotId>, RepairError> {
    let mut covers = Vec::with_capacity(window.slots().len());
    for ws in window.slots() {
        let node = ws.node();
        let span = window.used_span(ws);
        if revocations.iter().any(|r| r.hits(node, span)) {
            return Err(RepairError::Revoked { node, span });
        }
        match list.covering_slot(node, span) {
            Some(slot) => covers.push(slot.id()),
            None => return Err(RepairError::Consumed { node, span }),
        }
    }
    Ok(covers)
}

/// Re-validates `window` and, if every member is still launchable, carves
/// its used regions out of `list`.
///
/// Validation runs to completion before any mutation, and window members
/// sit on distinct nodes, so adoption either happens in full or leaves the
/// list untouched — there is no partial carve to roll back.
pub fn try_adopt_window(
    window: &Window,
    list: &mut SlotList,
    revocations: &[Revocation],
) -> Result<(), RepairError> {
    let covers = revalidate_window(window, list, revocations)?;
    for (ws, id) in window.slots().iter().zip(covers) {
        list.subtract(id, window.used_span(ws))
            .expect("revalidation proved the region lies inside the slot");
    }
    Ok(())
}

/// Tier-2 recovery: re-runs the window search for one broken job on the
/// post-revocation `list`, looking forward from `resume_at` (the broken
/// window's start).
///
/// Built-in selectors go through the incremental checkpoint machinery
/// ([`crate::SlotSelector::as_algo`]), so the scan resumes at `resume_at`
/// and examines only the slots starting there or later — `stats.
/// checkpoint_hits` increments and `stats.slots_examined` is bounded by
/// the survivor suffix, never the full list. Custom selectors fall back to
/// their own `find_window`.
///
/// The caller owns the commitment: on `Some(window)`, subtract it from
/// `list` before repairing the next job.
pub fn repair_search(
    selector: &impl SlotSelector,
    request: &ResourceRequest,
    resume_at: TimePoint,
    list: &SlotList,
    stats: &mut ScanStats,
) -> Option<Window> {
    match selector.as_algo() {
        Some(spec) => {
            let mut scan = JobScan::new(&spec, request);
            scan.resume_from(resume_at);
            scan.run(list, stats)
        }
        None => selector.find_window(list, request, stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alp::Alp;
    use crate::amp::Amp;
    use ecosched_core::{Perf, Price, RevocationReason, Slot, SlotId, TimeDelta, WindowSlot};

    fn span(a: i64, b: i64) -> Span {
        Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    fn slot(id: u64, node: u32, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::UNIT,
            Price::from_credits(price),
            span(a, b),
        )
        .unwrap()
    }

    fn request(nodes: usize, length: i64, cap: i64) -> ResourceRequest {
        ResourceRequest::new(
            nodes,
            TimeDelta::new(length),
            Perf::UNIT,
            Price::from_credits(cap),
        )
        .unwrap()
    }

    /// A 2-node window [start, start+len) on nodes 0 and 1.
    fn window(start: i64, len: i64) -> Window {
        let members = (0..2)
            .map(|node| {
                WindowSlot::from_slot(
                    &slot(90 + node as u64, node, 2, start, start + len),
                    TimeDelta::new(len),
                )
                .unwrap()
            })
            .collect();
        Window::new(TimePoint::new(start), members).unwrap()
    }

    fn revocation(node: u32, a: i64, b: i64) -> Revocation {
        Revocation {
            slot: SlotId::new(77),
            node: NodeId::new(node),
            span: span(a, b),
            reason: RevocationReason::SlotDrop,
        }
    }

    fn wide_list() -> SlotList {
        SlotList::from_slots(vec![
            slot(0, 0, 2, 0, 600),
            slot(1, 1, 2, 0, 600),
            slot(2, 2, 2, 0, 600),
        ])
        .unwrap()
    }

    #[test]
    fn revalidate_passes_on_covered_regions() {
        let list = wide_list();
        let covers = revalidate_window(&window(100, 50), &list, &[]).unwrap();
        assert_eq!(covers, vec![SlotId::new(0), SlotId::new(1)]);
    }

    #[test]
    fn revalidate_reports_revoked_before_consumed() {
        let list = SlotList::from_slots(vec![slot(0, 0, 2, 0, 600)]).unwrap();
        // Node 1 has no coverage at all, but the revocation on node 0 is
        // reported first (member order).
        let err = revalidate_window(&window(100, 50), &list, &[revocation(0, 120, 130)]);
        assert_eq!(
            err,
            Err(RepairError::Revoked {
                node: NodeId::new(0),
                span: span(100, 150),
            })
        );
        let err = revalidate_window(&window(100, 50), &list, &[]);
        assert_eq!(
            err,
            Err(RepairError::Consumed {
                node: NodeId::new(1),
                span: span(100, 150),
            })
        );
        // A revocation elsewhere on the node does not break the window.
        assert!(revalidate_window(
            &window(100, 50),
            &wide_list(),
            &[revocation(0, 150, 200), revocation(2, 0, 600)]
        )
        .is_ok());
    }

    #[test]
    fn try_adopt_carves_atomically_or_not_at_all() {
        let mut list = wide_list();
        let before = list.clone();
        // Node 1's region is consumed → nothing on node 0 may be carved.
        list.remove_region(NodeId::new(1), span(0, 600));
        let snapshot = list.clone();
        let err = try_adopt_window(&window(100, 50), &mut list, &[]);
        assert!(matches!(err, Err(RepairError::Consumed { node, .. }) if node == NodeId::new(1)));
        assert_eq!(list, snapshot);

        // On the intact list adoption subtracts exactly the used regions.
        let mut list = before;
        try_adopt_window(&window(100, 50), &mut list, &[]).unwrap();
        list.validate().unwrap();
        assert!(list.covering_slot(NodeId::new(0), span(100, 150)).is_none());
        assert!(list.covering_slot(NodeId::new(1), span(100, 150)).is_none());
        assert!(list.covering_slot(NodeId::new(2), span(100, 150)).is_some());
        assert_eq!(
            list.covering_slot(NodeId::new(0), span(0, 100))
                .unwrap()
                .span(),
            span(0, 100)
        );
    }

    #[test]
    fn repair_search_resumes_at_the_anchor() {
        // 30 early slots the repair scan must NOT examine, plus survivors
        // at and after the anchor.
        let mut slots: Vec<Slot> = (0u32..30)
            .map(|i| slot(u64::from(i), 5 + i, 2, 0, 10))
            .collect();
        slots.push(slot(40, 0, 2, 200, 400));
        slots.push(slot(41, 1, 2, 200, 400));
        let list = SlotList::from_slots(slots).unwrap();

        let mut stats = ScanStats::new();
        let found = repair_search(
            &Alp::new(),
            &request(2, 50, 5),
            TimePoint::new(200),
            &list,
            &mut stats,
        )
        .unwrap();
        assert_eq!(found.start(), TimePoint::new(200));
        assert_eq!(stats.checkpoint_hits, 1, "repair must resume, not rescan");
        assert_eq!(
            stats.slots_examined, 2,
            "only the survivor suffix is scanned"
        );
    }

    #[test]
    fn repair_search_excludes_windows_before_the_broken_start() {
        // Earlier-start exclusion (see `RepairPolicy` in ecosched-sim): a
        // window that is perfectly feasible but starts BEFORE the broken
        // plan's start must not be returned — the original search already
        // rejected or consumed that prefix against a larger list, so the
        // repair scan resumes at the anchor and keeps whatever it finds
        // at or after it.
        let list = SlotList::from_slots(vec![
            // A feasible 2-node window at t=0, strictly before the anchor.
            slot(0, 0, 2, 0, 100),
            slot(1, 1, 2, 0, 100),
            // The survivors at the anchor.
            slot(2, 2, 2, 300, 500),
            slot(3, 3, 2, 300, 500),
        ])
        .unwrap();
        for selector in [&Alp::new() as &dyn SlotSelector, &Amp::new()] {
            let mut stats = ScanStats::new();
            let found = repair_search(
                &selector,
                &request(2, 50, 5),
                TimePoint::new(300),
                &list,
                &mut stats,
            )
            .unwrap();
            assert_eq!(
                found.start(),
                TimePoint::new(300),
                "repair must not adopt the earlier (pre-anchor) window"
            );
            assert!(found.slots().iter().all(|ws| ws.source() >= SlotId::new(2)));
            assert_eq!(stats.checkpoint_hits, 1, "resume, never a full rescan");
        }
    }

    #[test]
    fn repair_search_enforces_amp_budget() {
        let list =
            SlotList::from_slots(vec![slot(0, 0, 9, 100, 400), slot(1, 1, 9, 100, 400)]).unwrap();
        // Budget S = C·t·N = 2·50·2 = 200 credits < 2 slots · 9/tick · 50.
        let mut stats = ScanStats::new();
        let none = repair_search(
            &Amp::new(),
            &request(2, 50, 2),
            TimePoint::new(100),
            &list,
            &mut stats,
        );
        assert!(none.is_none());
        assert_eq!(stats.checkpoint_hits, 1);
        assert_eq!(
            stats.acceptance_tests - stats.windows_found,
            1,
            "the budget rejection is visible in the stats"
        );
    }

    #[test]
    fn repair_search_falls_back_for_custom_selectors() {
        #[derive(Clone, Copy)]
        struct Never;
        impl SlotSelector for Never {
            fn name(&self) -> &'static str {
                "never"
            }
            fn find_window(
                &self,
                _list: &SlotList,
                _request: &ResourceRequest,
                stats: &mut ScanStats,
            ) -> Option<Window> {
                stats.slots_examined += 1;
                None
            }
        }
        let mut stats = ScanStats::new();
        let none = repair_search(
            &Never,
            &request(1, 10, 5),
            TimePoint::new(0),
            &wide_list(),
            &mut stats,
        );
        assert!(none.is_none());
        assert_eq!(stats.slots_examined, 1);
        assert_eq!(stats.checkpoint_hits, 0);
    }
}
