//! The multi-pass alternatives search (paper Sec. 2).
//!
//! A scheduling iteration repeatedly scans the batch in priority order.
//! Whenever a window is found for a job it is recorded as an *alternative*
//! and subtracted from the vacant-slot list, so all recorded alternatives
//! are pairwise disjoint in processor time and any one alternative per job
//! can later be committed without revisiting the others. The search ends
//! when a full pass finds no window for any job.
//!
//! Because subtraction only removes availability and both ALP and AMP are
//! monotone in list content (their candidate pool at a given anchor is a
//! pure function of the surviving slots), a job that fails once can never
//! succeed later in the same iteration; such jobs are marked dead and
//! skipped, which keeps the search linear in the number of alternatives
//! actually found.

use std::collections::HashSet;

use ecosched_core::{Alternative, Batch, BatchAlternatives, CoreError, JobId, SlotList};

use crate::incremental::find_alternatives_incremental;
use crate::selector::SlotSelector;
use crate::stats::SearchStats;

/// The result of an alternatives search over one batch.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Alternatives per job, in batch order.
    pub alternatives: BatchAlternatives,
    /// Work counters.
    pub stats: SearchStats,
    /// The vacant-slot list after all found windows were subtracted.
    pub remaining: SlotList,
}

impl SearchOutcome {
    /// Jobs that found no alternative and must be postponed to the next
    /// scheduling iteration.
    pub fn postponed(&self) -> impl Iterator<Item = JobId> + '_ {
        self.alternatives.uncovered_jobs()
    }
}

/// Runs the multi-pass alternatives search for `batch` on `list` using
/// `selector` (ALP or AMP).
///
/// The input list is cloned; the caller's copy is untouched.
///
/// # Errors
///
/// Propagates [`CoreError`] from slot subtraction. This can only happen if
/// the selector returns a window whose cuts do not match the list —
/// impossible for the built-in algorithms, but a custom [`SlotSelector`]
/// could misbehave.
///
/// # Examples
///
/// ```
/// use ecosched_core::{
///     Batch, Job, JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span,
///     TimeDelta, TimePoint,
/// };
/// use ecosched_select::{find_alternatives, Amp};
///
/// let slots = (0..4)
///     .map(|i| {
///         Slot::new(
///             SlotId::new(i),
///             NodeId::new(i as u32),
///             Perf::UNIT,
///             Price::from_credits(2),
///             Span::new(TimePoint::new(0), TimePoint::new(400)).unwrap(),
///         )
///     })
///     .collect::<Result<Vec<_>, _>>()?;
/// let list = SlotList::from_slots(slots)?;
/// let batch = Batch::from_jobs(vec![Job::new(
///     JobId::new(0),
///     ResourceRequest::new(2, TimeDelta::new(100), Perf::UNIT, Price::from_credits(3))?,
/// )])?;
///
/// let outcome = find_alternatives(&Amp::new(), &list, &batch)?;
/// // 4 node-slots of 400 ticks admit 8 disjoint 2×100 windows.
/// assert_eq!(outcome.alternatives.total_found(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn find_alternatives(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
) -> Result<SearchOutcome, CoreError> {
    // Built-in selectors run the checkpointed incremental driver: same
    // results, but each window search resumes from the job's last
    // acceptance anchor instead of rescanning the list prefix.
    if let Some(spec) = selector.as_algo() {
        return find_alternatives_incremental(&spec, list, batch);
    }
    find_alternatives_naive(selector, list, batch)
}

/// [`find_alternatives`] with each pass's per-job scans fanned out over a
/// fixed pool of `threads` scoped workers (see [`crate::parallel`]).
///
/// Committed alternatives, the remaining list, and the pass/commit
/// counters are byte-identical to [`find_alternatives`] at any thread
/// count; only the scan work counters differ (speculative evaluation
/// changes how much scanning happens, not what is committed). `threads <=
/// 1` — or a custom selector without an [`crate::AlgoSpec`], which cannot
/// be shared across workers — runs the single-threaded path.
///
/// # Errors
///
/// Propagates [`CoreError`] from slot subtraction, as
/// [`find_alternatives`] does.
pub fn find_alternatives_threads(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
    threads: usize,
) -> Result<SearchOutcome, CoreError> {
    if threads > 1 {
        if let Some(spec) = selector.as_algo() {
            return crate::parallel::find_alternatives_parallel(&spec, list, batch, threads);
        }
    }
    find_alternatives(selector, list, batch)
}

/// The restart-per-window reference implementation of
/// [`find_alternatives`].
///
/// Every committed window triggers a fresh [`SlotSelector::find_window`]
/// scan from the head of the list — `O(A·m)` slot examinations for `A`
/// alternatives over `m` slots. Kept public as the equivalence oracle and
/// benchmark baseline for the incremental driver; custom selectors without
/// an [`crate::AlgoSpec`] always take this path.
///
/// # Errors
///
/// Propagates [`CoreError`] from slot subtraction, as
/// [`find_alternatives`] does.
pub fn find_alternatives_naive(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
) -> Result<SearchOutcome, CoreError> {
    let mut remaining = list.clone();
    let mut alternatives = BatchAlternatives::for_jobs(batch.iter().map(|j| j.id()));
    let mut stats = SearchStats::new();
    let mut dead: HashSet<JobId> = HashSet::new();

    loop {
        let mut found_any = false;
        for (index, job) in batch.iter().enumerate() {
            if dead.contains(&job.id()) {
                continue;
            }
            match selector.find_window(&remaining, job.request(), &mut stats.scan) {
                Some(window) => {
                    remaining.subtract_window(&window)?;
                    alternatives.per_job_mut()[index].push(Alternative::new(job.id(), window));
                    stats.windows_committed += 1;
                    found_any = true;
                }
                None => {
                    // Monotonicity: the list only shrinks within an
                    // iteration, so this job can never succeed again.
                    dead.insert(job.id());
                }
            }
        }
        stats.passes += 1;
        if !found_any {
            break;
        }
    }

    Ok(SearchOutcome {
        alternatives,
        stats,
        remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alp::Alp;
    use crate::amp::Amp;
    use ecosched_core::TimeDelta;
    use ecosched_core::{Job, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, Span, TimePoint};

    fn slot(id: u64, node: u32, perf: f64, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::from_f64(perf),
            Price::from_credits(price),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    fn job(id: u32, n: usize, t: i64, p: f64, c: i64) -> Job {
        Job::new(
            ecosched_core::JobId::new(id),
            ResourceRequest::new(
                n,
                TimeDelta::new(t),
                Perf::from_f64(p),
                Price::from_credits(c),
            )
            .unwrap(),
        )
    }

    fn four_node_list(len: i64) -> SlotList {
        SlotList::from_slots((0..4).map(|i| slot(i, i as u32, 1.0, 2, 0, len)).collect()).unwrap()
    }

    #[test]
    fn alternatives_are_pairwise_disjoint() {
        let list = four_node_list(300);
        let batch = Batch::from_jobs(vec![job(0, 2, 100, 1.0, 3), job(1, 2, 100, 1.0, 3)]).unwrap();
        let outcome = find_alternatives(Alp::new(), &list, &batch).unwrap();
        let all: Vec<_> = outcome
            .alternatives
            .per_job()
            .iter()
            .flat_map(|ja| ja.iter())
            .collect();
        assert!(all.len() >= 4);
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert!(
                    !all[i].window().overlaps(all[j].window()),
                    "windows {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn search_exhausts_the_list() {
        // 4 nodes × 300 ticks, jobs of 2×100 → exactly 6 windows total fit.
        let list = four_node_list(300);
        let batch = Batch::from_jobs(vec![job(0, 2, 100, 1.0, 3)]).unwrap();
        let outcome = find_alternatives(Alp::new(), &list, &batch).unwrap();
        assert_eq!(outcome.alternatives.total_found(), 6);
        // Remaining vacancy cannot host another 2×100 window.
        let mut stats = crate::stats::ScanStats::new();
        assert!(Alp::new()
            .find_window(
                &outcome.remaining,
                batch.as_slice()[0].request(),
                &mut stats
            )
            .is_none());
    }

    #[test]
    fn priority_order_gives_first_job_the_earliest_window() {
        let list = four_node_list(200);
        let batch = Batch::from_jobs(vec![job(7, 2, 100, 1.0, 3), job(3, 2, 100, 1.0, 3)]).unwrap();
        let outcome = find_alternatives(Alp::new(), &list, &batch).unwrap();
        let first = &outcome.alternatives.per_job()[0];
        let second = &outcome.alternatives.per_job()[1];
        assert_eq!(first.job().index(), 7);
        let first_start = first.alternatives()[0].window().start();
        let second_start = second.alternatives()[0].window().start();
        assert!(first_start <= second_start);
    }

    #[test]
    fn failed_job_is_postponed_others_continue() {
        let list = four_node_list(300);
        let batch = Batch::from_jobs(vec![
            job(0, 6, 100, 1.0, 3), // needs 6 nodes, only 4 exist
            job(1, 2, 100, 1.0, 3),
        ])
        .unwrap();
        let outcome = find_alternatives(Amp::new(), &list, &batch).unwrap();
        let postponed: Vec<JobId> = outcome.postponed().collect();
        assert_eq!(postponed, vec![JobId::new(0)]);
        assert!(!outcome.alternatives.all_jobs_covered());
        assert!(outcome.alternatives.per_job()[1].len() >= 4);
    }

    #[test]
    fn amp_finds_strictly_more_alternatives_than_alp() {
        // One cheap node, two expensive ones above the per-slot cap: ALP
        // can never assemble a pair, while AMP pairs the cheap node with an
        // expensive one within the budget (2·100 + 6·100 = 800 ≤ 4·100·2).
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 2, 0, 400),
            slot(1, 1, 1.0, 6, 0, 400),
            slot(2, 2, 1.0, 6, 0, 400),
        ])
        .unwrap();
        let batch = Batch::from_jobs(vec![job(0, 2, 100, 1.0, 4)]).unwrap();
        let alp = find_alternatives(Alp::new(), &list, &batch).unwrap();
        let amp = find_alternatives(Amp::new(), &list, &batch).unwrap();
        assert_eq!(alp.alternatives.total_found(), 0);
        // The cheap node's 400 ticks host four 100-tick windows.
        assert_eq!(amp.alternatives.total_found(), 4);
    }

    #[test]
    fn empty_batch_terminates_immediately() {
        let list = four_node_list(100);
        let outcome = find_alternatives(Alp::new(), &list, &Batch::new()).unwrap();
        assert_eq!(outcome.stats.passes, 1);
        assert_eq!(outcome.alternatives.total_found(), 0);
        assert_eq!(outcome.remaining.len(), list.len());
    }

    #[test]
    fn stats_track_committed_windows() {
        let list = four_node_list(200);
        let batch = Batch::from_jobs(vec![job(0, 2, 100, 1.0, 3)]).unwrap();
        let outcome = find_alternatives(Alp::new(), &list, &batch).unwrap();
        assert_eq!(
            outcome.stats.windows_committed,
            outcome.alternatives.total_found() as u64
        );
        assert!(outcome.stats.scan.windows_found >= outcome.stats.windows_committed);
    }
}
