//! Batch-at-once slot selection — the paper's first future-work item
//! (Sec. 7: "the problem of slot selection for the whole job batch at once
//! and not for each job consecutively").
//!
//! The sequential search serves jobs in fixed priority order, so a
//! high-priority job may grab resources that block a *much earlier* window
//! for a lower-priority one. The co-scheduled search instead evaluates
//! every live job's candidate window on the current list and commits the
//! globally earliest one first (ties fall back to batch priority), then
//! re-evaluates. Every pass still hands each job at most one alternative,
//! and the outcome is a drop-in [`SearchOutcome`].

use std::collections::HashSet;

use ecosched_core::{Alternative, Batch, BatchAlternatives, CoreError, JobId, SlotList, Window};

use crate::incremental::find_alternatives_coscheduled_incremental;
use crate::search::SearchOutcome;
use crate::selector::SlotSelector;
use crate::stats::SearchStats;

/// Runs the batch-at-once alternatives search.
///
/// Same contract as [`crate::find_alternatives`]: non-destructive, and all
/// returned alternatives are pairwise disjoint. Within a pass each job
/// receives at most one window; commits happen in order of window start
/// time rather than job priority.
///
/// # Errors
///
/// Propagates [`CoreError`] from slot subtraction (impossible with the
/// built-in selectors).
///
/// # Examples
///
/// ```
/// use ecosched_core::{
///     Batch, Job, JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span,
///     TimeDelta, TimePoint,
/// };
/// use ecosched_select::{find_alternatives_coscheduled, Amp};
///
/// let slots = (0..2)
///     .map(|i| {
///         Slot::new(
///             SlotId::new(i),
///             NodeId::new(i as u32),
///             Perf::UNIT,
///             Price::from_credits(2),
///             Span::new(TimePoint::new(0), TimePoint::new(300)).unwrap(),
///         )
///     })
///     .collect::<Result<Vec<_>, _>>()?;
/// let list = SlotList::from_slots(slots)?;
/// let mk = |id| {
///     Job::new(
///         JobId::new(id),
///         ResourceRequest::new(1, TimeDelta::new(100), Perf::UNIT, Price::from_credits(3))
///             .unwrap(),
///     )
/// };
/// let batch = Batch::from_jobs(vec![mk(0), mk(1)])?;
/// let outcome = find_alternatives_coscheduled(&Amp::new(), &list, &batch)?;
/// assert!(outcome.alternatives.all_jobs_covered());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn find_alternatives_coscheduled(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
) -> Result<SearchOutcome, CoreError> {
    find_alternatives_coscheduled_threads(selector, list, batch, 1)
}

/// [`find_alternatives_coscheduled`] with a worker-pool width.
///
/// Built-in selectors run the lazy-revalidated priority-queue driver
/// (see [`crate::parallel`]): instead of re-running every pending job's
/// scan after every commit (`O(batch²)` resumes per pass), each pass
/// seeds a heap keyed by `(window start, batch index)` and pops
/// candidates, revalidating stale entries lazily — `O(batch log batch)`
/// when commits interfere with few other jobs. At `threads > 1` the
/// per-pass seeding also fans out over scoped workers. Committed
/// alternatives, the remaining list, and the pass/commit counters are
/// byte-identical to [`find_alternatives_coscheduled_rescan`] at any
/// thread count; only the scan work counters differ.
///
/// # Errors
///
/// Propagates [`CoreError`] from slot subtraction, as
/// [`find_alternatives_coscheduled`] does.
pub fn find_alternatives_coscheduled_threads(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
    threads: usize,
) -> Result<SearchOutcome, CoreError> {
    if let Some(spec) = selector.as_algo() {
        return crate::parallel::find_alternatives_coscheduled_queue(&spec, list, batch, threads);
    }
    find_alternatives_coscheduled_naive(selector, list, batch)
}

/// The retained rescan driver: evaluates every pending job after every
/// commit, exactly as [`find_alternatives_coscheduled`] did before the
/// priority-queue rework.
///
/// Built-in selectors still resume each job's scan from its checkpoint
/// (so a rescan is a cheap resume, not a head-of-list restart), but the
/// driver is `O(batch²)` scan resumes per pass. Kept public as the
/// equivalence oracle for the queue driver and as its benchmark baseline.
///
/// # Errors
///
/// Propagates [`CoreError`] from slot subtraction, as
/// [`find_alternatives_coscheduled`] does.
pub fn find_alternatives_coscheduled_rescan(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
) -> Result<SearchOutcome, CoreError> {
    if let Some(spec) = selector.as_algo() {
        return find_alternatives_coscheduled_incremental(&spec, list, batch);
    }
    find_alternatives_coscheduled_naive(selector, list, batch)
}

/// The restart-per-window reference implementation of
/// [`find_alternatives_coscheduled`].
///
/// Every round re-runs a full [`SlotSelector::find_window`] scan for every
/// pending job. Kept public as the equivalence oracle and benchmark
/// baseline for the incremental driver; custom selectors without an
/// [`crate::AlgoSpec`] always take this path.
///
/// # Errors
///
/// Propagates [`CoreError`] from slot subtraction, as
/// [`find_alternatives_coscheduled`] does.
pub fn find_alternatives_coscheduled_naive(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
) -> Result<SearchOutcome, CoreError> {
    let mut remaining = list.clone();
    let mut alternatives = BatchAlternatives::for_jobs(batch.iter().map(|j| j.id()));
    let mut stats = SearchStats::new();
    let mut dead: HashSet<JobId> = HashSet::new();

    loop {
        let mut committed_this_pass = 0u64;
        // Jobs still waiting for their window in this pass, in priority
        // order (the tie-break).
        let mut pending: Vec<usize> = (0..batch.len())
            .filter(|&i| !dead.contains(&batch.as_slice()[i].id()))
            .collect();

        while !pending.is_empty() {
            // Evaluate every pending job on the *current* list.
            let mut best: Option<(usize, Window)> = None;
            let mut found_for: Vec<(usize, Window)> = Vec::with_capacity(pending.len());
            for &index in &pending {
                let job = &batch.as_slice()[index];
                match selector.find_window(&remaining, job.request(), &mut stats.scan) {
                    Some(window) => found_for.push((index, window)),
                    None => {
                        dead.insert(job.id());
                    }
                }
            }
            for (index, window) in found_for {
                let better = match &best {
                    None => true,
                    Some((best_index, best_window)) => {
                        (window.start(), index) < (best_window.start(), *best_index)
                    }
                };
                if better {
                    best = Some((index, window));
                }
            }
            let Some((index, window)) = best else { break };
            remaining.subtract_window(&window)?;
            alternatives.per_job_mut()[index]
                .push(Alternative::new(batch.as_slice()[index].id(), window));
            stats.windows_committed += 1;
            committed_this_pass += 1;
            pending.retain(|&i| i != index && !dead.contains(&batch.as_slice()[i].id()));
        }

        stats.passes += 1;
        if committed_this_pass == 0 {
            break;
        }
        // Subtraction only shrinks the list and both built-in selectors
        // are monotone in list content, so a job that failed once can
        // never succeed later — dead stays dead, exactly as in the
        // sequential search.
    }

    Ok(SearchOutcome {
        alternatives,
        stats,
        remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alp::Alp;
    use crate::amp::Amp;
    use crate::search::find_alternatives;
    use ecosched_core::{
        Job, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, Span, TimeDelta, TimePoint,
    };

    fn slot(id: u64, node: u32, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::UNIT,
            Price::from_credits(price),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    fn job(id: u32, n: usize, t: i64, c: i64) -> Job {
        Job::new(
            ecosched_core::JobId::new(id),
            ResourceRequest::new(n, TimeDelta::new(t), Perf::UNIT, Price::from_credits(c)).unwrap(),
        )
    }

    #[test]
    fn commits_globally_earliest_window_first() {
        // Job 0 (high priority) can only start at t=100; job 1 could start
        // at t=0 — and the sequential order would also allow that, but the
        // co-scheduler must commit job 1's window *first*.
        let list = SlotList::from_slots(vec![
            slot(0, 0, 2, 100, 400), // only node fast/large enough for job 0
            slot(1, 1, 2, 0, 90),
        ])
        .unwrap();
        let batch = Batch::from_jobs(vec![job(0, 1, 150, 5), job(1, 1, 80, 5)]).unwrap();
        let outcome = find_alternatives_coscheduled(Amp::new(), &list, &batch).unwrap();
        let j0 = &outcome.alternatives.per_job()[0];
        let j1 = &outcome.alternatives.per_job()[1];
        assert_eq!(j1.alternatives()[0].window().start(), TimePoint::new(0));
        assert_eq!(j0.alternatives()[0].window().start(), TimePoint::new(100));
    }

    #[test]
    fn beats_sequential_order_when_priority_blocks_an_early_window() {
        // One shared cheap node vacant [0, 200). Sequential: job 0 takes
        // [0, 100), forcing job 1 to [100, 180). Both get scheduled either
        // way, but co-scheduling picks the same result here — the win case
        // is when job 0 has *another* (later) option and job 1 does not.
        let list = SlotList::from_slots(vec![
            slot(0, 0, 2, 0, 200),   // the contested early node
            slot(1, 1, 2, 120, 300), // job 0's fallback (too short for job 1)
        ])
        .unwrap();
        // Job 0 (priority) needs 100 ticks; job 1 needs 200 and only fits
        // on node 0 starting at 0.
        let batch = Batch::from_jobs(vec![job(0, 1, 100, 5), job(1, 1, 200, 5)]).unwrap();

        let sequential = find_alternatives(Amp::new(), &list, &batch).unwrap();
        let coscheduled = find_alternatives_coscheduled(Amp::new(), &list, &batch).unwrap();

        // Sequential: job 0 grabs node 0 at t=0 → job 1 (200 ticks on
        // node 0) no longer fits → postponed.
        assert!(sequential.alternatives.per_job()[1].is_empty());
        // Co-scheduled: job 1's earliest window (t=0, 200 ticks) and job
        // 0's earliest (t=0 on node 0, 100 ticks) tie on start; priority
        // breaks the tie for job 0… which again blocks job 1. The true win
        // needs job 1 to start strictly earlier: shrink job 0's earliest.
        // (Kept as documentation of the tie-break; the strict case is
        // below.)
        let _ = coscheduled;

        // The strict-win case: job 1's earliest window starts strictly
        // before job 0's, and job 0's commit destroys it.
        //   A: perf 1.0, price 2,  vacant [0, 250)  — job 1 only (perf)
        //   C: perf 1.5, price 2,  vacant [60, 300) — contested
        //   E: perf 2.0, price 25, vacant [80, 300) — affordable to job 0 only
        let a = Slot::new(
            SlotId::new(0),
            NodeId::new(0),
            Perf::from_f64(1.0),
            Price::from_credits(2),
            Span::new(TimePoint::new(0), TimePoint::new(250)).unwrap(),
        )
        .unwrap();
        let c = Slot::new(
            SlotId::new(1),
            NodeId::new(1),
            Perf::from_f64(1.5),
            Price::from_credits(2),
            Span::new(TimePoint::new(60), TimePoint::new(300)).unwrap(),
        )
        .unwrap();
        let e = Slot::new(
            SlotId::new(2),
            NodeId::new(2),
            Perf::from_f64(2.0),
            Price::from_credits(25),
            Span::new(TimePoint::new(80), TimePoint::new(300)).unwrap(),
        )
        .unwrap();
        let list2 = SlotList::from_slots(vec![a, c, e]).unwrap();
        let job0 = Job::new(
            ecosched_core::JobId::new(0),
            ResourceRequest::new(
                2,
                TimeDelta::new(100),
                Perf::from_f64(1.5),
                Price::from_credits(8),
            )
            .unwrap(),
        );
        let job1 = Job::new(
            ecosched_core::JobId::new(1),
            ResourceRequest::new(
                2,
                TimeDelta::new(180),
                Perf::from_f64(1.0),
                Price::from_credits(5),
            )
            .unwrap(),
        );
        let batch2 = Batch::from_jobs(vec![job0, job1]).unwrap();
        let seq2 = find_alternatives(Amp::new(), &list2, &batch2).unwrap();
        let cos2 = find_alternatives_coscheduled(Amp::new(), &list2, &batch2).unwrap();
        // Sequential: job 0 (priority) takes {C, E} at t=80; by the time
        // job 1 gets C back, node A has expired and E busts its budget.
        assert!(seq2.alternatives.per_job()[1].is_empty());
        // Co-scheduled: job 1's strictly earlier {A, C} window at t=60 is
        // committed first; job 0 still gets {C, E} afterwards.
        assert!(cos2.alternatives.all_jobs_covered());
        assert_eq!(
            cos2.alternatives.per_job()[1].alternatives()[0]
                .window()
                .start(),
            TimePoint::new(60)
        );
    }

    #[test]
    fn alternatives_remain_disjoint() {
        let list =
            SlotList::from_slots((0..6).map(|i| slot(i, i as u32, 2, 0, 500)).collect()).unwrap();
        let batch =
            Batch::from_jobs(vec![job(0, 2, 100, 5), job(1, 3, 80, 5), job(2, 1, 120, 5)]).unwrap();
        let outcome = find_alternatives_coscheduled(Alp::new(), &list, &batch).unwrap();
        let windows: Vec<&Window> = outcome
            .alternatives
            .per_job()
            .iter()
            .flat_map(|ja| ja.iter().map(|a| a.window()))
            .collect();
        assert!(windows.len() >= 3);
        for i in 0..windows.len() {
            for j in (i + 1)..windows.len() {
                assert!(!windows[i].overlaps(windows[j]));
            }
        }
        outcome.remaining.validate().unwrap();
    }

    #[test]
    fn covers_at_least_as_many_jobs_as_sequential() {
        // Earliest-first can only free up earlier capacity; spot-check on
        // a few structured instances.
        for shift in 0..5i64 {
            let list = SlotList::from_slots(vec![
                slot(0, 0, 2, shift, 200 + shift),
                slot(1, 1, 2, 0, 150),
                slot(2, 2, 2, 100, 400),
            ])
            .unwrap();
            let batch = Batch::from_jobs(vec![job(0, 1, 100, 5), job(1, 1, 140, 5)]).unwrap();
            let seq = find_alternatives(Amp::new(), &list, &batch).unwrap();
            let cos = find_alternatives_coscheduled(Amp::new(), &list, &batch).unwrap();
            let seq_covered = seq
                .alternatives
                .per_job()
                .iter()
                .filter(|ja| !ja.is_empty())
                .count();
            let cos_covered = cos
                .alternatives
                .per_job()
                .iter()
                .filter(|ja| !ja.is_empty())
                .count();
            assert!(
                cos_covered >= seq_covered,
                "shift {shift}: coscheduled covered {cos_covered} < sequential {seq_covered}"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let list = SlotList::from_slots(vec![slot(0, 0, 1, 0, 10)]).unwrap();
        let outcome = find_alternatives_coscheduled(Amp::new(), &list, &Batch::new()).unwrap();
        assert_eq!(outcome.alternatives.total_found(), 0);
    }
}
