//! Slot-selection algorithms for economic co-allocation.
//!
//! This crate implements Sec. 3 of Toporkov et al. (PaCT 2011):
//!
//! * [`Alp`] — the **A**lgorithm based on **L**ocal **P**rice: a linear
//!   forward scan admitting only slots whose individual price is within the
//!   request's cap `C`.
//! * [`Amp`] — the **A**lgorithm based on **M**aximal job **P**rice: the
//!   same scan without the per-slot cap, accepting a window as soon as the
//!   `N` cheapest live candidates fit the job budget `S = C·t·N`
//!   (optionally `ρ·C·t·N`).
//! * [`find_alternatives`] — the multi-pass alternatives search of Sec. 2,
//!   which repeatedly runs a selector over the batch and subtracts every
//!   found window so all alternatives are disjoint.
//!
//! Both algorithms examine each slot of the list at most once per window
//! search ([`ScanStats::slots_examined`] proves it in tests), handle
//! heterogeneous node performance (windows get a "rough right edge"), and
//! are deterministic.
//!
//! For the built-in selectors the alternatives searches run an
//! *incremental* driver: each job keeps a checkpoint (last acceptance
//! anchor plus the live candidate pool before it) and resumes there after
//! every subtraction instead of rescanning the list prefix, and AMP's
//! acceptance test maintains a cost-ordered pool with a running sum of the
//! `N` cheapest instead of sorting per group. Results are byte-identical
//! to the reference drivers, which stay available as
//! [`find_alternatives_naive`] / [`find_alternatives_coscheduled_naive`];
//! see `DESIGN.md` § "Complexity & performance" for the cost model.
//!
//! # Example
//!
//! ```
//! use ecosched_core::{
//!     Batch, Job, JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span,
//!     TimeDelta, TimePoint,
//! };
//! use ecosched_select::{find_alternatives, Alp, Amp};
//!
//! let slots = (0..3)
//!     .map(|i| {
//!         Slot::new(
//!             SlotId::new(i),
//!             NodeId::new(i as u32),
//!             Perf::from_f64(1.0 + i as f64),
//!             Price::from_credits(1 + 2 * i as i64),
//!             Span::new(TimePoint::new(0), TimePoint::new(600)).unwrap(),
//!         )
//!     })
//!     .collect::<Result<Vec<_>, _>>()?;
//! let list = SlotList::from_slots(slots)?;
//! let batch = Batch::from_jobs(vec![Job::new(
//!     JobId::new(0),
//!     ResourceRequest::new(2, TimeDelta::new(120), Perf::UNIT, Price::from_credits(3))?,
//! )])?;
//!
//! let alp = find_alternatives(&Alp::new(), &list, &batch)?;
//! let amp = find_alternatives(&Amp::new(), &list, &batch)?;
//! assert!(amp.alternatives.total_found() >= alp.alternatives.total_found());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
// Library code must propagate or document failures; bare `unwrap()` is
// reserved for tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod alp;
mod amp;
mod coschedule;
mod incremental;
mod parallel;
mod repair;
mod scan;
mod search;
mod selector;
mod stats;

pub use alp::Alp;
pub use amp::Amp;
pub use coschedule::{
    find_alternatives_coscheduled, find_alternatives_coscheduled_naive,
    find_alternatives_coscheduled_rescan, find_alternatives_coscheduled_threads,
};
pub use incremental::AlgoSpec;
pub use repair::{repair_search, revalidate_window, try_adopt_window, RepairError};
pub use scan::LengthRule;
pub use search::{
    find_alternatives, find_alternatives_naive, find_alternatives_threads, SearchOutcome,
};
pub use selector::SlotSelector;
pub use stats::{ScanStats, SearchStats};
