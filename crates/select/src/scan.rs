//! Shared forward-scan machinery for ALP and AMP.
//!
//! Both algorithms walk the start-ordered slot list exactly once,
//! maintaining a *candidate pool*. When slot `s_k` is examined, the window
//! anchor (the synchronized start of all tasks) is `s_k`'s start time —
//! every pooled slot started no later, so all of them can still start
//! together at that moment, provided enough of their span remains.
//!
//! A pooled member `m` is **live** at anchor `a` iff
//! `a + runtime_m ≤ m.end` — this is the paper's step 3° expiration test
//! `L'(s_k) < (t − (T_last − T(s_k)))·…` rewritten in absolute coordinates.
//! Note the pool is therefore a pure function of the anchor, which is what
//! makes the single forward pass sound: expiring a member can never need to
//! be undone.

use ecosched_core::{Money, Perf, ResourceRequest, Slot, TimeDelta, TimePoint, Window, WindowSlot};
use serde::{Deserialize, Serialize};

use crate::stats::ScanStats;

/// Which reading of the paper's condition 2°b to use (DESIGN.md note R1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LengthRule {
    /// Corrected rule: the request's wall time `t` is *etalon-relative*
    /// (Sec. 6: "in assumption that the job will be executed on the etalon
    /// nodes with `P = 1`"), so the runtime on node `k` is `ceil(t/P(s_k))`
    /// — faster nodes finish sooner, and the slot cost works out to
    /// Sec. 6's `C·t/P`. The minimum performance `P` is an admission
    /// filter only. This is the default.
    #[default]
    Corrected,
    /// The paper's literal step-2°b inequality `L(s_k) ≥ t·P(s_k)/P`,
    /// under which faster nodes need longer slots. Kept for the R1
    /// ablation bench.
    PaperLiteral,
}

impl LengthRule {
    /// Runtime of a task with the given request on a node of rate `perf`.
    #[must_use]
    pub fn runtime(self, request: &ResourceRequest, perf: Perf) -> TimeDelta {
        match self {
            LengthRule::Corrected => perf.runtime_for(request.wall_time(), Perf::UNIT),
            LengthRule::PaperLiteral => {
                perf.runtime_for_paper_literal(request.wall_time(), request.min_perf())
            }
        }
    }
}

/// A pooled candidate: a suited slot plus its precomputed task runtime.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PoolMember {
    pub(crate) slot: Slot,
    pub(crate) runtime: TimeDelta,
}

/// Tests admission conditions 2°a (performance) and 2°b (length) for one
/// slot and returns the pool member on success. Condition 2°c (price) is
/// the algorithm-specific filter and is *not* applied here. Shared by the
/// naive [`forward_scan`] pool and the incremental per-job scans.
pub(crate) fn admit_slot(
    request: &ResourceRequest,
    rule: LengthRule,
    slot: &Slot,
) -> Option<PoolMember> {
    if !slot.perf().satisfies(request.min_perf()) {
        return None;
    }
    let runtime = rule.runtime(request, slot.perf());
    if !runtime.is_positive() || slot.length() < runtime {
        return None;
    }
    Some(PoolMember {
        slot: *slot,
        runtime,
    })
}

impl PoolMember {
    /// Cost of occupying this member for its runtime.
    pub(crate) fn cost(&self) -> Money {
        self.slot.price() * self.runtime
    }

    /// Returns `true` if the member can still host a task starting at
    /// `anchor`.
    pub(crate) fn live_at(&self, anchor: TimePoint) -> bool {
        debug_assert!(self.slot.start() <= anchor);
        anchor + self.runtime <= self.slot.end()
    }
}

/// The forward-scan candidate pool.
#[derive(Debug)]
pub(crate) struct Pool<'req> {
    request: &'req ResourceRequest,
    rule: LengthRule,
    members: Vec<PoolMember>,
}

impl<'req> Pool<'req> {
    pub(crate) fn new(request: &'req ResourceRequest, rule: LengthRule) -> Self {
        Pool {
            request,
            rule,
            members: Vec::with_capacity(request.nodes() * 2),
        }
    }

    /// Tests admission conditions 2°a (performance) and 2°b (length) and
    /// returns the member on success. Condition 2°c (price) is the
    /// algorithm-specific filter and is *not* applied here.
    pub(crate) fn admit(&self, slot: &Slot) -> Option<PoolMember> {
        admit_slot(self.request, self.rule, slot)
    }

    /// Advances the anchor to `anchor`, expiring members whose remaining
    /// span is too short (step 3°). Returns the number expired.
    pub(crate) fn advance(&mut self, anchor: TimePoint) -> u64 {
        let before = self.members.len();
        self.members.retain(|m| m.live_at(anchor));
        (before - self.members.len()) as u64
    }

    /// Adds a previously admitted member.
    pub(crate) fn push(&mut self, member: PoolMember) {
        self.members.push(member);
    }

    pub(crate) fn len(&self) -> usize {
        self.members.len()
    }

    pub(crate) fn members(&self) -> &[PoolMember] {
        &self.members
    }

    /// Assembles a window from the given members. The window start is the
    /// latest member start — the earliest moment all chosen tasks can begin
    /// together.
    ///
    /// # Panics
    ///
    /// Panics (via `expect`) if `chosen` is empty or violates window
    /// invariants; callers only pass non-empty live pool subsets, which
    /// satisfy them by construction.
    pub(crate) fn build_window(chosen: &[PoolMember]) -> Window {
        let start = chosen
            .iter()
            .map(|m| m.slot.start())
            .max()
            .expect("build_window requires at least one member");
        let members = chosen
            .iter()
            .map(|m| {
                WindowSlot::from_slot(&m.slot, m.runtime)
                    .expect("pool members have positive runtimes")
            })
            .collect();
        Window::new(start, members).expect("live pool members form a valid window")
    }
}

/// Runs the shared forward scan.
///
/// `slot_filter` is the per-slot admission predicate beyond conditions
/// 2°a/2°b (ALP's price cap; AMP admits everything). `try_accept` inspects
/// the live pool and, if the algorithm's acceptance test passes, returns
/// the chosen members; the scan then stops.
///
/// Slots are processed in *groups of equal start time* and acceptance is
/// tested once per group: resources released together (the paper's 0.4
/// same-start probability, domain releases) must all be on the table
/// before the algorithm prices a window at that instant. For ALP this is
/// behaviour-neutral (it takes the first `N` admitted members either way);
/// for AMP it is what lets the Fig. 2 worked example pick the cheap
/// {cpu1, cpu2, cpu4} window over a costlier subset of the same-start
/// group.
pub(crate) fn forward_scan<'a>(
    slots: impl IntoIterator<Item = &'a Slot>,
    request: &ResourceRequest,
    rule: LengthRule,
    stats: &mut ScanStats,
    mut slot_filter: impl FnMut(&Slot) -> bool,
    mut try_accept: impl FnMut(&Pool<'_>, &mut ScanStats) -> Option<Vec<PoolMember>>,
) -> Option<Window> {
    let mut pool = Pool::new(request, rule);
    let mut iter = slots.into_iter().peekable();
    while let Some(first) = iter.next() {
        // The anchor is the group's shared start: the list is
        // start-ordered, so this is the latest start seen so far.
        let anchor = first.start();
        let mut admitted: Vec<PoolMember> = Vec::new();
        stats.slots_examined += 1;
        if slot_filter(first) {
            if let Some(member) = pool.admit(first) {
                admitted.push(member);
            }
        }
        while iter.peek().is_some_and(|s| s.start() == anchor) {
            let slot = iter.next().expect("peeked element exists");
            stats.slots_examined += 1;
            if !slot_filter(slot) {
                continue;
            }
            if let Some(member) = pool.admit(slot) {
                admitted.push(member);
            }
        }
        if admitted.is_empty() {
            continue;
        }
        stats.groups_scanned += 1;
        stats.slots_expired += pool.advance(anchor);
        stats.slots_admitted += admitted.len() as u64;
        for member in admitted {
            pool.push(member);
        }
        stats.pool_high_water = stats.pool_high_water.max(pool.len() as u64);
        if pool.len() >= request.nodes() {
            if let Some(chosen) = try_accept(&pool, stats) {
                stats.windows_found += 1;
                return Some(Pool::build_window(&chosen));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{NodeId, Price, SlotId, Span};

    fn req(n: usize, t: i64, p: f64, c: i64) -> ResourceRequest {
        ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_f64(p),
            Price::from_credits(c),
        )
        .unwrap()
    }

    fn slot(id: u64, node: u32, perf: f64, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::from_f64(perf),
            Price::from_credits(price),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn admit_rejects_slow_nodes() {
        let request = req(1, 50, 2.0, 10);
        let pool = Pool::new(&request, LengthRule::Corrected);
        assert!(pool.admit(&slot(0, 0, 1.0, 1, 0, 1000)).is_none());
        assert!(pool.admit(&slot(0, 0, 2.0, 1, 0, 1000)).is_some());
    }

    #[test]
    fn admit_rejects_short_slots() {
        let request = req(1, 50, 1.0, 10);
        let pool = Pool::new(&request, LengthRule::Corrected);
        assert!(pool.admit(&slot(0, 0, 1.0, 1, 0, 49)).is_none());
        assert!(pool.admit(&slot(0, 0, 1.0, 1, 0, 50)).is_some());
    }

    #[test]
    fn admit_scales_length_with_perf() {
        let request = req(1, 100, 1.0, 10);
        let pool = Pool::new(&request, LengthRule::Corrected);
        // Rate-2 node needs only 50 ticks.
        assert!(pool.admit(&slot(0, 0, 2.0, 1, 0, 50)).is_some());
        // Literal rule would require 200.
        let literal = Pool::new(&request, LengthRule::PaperLiteral);
        assert!(literal.admit(&slot(0, 0, 2.0, 1, 0, 50)).is_none());
        assert!(literal.admit(&slot(0, 0, 2.0, 1, 0, 200)).is_some());
    }

    #[test]
    fn member_expires_when_anchor_advances() {
        let request = req(2, 50, 1.0, 10);
        let mut pool = Pool::new(&request, LengthRule::Corrected);
        let early = pool.admit(&slot(0, 0, 1.0, 1, 0, 60)).unwrap();
        pool.push(early);
        // Anchor at 10: member [0,60) still fits a 50-tick task.
        assert_eq!(pool.advance(TimePoint::new(10)), 0);
        // Anchor at 11: 11 + 50 > 60 → expired.
        assert_eq!(pool.advance(TimePoint::new(11)), 1);
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn build_window_anchors_at_latest_start() {
        let request = req(2, 50, 1.0, 10);
        let pool = Pool::new(&request, LengthRule::Corrected);
        let a = pool.admit(&slot(0, 0, 1.0, 1, 0, 100)).unwrap();
        let b = pool.admit(&slot(1, 1, 1.0, 1, 20, 100)).unwrap();
        let window = Pool::build_window(&[a, b]);
        assert_eq!(window.start(), TimePoint::new(20));
        assert_eq!(window.length(), TimeDelta::new(50));
    }

    #[test]
    fn forward_scan_counts_all_slots_once() {
        let request = req(3, 50, 1.0, 10);
        let slots: Vec<Slot> = (0..10)
            .map(|i| slot(i, i as u32, 1.0, 100, i as i64 * 5, i as i64 * 5 + 40))
            .collect();
        let mut stats = ScanStats::new();
        // Filter admits nothing → scan visits every slot and finds nothing.
        let result = forward_scan(
            &slots,
            &request,
            LengthRule::Corrected,
            &mut stats,
            |_| false,
            |_, _| None,
        );
        assert!(result.is_none());
        assert_eq!(stats.slots_examined, 10);
        assert_eq!(stats.slots_admitted, 0);
    }

    #[test]
    fn forward_scan_accepts_first_full_pool() {
        let request = req(2, 50, 1.0, 10);
        let slots = vec![
            slot(0, 0, 1.0, 1, 0, 100),
            slot(1, 1, 1.0, 1, 10, 100),
            slot(2, 2, 1.0, 1, 20, 100),
        ];
        let mut stats = ScanStats::new();
        let window = forward_scan(
            &slots,
            &request,
            LengthRule::Corrected,
            &mut stats,
            |_| true,
            |pool, _| Some(pool.members().to_vec()),
        )
        .unwrap();
        assert_eq!(window.slot_count(), 2);
        assert_eq!(window.start(), TimePoint::new(10));
        // Scan stopped early: slot 2 never examined.
        assert_eq!(stats.slots_examined, 2);
        assert_eq!(stats.windows_found, 1);
    }

    #[test]
    fn member_cost_is_price_times_runtime() {
        let request = req(1, 60, 1.0, 10);
        let pool = Pool::new(&request, LengthRule::Corrected);
        let m = pool.admit(&slot(0, 0, 2.0, 4, 0, 100)).unwrap();
        assert_eq!(m.runtime, TimeDelta::new(30));
        assert_eq!(m.cost(), Money::from_credits(120));
    }
}
