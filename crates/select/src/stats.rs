//! Counters describing the work done by the slot-selection algorithms.
//!
//! The paper's central complexity claim is that ALP and AMP are `O(m)` in
//! the number of available slots because the scan only moves forward.
//! [`ScanStats::slots_examined`] makes that claim checkable: a single
//! `find_window` call examines each slot of the list at most once.

use serde::{Deserialize, Serialize};

/// Work counters for window searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanStats {
    /// Slots taken from the ordered list and tested (step 2° executions).
    pub slots_examined: u64,
    /// Slots that passed admission and entered the candidate pool.
    pub slots_admitted: u64,
    /// Pool members dropped because their remaining length expired
    /// (step 3° removals).
    pub slots_expired: u64,
    /// Budget tests performed (AMP step 2° iterations; for ALP this counts
    /// the single acceptance check per window).
    pub acceptance_tests: u64,
    /// Windows successfully assembled.
    pub windows_found: u64,
    /// Same-start groups that admitted at least one candidate (the scan
    /// only expires members and tests acceptance at these points).
    pub groups_scanned: u64,
    /// Largest candidate-pool size observed (merged by `max`, not `+`).
    pub pool_high_water: u64,
    /// Scans resumed from a per-job checkpoint instead of rescanning the
    /// list prefix (incremental alternatives search only; always zero for
    /// standalone `find_window` calls).
    pub checkpoint_hits: u64,
}

impl ScanStats {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        ScanStats::default()
    }

    /// Adds another counter set into this one. All counters are additive
    /// except [`ScanStats::pool_high_water`], which is a running maximum.
    pub fn merge(&mut self, other: &ScanStats) {
        self.slots_examined += other.slots_examined;
        self.slots_admitted += other.slots_admitted;
        self.slots_expired += other.slots_expired;
        self.acceptance_tests += other.acceptance_tests;
        self.windows_found += other.windows_found;
        self.groups_scanned += other.groups_scanned;
        self.pool_high_water = self.pool_high_water.max(other.pool_high_water);
        self.checkpoint_hits += other.checkpoint_hits;
    }
}

/// Counters for a whole multi-pass alternatives search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of passes over the batch (each pass attempts every live job).
    pub passes: u64,
    /// Total windows committed as alternatives.
    pub windows_committed: u64,
    /// Aggregated scan counters over every `find_window` call.
    pub scan: ScanStats,
}

impl SearchStats {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        SearchStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ScanStats {
            slots_examined: 1,
            slots_admitted: 2,
            slots_expired: 3,
            acceptance_tests: 4,
            windows_found: 5,
            groups_scanned: 6,
            pool_high_water: 7,
            checkpoint_hits: 8,
        };
        let b = ScanStats {
            slots_examined: 10,
            slots_admitted: 20,
            slots_expired: 30,
            acceptance_tests: 40,
            windows_found: 50,
            groups_scanned: 60,
            pool_high_water: 3,
            checkpoint_hits: 80,
        };
        a.merge(&b);
        assert_eq!(a.slots_examined, 11);
        assert_eq!(a.slots_admitted, 22);
        assert_eq!(a.slots_expired, 33);
        assert_eq!(a.acceptance_tests, 44);
        assert_eq!(a.windows_found, 55);
        assert_eq!(a.groups_scanned, 66);
        // High-water marks take the maximum, not the sum.
        assert_eq!(a.pool_high_water, 7);
        assert_eq!(a.checkpoint_hits, 88);
    }

    #[test]
    fn new_is_zeroed() {
        assert_eq!(ScanStats::new(), ScanStats::default());
        assert_eq!(SearchStats::new().passes, 0);
    }
}
