//! Counters describing the work done by the slot-selection algorithms.
//!
//! The paper's central complexity claim is that ALP and AMP are `O(m)` in
//! the number of available slots because the scan only moves forward.
//! [`ScanStats::slots_examined`] makes that claim checkable: a single
//! `find_window` call examines each slot of the list at most once.

use serde::{Deserialize, Serialize};

/// Work counters for window searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanStats {
    /// Slots taken from the ordered list and tested (step 2° executions).
    pub slots_examined: u64,
    /// Slots that passed admission and entered the candidate pool.
    pub slots_admitted: u64,
    /// Pool members dropped because their remaining length expired
    /// (step 3° removals).
    pub slots_expired: u64,
    /// Budget tests performed (AMP step 2° iterations; for ALP this counts
    /// the single acceptance check per window).
    pub acceptance_tests: u64,
    /// Windows successfully assembled.
    pub windows_found: u64,
}

impl ScanStats {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        ScanStats::default()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &ScanStats) {
        self.slots_examined += other.slots_examined;
        self.slots_admitted += other.slots_admitted;
        self.slots_expired += other.slots_expired;
        self.acceptance_tests += other.acceptance_tests;
        self.windows_found += other.windows_found;
    }
}

/// Counters for a whole multi-pass alternatives search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of passes over the batch (each pass attempts every live job).
    pub passes: u64,
    /// Total windows committed as alternatives.
    pub windows_committed: u64,
    /// Aggregated scan counters over every `find_window` call.
    pub scan: ScanStats,
}

impl SearchStats {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        SearchStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ScanStats {
            slots_examined: 1,
            slots_admitted: 2,
            slots_expired: 3,
            acceptance_tests: 4,
            windows_found: 5,
        };
        let b = ScanStats {
            slots_examined: 10,
            slots_admitted: 20,
            slots_expired: 30,
            acceptance_tests: 40,
            windows_found: 50,
        };
        a.merge(&b);
        assert_eq!(a.slots_examined, 11);
        assert_eq!(a.slots_admitted, 22);
        assert_eq!(a.slots_expired, 33);
        assert_eq!(a.acceptance_tests, 44);
        assert_eq!(a.windows_found, 55);
    }

    #[test]
    fn new_is_zeroed() {
        assert_eq!(ScanStats::new(), ScanStats::default());
        assert_eq!(SearchStats::new().passes, 0);
    }
}
