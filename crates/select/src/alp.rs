//! ALP — the Algorithm based on Local Price of slots (paper Sec. 3).
//!
//! ALP restricts admission to slots whose *individual* price per time unit
//! is within the request's cap `C` (condition 2°c) and accepts the first
//! moment the candidate pool holds `N` live slots. The scan moves only
//! forward, so one call examines each slot of the list at most once.

use ecosched_core::{ResourceRequest, SlotList, Window};

use crate::incremental::{AlgoSpec, JobScan};
use crate::scan::{forward_scan, LengthRule};
use crate::selector::SlotSelector;
use crate::stats::ScanStats;

/// The Algorithm based on Local Price.
///
/// # Examples
///
/// ```
/// use ecosched_core::{
///     NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span, TimeDelta, TimePoint,
/// };
/// use ecosched_select::{Alp, ScanStats, SlotSelector};
///
/// let slots = (0..3)
///     .map(|i| {
///         Slot::new(
///             SlotId::new(i),
///             NodeId::new(i as u32),
///             Perf::UNIT,
///             Price::from_credits(2),
///             Span::new(TimePoint::new(10 * i as i64), TimePoint::new(500)).unwrap(),
///         )
///     })
///     .collect::<Result<Vec<_>, _>>()?;
/// let list = SlotList::from_slots(slots)?;
/// let request = ResourceRequest::new(2, TimeDelta::new(80), Perf::UNIT, Price::from_credits(3))?;
///
/// let mut stats = ScanStats::new();
/// let window = Alp::new().find_window(&list, &request, &mut stats).expect("window exists");
/// assert_eq!(window.slot_count(), 2);
/// assert_eq!(window.start(), TimePoint::new(10));
/// # Ok::<(), ecosched_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Alp {
    rule: LengthRule,
}

impl Alp {
    /// Creates ALP with the corrected length rule (see DESIGN.md R1).
    #[must_use]
    pub fn new() -> Self {
        Alp {
            rule: LengthRule::Corrected,
        }
    }

    /// Creates ALP with an explicit length rule (for the R1 ablation).
    #[must_use]
    pub fn with_length_rule(rule: LengthRule) -> Self {
        Alp { rule }
    }

    /// The configured length rule.
    #[must_use]
    pub fn length_rule(&self) -> LengthRule {
        self.rule
    }

    /// The restart-from-scratch reference implementation of
    /// [`SlotSelector::find_window`].
    ///
    /// Kept public as the equivalence oracle for the incremental scan (and
    /// as the "before" side of the search benchmarks). Returns exactly the
    /// same window and counters as `find_window`.
    pub fn find_window_naive(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window> {
        let n = request.nodes();
        forward_scan(
            list,
            request,
            self.rule,
            stats,
            |slot| request.price_ok(slot), // condition 2°c
            |pool, stats| {
                stats.acceptance_tests += 1;
                // The first N admitted members, in list order — a same-start
                // group can push the pool past N in one step.
                Some(pool.members()[..n].to_vec())
            },
        )
    }
}

impl SlotSelector for Alp {
    fn name(&self) -> &'static str {
        "ALP"
    }

    fn find_window(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window> {
        JobScan::new(&AlgoSpec::alp(self.rule), request).run(list, stats)
    }

    fn as_algo(&self) -> Option<AlgoSpec> {
        Some(AlgoSpec::alp(self.rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, Span, TimeDelta, TimePoint};

    fn slot(id: u64, node: u32, perf: f64, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::from_f64(perf),
            Price::from_credits(price),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    fn req(n: usize, t: i64, p: f64, c: i64) -> ResourceRequest {
        ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_f64(p),
            Price::from_credits(c),
        )
        .unwrap()
    }

    #[test]
    fn skips_overpriced_slots() {
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 10, 0, 500), // too expensive
            slot(1, 1, 1.0, 2, 20, 500),
            slot(2, 2, 1.0, 2, 40, 500),
        ])
        .unwrap();
        let mut stats = ScanStats::new();
        let w = Alp::new()
            .find_window(&list, &req(2, 50, 1.0, 3), &mut stats)
            .unwrap();
        assert!(!w.uses_node(NodeId::new(0)));
        assert_eq!(w.start(), TimePoint::new(40));
        assert_eq!(stats.slots_admitted, 2);
    }

    #[test]
    fn fails_when_not_enough_concurrent_slots() {
        // Two suitable slots, but they never coexist: the first expires
        // before the second starts.
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 1, 0, 60),
            slot(1, 1, 1.0, 1, 100, 200),
        ])
        .unwrap();
        let mut stats = ScanStats::new();
        assert!(Alp::new()
            .find_window(&list, &req(2, 50, 1.0, 5), &mut stats)
            .is_none());
        assert_eq!(stats.slots_examined, 2);
        assert_eq!(stats.slots_expired, 1);
    }

    #[test]
    fn window_has_rough_right_edge_on_heterogeneous_nodes() {
        let list =
            SlotList::from_slots(vec![slot(0, 0, 1.0, 1, 0, 500), slot(1, 1, 2.0, 1, 0, 500)])
                .unwrap();
        let mut stats = ScanStats::new();
        let w = Alp::new()
            .find_window(&list, &req(2, 100, 1.0, 5), &mut stats)
            .unwrap();
        // Slowest node (rate 1) defines the window length.
        assert_eq!(w.length(), TimeDelta::new(100));
        let runtimes: Vec<i64> = w.slots().iter().map(|ws| ws.runtime().ticks()).collect();
        assert!(runtimes.contains(&100));
        assert!(runtimes.contains(&50));
    }

    #[test]
    fn earliest_window_is_selected() {
        // A full pool forms at t=30 (slots 0,1); a cheaper one would form
        // at t=200, but ALP takes the earliest.
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 3, 0, 500),
            slot(1, 1, 1.0, 3, 30, 500),
            slot(2, 2, 1.0, 1, 200, 500),
            slot(3, 3, 1.0, 1, 200, 500),
        ])
        .unwrap();
        let mut stats = ScanStats::new();
        let w = Alp::new()
            .find_window(&list, &req(2, 50, 1.0, 5), &mut stats)
            .unwrap();
        assert_eq!(w.start(), TimePoint::new(30));
        assert_eq!(stats.slots_examined, 2); // stopped early
    }

    #[test]
    fn examines_each_slot_at_most_once() {
        let slots: Vec<Slot> = (0..100)
            .map(|i| slot(i, i as u32, 1.0, 1, i as i64, i as i64 + 20))
            .collect();
        let list = SlotList::from_slots(slots).unwrap();
        let mut stats = ScanStats::new();
        // Request impossible to satisfy: wants 50 concurrent 10-tick tasks.
        assert!(Alp::new()
            .find_window(&list, &req(50, 10, 1.0, 5), &mut stats)
            .is_none());
        assert_eq!(stats.slots_examined, 100);
    }

    #[test]
    fn name_is_alp() {
        assert_eq!(Alp::new().name(), "ALP");
        assert_eq!(
            Alp::with_length_rule(LengthRule::PaperLiteral).length_rule(),
            LengthRule::PaperLiteral
        );
    }
}
