//! Deterministic thread-parallel alternatives-search drivers.
//!
//! Both drivers here produce **byte-identical committed alternatives,
//! remaining lists, pass counts, and commit counts** to their sequential
//! references ([`crate::incremental::find_alternatives_incremental`] and
//! the retained coscheduled rescan driver) at *any* thread count,
//! including 1. Only the scan work counters differ — they measure work
//! actually done, and speculation changes how much work is done, not what
//! is committed. The determinism argument (DESIGN.md §13) rests on three
//! rules:
//!
//! 1. **Fixed merge order.** Worker results are merged in batch index
//!    order, never in completion order, so ties resolve exactly as the
//!    sequential drivers resolve them.
//! 2. **No RNG in workers.** A [`JobScan`] is a pure fold over the slot
//!    list; workers share the immutable list and own disjoint scans.
//! 3. **Serialized commits.** Winner subtraction — the only mutation of
//!    shared state — happens on the driver thread, one window at a time,
//!    appending to a totally ordered report log that lagging scans replay
//!    in order.
//!
//! # The monotone-window-start theorem
//!
//! Speculation is sound because of a strengthening of the resume-
//! soundness argument in [`crate::incremental`]: let a scan's next result
//! on list `L` be a window accepted at anchor `a`, and let `L'` be `L`
//! after any sequence of window subtractions. Then the scan's next result
//! on `L'` (from the same checkpoint) is accepted at an anchor `≥ a`, and
//! its window start is `≥` the old window start. *Proof sketch:* every
//! anchor `< a` failed its acceptance test on `L`; subtraction only
//! removes availability (each remnant maps cost-preservingly to its
//! parent, admission and liveness are preserved downward), so the
//! candidate pool on `L'` injects into the pool on `L` at every anchor
//! and the failed tests keep failing. Hence a stale window start computed
//! on an older list is a **lower bound** on the scan's true next window
//! start — which is what lets the coscheduled driver keep stale keys in
//! its priority queue and still pop an exact global minimum.
//!
//! # Exactness of surviving speculation
//!
//! [`ScanHit::survives`] gives the complementary guarantee: if no later
//! commit removed a touched slot (a chosen member or an admitted member
//! of the group at the acceptance anchor) and no later commit minted a
//! remnant starting before the window start, the speculative window *is*
//! the scan's next result on the current list — earlier acceptance is
//! ruled out by the injection argument above, and the chosen set at the
//! anchor is unchanged because remnants share their parent's cost and
//! carry strictly larger ids, so the `(cost, id)` / `(start, id)`
//! tie-breaks never let one displace a chosen member. When the check
//! fails the drivers fall back to replaying the report log and re-running
//! the scan, which is exactly the sequential step.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ecosched_core::{
    Alternative, Batch, BatchAlternatives, CoreError, SlotList, SubtractionReport, TimePoint,
};

use crate::incremental::{AlgoSpec, JobScan, ScanHit};
use crate::search::SearchOutcome;
use crate::stats::{ScanStats, SearchStats};

/// A per-job scan plus a cursor into the shared subtraction-report log.
///
/// Commits append to one totally ordered log; each scan replays the
/// suffix it has not seen yet (in log order) right before it runs. Lazy
/// replay is equivalent to the sequential driver's eager broadcast
/// because [`JobScan::apply_report`] only matters before the next
/// [`JobScan::run_detailed`], and the checkpoint invariant makes the
/// resulting state a pure function of (list, anchor) regardless of the
/// run/apply interleaving.
struct SyncedScan {
    scan: JobScan,
    synced: usize,
}

impl SyncedScan {
    fn new(spec: &AlgoSpec, request: &ecosched_core::ResourceRequest) -> Self {
        SyncedScan {
            scan: JobScan::new(spec, request),
            synced: 0,
        }
    }

    /// Replays every report the scan has not yet seen, in commit order.
    fn sync(&mut self, reports: &[SubtractionReport]) {
        while self.synced < reports.len() {
            self.scan.apply_report(&reports[self.synced]);
            self.synced += 1;
        }
    }
}

/// Syncs and runs every scan against `list`, fanning the work over at most
/// `threads` scoped workers in contiguous chunks of the batch.
///
/// Hits come back in batch index order regardless of thread count, and
/// the per-worker stat counters are merged in chunk (= batch) order.
/// Every [`ScanStats`] field is either additive or a maximum, so the
/// merged totals are thread-count invariant too.
fn evaluate_scans(
    scans: &mut [SyncedScan],
    list: &SlotList,
    reports: &[SubtractionReport],
    threads: usize,
    stats: &mut ScanStats,
) -> Vec<Option<ScanHit>> {
    let workers = threads.min(scans.len()).max(1);
    if workers <= 1 {
        return scans
            .iter_mut()
            .map(|s| {
                s.sync(reports);
                s.scan.run_detailed(list, stats)
            })
            .collect();
    }
    let chunk = scans.len().div_ceil(workers);
    let joined = crossbeam::scope(|scope| {
        let handles: Vec<_> = scans
            .chunks_mut(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    let mut local = ScanStats::new();
                    let hits: Vec<Option<ScanHit>> = part
                        .iter_mut()
                        .map(|s| {
                            s.sync(reports);
                            s.scan.run_detailed(list, &mut local)
                        })
                        .collect();
                    (hits, local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(result) => result,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect::<Vec<_>>()
    });
    let parts = match joined {
        Ok(parts) => parts,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    let mut hits = Vec::with_capacity(scans.len());
    for (part_hits, local) in parts {
        hits.extend(part_hits);
        stats.merge(&local);
    }
    hits
}

/// The speculative-parallel sequential-order (priority-order) search.
/// Byte-identical committed results to
/// [`crate::incremental::find_alternatives_incremental`] at any
/// `threads`.
///
/// Each pass evaluates every live scan concurrently against the
/// pass-start list, then walks the batch in index order: a job whose
/// speculative window [`ScanHit::survives`] every commit made earlier in
/// the pass commits it directly; otherwise the driver replays the report
/// log into the scan and re-runs it — the exact sequential step (the
/// monotone-window-start theorem guarantees the re-run cannot find an
/// earlier window than the speculative one, so resuming from the
/// speculatively advanced checkpoint skips nothing).
pub(crate) fn find_alternatives_parallel(
    spec: &AlgoSpec,
    list: &SlotList,
    batch: &Batch,
    threads: usize,
) -> Result<SearchOutcome, CoreError> {
    let mut remaining = list.clone();
    let mut alternatives = BatchAlternatives::for_jobs(batch.iter().map(|j| j.id()));
    let mut stats = SearchStats::new();
    let mut reports: Vec<SubtractionReport> = Vec::new();
    let mut scans: Vec<SyncedScan> = batch
        .iter()
        .map(|job| SyncedScan::new(spec, job.request()))
        .collect();

    loop {
        let mut found_any = false;
        let pass_mark = reports.len();
        let mut hits = evaluate_scans(&mut scans, &remaining, &reports, threads, &mut stats.scan);
        for (index, job) in batch.iter().enumerate() {
            let Some(hit) = hits[index].take() else {
                continue;
            };
            let window = if reports[pass_mark..].iter().all(|r| hit.survives(r)) {
                Some(hit.window)
            } else {
                scans[index].sync(&reports);
                scans[index]
                    .scan
                    .run_detailed(&remaining, &mut stats.scan)
                    .map(|h| h.window)
            };
            let Some(window) = window else {
                continue;
            };
            let report = remaining.subtract_window_report(&window)?;
            reports.push(report);
            alternatives.per_job_mut()[index].push(Alternative::new(job.id(), window));
            stats.windows_committed += 1;
            found_any = true;
        }
        stats.passes += 1;
        if !found_any {
            break;
        }
    }

    Ok(SearchOutcome {
        alternatives,
        stats,
        remaining,
    })
}

/// The lazy-revalidated priority-queue coscheduled (earliest-window-first)
/// search. Byte-identical committed results to the retained rescan driver
/// ([`crate::find_alternatives_coscheduled_rescan`]) at any `threads`.
///
/// Where the rescan driver re-evaluates every pending job after every
/// commit (`O(batch²)` scan resumes per pass), this driver seeds a binary
/// heap keyed by `(window start, batch index)` once per pass and then
/// *pops* candidates:
///
/// * a popped entry stamped with the current report-log length carries an
///   exact key; since every other key in the heap is a lower bound on its
///   scan's true next window start (monotone-window-start theorem), the
///   popped entry is the global minimum and commits immediately;
/// * a stale entry is revalidated lazily — if its hit
///   [`ScanHit::survives`] every commit since it was stamped, its key is
///   still exact and it is re-stamped and re-pushed without touching the
///   scan; otherwise the scan replays the report log, re-runs from its
///   checkpoint, and re-enters the heap with its fresh key (or drops out
///   dead).
///
/// Per pass this is `O((batch + commits·invalidated) · log batch)` heap
/// work instead of `O(batch · commits)` scan resumes — `O(batch log
/// batch)` when commits interfere with few other jobs, degrading to the
/// rescan cost only when every commit invalidates every candidate.
pub(crate) fn find_alternatives_coscheduled_queue(
    spec: &AlgoSpec,
    list: &SlotList,
    batch: &Batch,
    threads: usize,
) -> Result<SearchOutcome, CoreError> {
    let mut remaining = list.clone();
    let mut alternatives = BatchAlternatives::for_jobs(batch.iter().map(|j| j.id()));
    let mut stats = SearchStats::new();
    let mut reports: Vec<SubtractionReport> = Vec::new();
    let mut scans: Vec<SyncedScan> = batch
        .iter()
        .map(|job| SyncedScan::new(spec, job.request()))
        .collect();

    loop {
        let mut committed_this_pass = 0u64;
        // Seed: evaluate every live scan once against the pass-start list
        // (in parallel), keeping the latest hit per job in `stored`.
        let mut stored = evaluate_scans(&mut scans, &remaining, &reports, threads, &mut stats.scan);
        let mut heap: BinaryHeap<Reverse<(TimePoint, usize, usize)>> = BinaryHeap::new();
        for (index, hit) in stored.iter().enumerate() {
            if let Some(hit) = hit {
                heap.push(Reverse((hit.window.start(), index, reports.len())));
            }
        }

        while let Some(Reverse((start, index, version))) = heap.pop() {
            if version == reports.len() {
                // Exact key and global minimum: commit. The winner sits
                // out the rest of the pass (no re-push), matching the
                // rescan driver's `pending.retain`.
                let Some(hit) = stored[index].take() else {
                    continue; // Unreachable: entries always have a stored hit.
                };
                debug_assert_eq!(hit.window.start(), start);
                let report = remaining.subtract_window_report(&hit.window)?;
                alternatives.per_job_mut()[index]
                    .push(Alternative::new(batch.as_slice()[index].id(), hit.window));
                reports.push(report);
                stats.windows_committed += 1;
                committed_this_pass += 1;
            } else {
                let still_exact = match &stored[index] {
                    Some(hit) => reports[version..].iter().all(|r| hit.survives(r)),
                    None => false,
                };
                if still_exact {
                    heap.push(Reverse((start, index, reports.len())));
                    continue;
                }
                scans[index].sync(&reports);
                stored[index] = scans[index].scan.run_detailed(&remaining, &mut stats.scan);
                if let Some(hit) = &stored[index] {
                    heap.push(Reverse((hit.window.start(), index, reports.len())));
                }
            }
        }

        stats.passes += 1;
        if committed_this_pass == 0 {
            break;
        }
    }

    Ok(SearchOutcome {
        alternatives,
        stats,
        remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{
        find_alternatives_coscheduled_incremental, find_alternatives_incremental,
    };
    use crate::scan::LengthRule;
    use ecosched_core::{
        Job, JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, Span, TimeDelta,
    };

    fn slot(id: u64, node: u32, perf: f64, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::from_f64(perf),
            Price::from_credits(price),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    fn request(n: usize, t: i64, c: i64) -> ResourceRequest {
        ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_f64(1.0),
            Price::from_credits(c),
        )
        .unwrap()
    }

    /// A deterministic instance dense enough for multi-pass, multi-commit
    /// searches with remnant interleaving.
    fn dense_instance() -> (SlotList, Batch) {
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let nodes = 24u64;
        let mut cursors = vec![0i64; nodes as usize];
        let mut slots = Vec::new();
        for id in 0..600u64 {
            let node = next() % nodes;
            let gap = (next() % 30) as i64;
            let len = 50 + (next() % 220) as i64;
            let start = cursors[node as usize] + gap;
            cursors[node as usize] = start + len;
            slots.push(slot(
                id,
                node as u32,
                1.0 + (next() % 20) as f64 / 10.0,
                1 + (next() % 9) as i64,
                start,
                start + len,
            ));
        }
        let list = SlotList::from_slots(slots).unwrap();
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                Job::new(
                    JobId::new(i),
                    request(
                        1 + (next() % 4) as usize,
                        30 + (next() % 80) as i64,
                        3 + (next() % 6) as i64,
                    ),
                )
            })
            .collect();
        (list, Batch::from_jobs(jobs).unwrap())
    }

    fn assert_same_commits(a: &SearchOutcome, b: &SearchOutcome, label: &str) {
        assert_eq!(a.alternatives, b.alternatives, "{label}: alternatives");
        assert_eq!(a.remaining, b.remaining, "{label}: remaining list");
        assert_eq!(a.stats.passes, b.stats.passes, "{label}: passes");
        assert_eq!(
            a.stats.windows_committed, b.stats.windows_committed,
            "{label}: commits"
        );
    }

    #[test]
    fn parallel_sequential_matches_incremental_at_every_thread_count() {
        let (list, batch) = dense_instance();
        for spec in [
            AlgoSpec::alp(LengthRule::Corrected),
            AlgoSpec::amp(LengthRule::Corrected, 1.0),
        ] {
            let reference = find_alternatives_incremental(&spec, &list, &batch).unwrap();
            assert!(reference.alternatives.total_found() > batch.len());
            for threads in [1, 2, 3, 7] {
                let parallel = find_alternatives_parallel(&spec, &list, &batch, threads).unwrap();
                assert_same_commits(&parallel, &reference, &format!("threads={threads}"));
            }
        }
    }

    #[test]
    fn queue_driver_matches_rescan_at_every_thread_count() {
        let (list, batch) = dense_instance();
        for spec in [
            AlgoSpec::alp(LengthRule::Corrected),
            AlgoSpec::amp(LengthRule::Corrected, 1.0),
        ] {
            let reference =
                find_alternatives_coscheduled_incremental(&spec, &list, &batch).unwrap();
            assert!(reference.alternatives.total_found() > batch.len());
            for threads in [1, 2, 3, 7] {
                let queued =
                    find_alternatives_coscheduled_queue(&spec, &list, &batch, threads).unwrap();
                assert_same_commits(&queued, &reference, &format!("threads={threads}"));
            }
        }
    }

    #[test]
    fn empty_batch_is_one_empty_pass() {
        let (list, _) = dense_instance();
        let spec = AlgoSpec::amp(LengthRule::Corrected, 1.0);
        let outcome = find_alternatives_coscheduled_queue(&spec, &list, &Batch::new(), 4).unwrap();
        assert_eq!(outcome.stats.passes, 1);
        assert_eq!(outcome.stats.windows_committed, 0);
        let outcome = find_alternatives_parallel(&spec, &list, &Batch::new(), 4).unwrap();
        assert_eq!(outcome.stats.passes, 1);
    }
}
