//! The slot-selector abstraction shared by ALP, AMP, and test doubles.

use ecosched_core::{ResourceRequest, SlotList, Window};

use crate::incremental::AlgoSpec;
use crate::stats::ScanStats;

/// A single-job window search strategy.
///
/// Implementations must be *non-destructive* — they read the slot list and
/// return a window whose cuts the caller may then subtract — and
/// *deterministic* for a given list and request.
///
/// The trait is object-safe so experiment harnesses can switch algorithms
/// at runtime (`&dyn SlotSelector`).
pub trait SlotSelector {
    /// A short display name ("ALP", "AMP", …).
    fn name(&self) -> &'static str;

    /// Searches `list` for the earliest window satisfying `request`,
    /// accumulating work counters into `stats`.
    ///
    /// Returns `None` when no suitable window exists on the current list —
    /// the paper then postpones the job to the next scheduling iteration.
    fn find_window(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window>;

    /// Describes this selector as one of the built-in algorithms, if it is
    /// one.
    ///
    /// The alternatives searches use this to switch to the checkpointed
    /// incremental drivers, which produce byte-identical results to the
    /// restart-per-window path but amortize the scan cost across windows.
    /// Custom selectors keep the default `None` and run naively — the
    /// checkpoint argument only holds for ALP/AMP-shaped acceptance tests.
    fn as_algo(&self) -> Option<AlgoSpec> {
        None
    }
}

impl<T: SlotSelector + ?Sized> SlotSelector for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn find_window(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window> {
        (**self).find_window(list, request, stats)
    }

    fn as_algo(&self) -> Option<AlgoSpec> {
        (**self).as_algo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alp::Alp;

    #[test]
    fn trait_is_object_safe_and_ref_forwards() {
        let alp = Alp::new();
        let dyn_ref: &dyn SlotSelector = &alp;
        assert_eq!(dyn_ref.name(), "ALP");
        // &T forwarding
        fn takes_selector(s: impl SlotSelector) -> &'static str {
            s.name()
        }
        assert_eq!(takes_selector(alp), "ALP");
    }
}
