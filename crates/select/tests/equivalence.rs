//! Equivalence harness: the checkpointed incremental searches must return
//! **byte-identical** results to the restart-per-window reference drivers,
//! for ALP and AMP, in both search modes.
//!
//! The naive side runs through wrapper selectors whose `find_window` is
//! the preserved `find_window_naive` and whose `as_algo` stays `None`, so
//! `find_alternatives` / `find_alternatives_coscheduled` genuinely take
//! the restart path end to end.

use ecosched_core::{
    Batch, Job, JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span,
    TimeDelta, TimePoint, Window,
};
use ecosched_select::{
    find_alternatives, find_alternatives_coscheduled, find_alternatives_coscheduled_naive,
    find_alternatives_naive, Alp, Amp, ScanStats, SlotSelector,
};
use proptest::prelude::*;

/// ALP through the reference scan only (`as_algo` stays the default
/// `None`, so the search drivers cannot switch to the incremental path).
struct NaiveAlp(Alp);

impl SlotSelector for NaiveAlp {
    fn name(&self) -> &'static str {
        "ALP-naive"
    }

    fn find_window(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window> {
        self.0.find_window_naive(list, request, stats)
    }
}

/// AMP through the reference scan only.
struct NaiveAmp(Amp);

impl SlotSelector for NaiveAmp {
    fn name(&self) -> &'static str {
        "AMP-naive"
    }

    fn find_window(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window> {
        self.0.find_window_naive(list, request, stats)
    }
}

/// Strategy: a slot list with *several* consecutive vacancies per node —
/// subtraction remnants then interleave with pre-existing same-node slots,
/// which is exactly what the checkpoint bookkeeping has to survive.
fn multi_slot_list_strategy() -> impl Strategy<Value = SlotList> {
    prop::collection::vec(
        (
            // Per node: up to 3 (gap, length) segments laid out head to
            // tail, plus performance and price shared by the node.
            prop::collection::vec((0i64..80, 40i64..300), 1..4),
            1000i64..3000, // perf milli
            1i64..12,      // price credits
        ),
        1..14,
    )
    .prop_map(|nodes| {
        let mut slots = Vec::new();
        let mut id = 0u64;
        for (node, (segments, perf, price)) in nodes.into_iter().enumerate() {
            let mut cursor = 0i64;
            for (gap, len) in segments {
                let start = cursor + gap;
                let end = start + len;
                cursor = end;
                slots.push(
                    Slot::new(
                        SlotId::new(id),
                        NodeId::new(node as u32),
                        Perf::from_milli(perf),
                        Price::from_credits(price),
                        Span::new(TimePoint::new(start), TimePoint::new(end)).unwrap(),
                    )
                    .unwrap(),
                );
                id += 1;
            }
        }
        SlotList::from_slots(slots).unwrap()
    })
}

fn request_strategy() -> impl Strategy<Value = ResourceRequest> {
    (1usize..5, 20i64..150, 1000i64..2000, 2i64..10).prop_map(|(n, t, p, c)| {
        ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_milli(p),
            Price::from_credits(c),
        )
        .unwrap()
    })
}

fn batch_strategy() -> impl Strategy<Value = Batch> {
    prop::collection::vec(request_strategy(), 1..5).prop_map(|requests| {
        let jobs: Vec<Job> = requests
            .into_iter()
            .enumerate()
            .map(|(i, r)| Job::new(JobId::new(i as u32), r))
            .collect();
        Batch::from_jobs(jobs).unwrap()
    })
}

/// Asserts both outcomes carry the same alternatives and leave the same
/// list behind. Scan counters intentionally differ (that's the point of
/// the optimization); committed work must not.
#[track_caller]
fn assert_outcomes_equal(
    label: &str,
    incremental: &ecosched_select::SearchOutcome,
    naive: &ecosched_select::SearchOutcome,
) {
    assert_eq!(
        incremental.alternatives, naive.alternatives,
        "{label}: alternatives diverge"
    );
    assert_eq!(
        incremental.remaining, naive.remaining,
        "{label}: remaining slot lists diverge"
    );
    assert_eq!(
        incremental.stats.windows_committed, naive.stats.windows_committed,
        "{label}: committed counts diverge"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn single_window_search_matches_reference(
        list in multi_slot_list_strategy(),
        request in request_strategy(),
    ) {
        // The JobScan-backed find_window must agree with the forward_scan
        // reference on the window *and* every work counter (a fresh scan
        // never uses a checkpoint, so checkpoint_hits is 0 on both sides).
        let mut inc_stats = ScanStats::new();
        let mut ref_stats = ScanStats::new();
        let alp = Alp::new();
        prop_assert_eq!(
            alp.find_window(&list, &request, &mut inc_stats),
            alp.find_window_naive(&list, &request, &mut ref_stats),
            "ALP windows diverge"
        );
        prop_assert_eq!(inc_stats, ref_stats, "ALP counters diverge");

        let mut inc_stats = ScanStats::new();
        let mut ref_stats = ScanStats::new();
        let amp = Amp::new();
        prop_assert_eq!(
            amp.find_window(&list, &request, &mut inc_stats),
            amp.find_window_naive(&list, &request, &mut ref_stats),
            "AMP windows diverge"
        );
        prop_assert_eq!(inc_stats, ref_stats, "AMP counters diverge");
    }

    #[test]
    fn sequential_search_matches_reference(
        list in multi_slot_list_strategy(),
        batch in batch_strategy(),
    ) {
        let inc = find_alternatives(Alp::new(), &list, &batch).unwrap();
        let naive = find_alternatives_naive(NaiveAlp(Alp::new()), &list, &batch).unwrap();
        assert_outcomes_equal("ALP sequential", &inc, &naive);

        let inc = find_alternatives(Amp::new(), &list, &batch).unwrap();
        let naive = find_alternatives_naive(NaiveAmp(Amp::new()), &list, &batch).unwrap();
        assert_outcomes_equal("AMP sequential", &inc, &naive);

        let inc = find_alternatives(Amp::with_rho(0.7), &list, &batch).unwrap();
        let naive = find_alternatives_naive(NaiveAmp(Amp::with_rho(0.7)), &list, &batch).unwrap();
        assert_outcomes_equal("AMP ρ=0.7 sequential", &inc, &naive);
    }

    #[test]
    fn coscheduled_search_matches_reference(
        list in multi_slot_list_strategy(),
        batch in batch_strategy(),
    ) {
        let inc = find_alternatives_coscheduled(Alp::new(), &list, &batch).unwrap();
        let naive =
            find_alternatives_coscheduled_naive(NaiveAlp(Alp::new()), &list, &batch).unwrap();
        assert_outcomes_equal("ALP coscheduled", &inc, &naive);

        let inc = find_alternatives_coscheduled(Amp::new(), &list, &batch).unwrap();
        let naive =
            find_alternatives_coscheduled_naive(NaiveAmp(Amp::new()), &list, &batch).unwrap();
        assert_outcomes_equal("AMP coscheduled", &inc, &naive);
    }

    #[test]
    fn incremental_search_never_examines_more_slots(
        list in multi_slot_list_strategy(),
        batch in batch_strategy(),
    ) {
        // Not just equal results — the checkpointing must actually save
        // work: every resumed scan skips the prefix the naive scan redoes.
        let inc = find_alternatives(Amp::new(), &list, &batch).unwrap();
        let naive = find_alternatives_naive(NaiveAmp(Amp::new()), &list, &batch).unwrap();
        prop_assert!(inc.stats.scan.slots_examined <= naive.stats.scan.slots_examined);
    }
}

/// A deterministic 4,000-slot instance — large enough that any divergence
/// in remnant re-admission or checkpoint placement has thousands of
/// chances to surface, and the size the issue's acceptance bar names.
#[test]
fn large_deterministic_instance_matches_reference() {
    // SplitMix64: tiny, seedable, and good enough to decorrelate fields.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };

    const M: usize = 4_000;
    const NODES: u64 = 200;
    let mut slots = Vec::with_capacity(M);
    let mut cursors = vec![0i64; NODES as usize];
    for id in 0..M as u64 {
        let node = next() % NODES;
        let gap = (next() % 40) as i64;
        let len = 40 + (next() % 260) as i64;
        let start = cursors[node as usize] + gap;
        let end = start + len;
        cursors[node as usize] = end;
        slots.push(
            Slot::new(
                SlotId::new(id),
                NodeId::new(node as u32),
                Perf::from_milli(1000 + (next() % 2000) as i64),
                Price::from_credits(1 + (next() % 11) as i64),
                Span::new(TimePoint::new(start), TimePoint::new(end)).unwrap(),
            )
            .unwrap(),
        );
    }
    let list = SlotList::from_slots(slots).unwrap();

    let jobs: Vec<Job> = (0..6)
        .map(|i| {
            let n = 2 + (next() % 3) as usize;
            let t = 30 + (next() % 90) as i64;
            let c = 3 + (next() % 6) as i64;
            Job::new(
                JobId::new(i),
                ResourceRequest::new(
                    n,
                    TimeDelta::new(t),
                    Perf::from_milli(1000),
                    Price::from_credits(c),
                )
                .unwrap(),
            )
        })
        .collect();
    let batch = Batch::from_jobs(jobs).unwrap();

    let inc = find_alternatives(Amp::new(), &list, &batch).unwrap();
    let naive = find_alternatives_naive(NaiveAmp(Amp::new()), &list, &batch).unwrap();
    assert_outcomes_equal("AMP sequential 4k", &inc, &naive);
    assert!(
        inc.alternatives.total_found() > batch.len(),
        "instance too sparse to exercise checkpoints: {} alternatives",
        inc.alternatives.total_found()
    );
    assert!(
        inc.stats.scan.checkpoint_hits > 0,
        "incremental driver never resumed from a checkpoint"
    );
    assert!(inc.stats.scan.slots_examined < naive.stats.scan.slots_examined);

    let inc = find_alternatives_coscheduled(Amp::new(), &list, &batch).unwrap();
    let naive = find_alternatives_coscheduled_naive(NaiveAmp(Amp::new()), &list, &batch).unwrap();
    assert_outcomes_equal("AMP coscheduled 4k", &inc, &naive);

    let inc = find_alternatives(Alp::new(), &list, &batch).unwrap();
    let naive = find_alternatives_naive(NaiveAlp(Alp::new()), &list, &batch).unwrap();
    assert_outcomes_equal("ALP sequential 4k", &inc, &naive);
}
