//! Property-based tests for the ALP/AMP selection algorithms.

use ecosched_core::{
    Batch, Job, JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span,
    TimeDelta, TimePoint,
};
use ecosched_select::{find_alternatives, Alp, Amp, ScanStats, SlotSelector};
use proptest::prelude::*;

/// Strategy: a random valid slot list with one slot per node.
fn slot_list_strategy() -> impl Strategy<Value = SlotList> {
    prop::collection::vec(
        (
            0i64..500,     // start
            30i64..400,    // length
            1000i64..3000, // perf milli (1.0..3.0)
            1i64..12,      // price credits
        ),
        1..40,
    )
    .prop_map(|entries| {
        let slots: Vec<Slot> = entries
            .into_iter()
            .enumerate()
            .map(|(i, (start, len, perf, price))| {
                Slot::new(
                    SlotId::new(i as u64),
                    NodeId::new(i as u32),
                    Perf::from_milli(perf),
                    Price::from_credits(price),
                    Span::new(TimePoint::new(start), TimePoint::new(start + len)).unwrap(),
                )
                .unwrap()
            })
            .collect();
        SlotList::from_slots(slots).unwrap()
    })
}

/// Strategy: a random valid resource request.
fn request_strategy() -> impl Strategy<Value = ResourceRequest> {
    (1usize..5, 20i64..150, 1000i64..2000, 2i64..10).prop_map(|(n, t, p, c)| {
        ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_milli(p),
            Price::from_credits(c),
        )
        .unwrap()
    })
}

/// Checks every window guarantee the algorithms promise.
fn assert_window_satisfies(
    window: &ecosched_core::Window,
    request: &ResourceRequest,
    list: &SlotList,
) {
    assert_eq!(
        window.slot_count(),
        request.nodes(),
        "window must have N slots"
    );
    for ws in window.slots() {
        assert!(
            ws.perf().satisfies(request.min_perf()),
            "member below min performance"
        );
        let source = list.get(ws.source()).expect("member must cite a real slot");
        assert_eq!(source.node(), ws.node());
        assert!(
            source.span().contains_span(window.used_span(ws)),
            "used span must fit inside the source slot"
        );
        // Runtime matches the corrected (etalon-relative) rule.
        assert_eq!(
            ws.runtime(),
            ws.perf().runtime_for(request.wall_time(), Perf::UNIT)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alp_windows_satisfy_request(list in slot_list_strategy(), request in request_strategy()) {
        let mut stats = ScanStats::new();
        if let Some(window) = Alp::new().find_window(&list, &request, &mut stats) {
            assert_window_satisfies(&window, &request, &list);
            // ALP: every member individually within the price cap.
            for ws in window.slots() {
                prop_assert!(ws.price() <= request.price_cap());
            }
        }
    }

    #[test]
    fn amp_windows_fit_budget(list in slot_list_strategy(), request in request_strategy()) {
        let mut stats = ScanStats::new();
        if let Some(window) = Amp::new().find_window(&list, &request, &mut stats) {
            assert_window_satisfies(&window, &request, &list);
            prop_assert!(window.total_cost() <= request.budget());
        }
    }

    #[test]
    fn scans_are_linear_in_list_length(list in slot_list_strategy(), request in request_strategy()) {
        let m = list.len() as u64;
        for selector in [&Alp::new() as &dyn SlotSelector, &Amp::new()] {
            let mut stats = ScanStats::new();
            let _ = selector.find_window(&list, &request, &mut stats);
            prop_assert!(
                stats.slots_examined <= m,
                "{} examined {} slots of {}",
                selector.name(),
                stats.slots_examined,
                m
            );
        }
    }

    #[test]
    fn whenever_alp_succeeds_amp_succeeds(list in slot_list_strategy(), request in request_strategy()) {
        // Sec. 6 of the paper: any ALP window is AMP-feasible, so AMP can
        // never fail where ALP succeeds.
        let mut stats = ScanStats::new();
        let alp = Alp::new().find_window(&list, &request, &mut stats);
        let amp = Amp::new().find_window(&list, &request, &mut stats);
        if let Some(alp_window) = alp {
            prop_assert!(amp.is_some(), "ALP found a window but AMP did not");
            let amp_window = amp.unwrap();
            // AMP's window starts no later: it scans the same prefix with a
            // weaker admission filter.
            prop_assert!(amp_window.start() <= alp_window.start());
        }
    }

    #[test]
    fn amp_rho_monotone(list in slot_list_strategy(), request in request_strategy()) {
        // A smaller budget can only delay or lose windows.
        let mut stats = ScanStats::new();
        let full = Amp::new().find_window(&list, &request, &mut stats);
        let tight = Amp::with_rho(0.7).find_window(&list, &request, &mut stats);
        if let Some(t) = &tight {
            prop_assert!(full.is_some());
            prop_assert!(full.unwrap().start() <= t.start());
            prop_assert!(t.total_cost() <= request.budget_scaled(0.7));
        }
    }

    #[test]
    fn alternatives_disjoint_and_within_vacancy(
        list in slot_list_strategy(),
        requests in prop::collection::vec(request_strategy(), 1..4),
    ) {
        let jobs: Vec<Job> = requests
            .into_iter()
            .enumerate()
            .map(|(i, r)| Job::new(JobId::new(i as u32), r))
            .collect();
        let batch = Batch::from_jobs(jobs).unwrap();

        for selector in [&Alp::new() as &dyn SlotSelector, &Amp::new()] {
            let outcome = find_alternatives(selector, &list, &batch).unwrap();
            let windows: Vec<_> = outcome
                .alternatives
                .per_job()
                .iter()
                .flat_map(|ja| ja.iter().map(|a| a.window().clone()))
                .collect();
            for i in 0..windows.len() {
                for j in (i + 1)..windows.len() {
                    prop_assert!(
                        !windows[i].overlaps(&windows[j]),
                        "{} produced overlapping alternatives",
                        selector.name()
                    );
                }
            }
            // Total vacancy is conserved: remaining + used = original.
            let used: TimeDelta = windows
                .iter()
                .flat_map(|w| w.slots().iter().map(|ws| ws.runtime()))
                .sum();
            prop_assert_eq!(
                outcome.remaining.total_vacant_time() + used,
                list.total_vacant_time()
            );
            prop_assert!(outcome.remaining.validate().is_ok());
        }
    }

    #[test]
    fn search_is_deterministic(list in slot_list_strategy(), request in request_strategy()) {
        let batch = Batch::from_jobs(vec![Job::new(JobId::new(0), request)]).unwrap();
        let a = find_alternatives(Amp::new(), &list, &batch).unwrap();
        let b = find_alternatives(Amp::new(), &list, &batch).unwrap();
        prop_assert_eq!(a.alternatives, b.alternatives);
    }
}

mod coscheduled {
    use super::*;
    use ecosched_select::find_alternatives_coscheduled;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn coscheduled_alternatives_are_disjoint_and_conserving(
            list in slot_list_strategy(),
            requests in prop::collection::vec(request_strategy(), 1..4),
        ) {
            let jobs: Vec<Job> = requests
                .into_iter()
                .enumerate()
                .map(|(i, r)| Job::new(JobId::new(i as u32), r))
                .collect();
            let batch = Batch::from_jobs(jobs).unwrap();
            let outcome = find_alternatives_coscheduled(Amp::new(), &list, &batch).unwrap();
            let windows: Vec<_> = outcome
                .alternatives
                .per_job()
                .iter()
                .flat_map(|ja| ja.iter().map(|a| a.window().clone()))
                .collect();
            for i in 0..windows.len() {
                for j in (i + 1)..windows.len() {
                    prop_assert!(!windows[i].overlaps(&windows[j]));
                }
            }
            let used: TimeDelta = windows
                .iter()
                .flat_map(|w| w.slots().iter().map(|ws| ws.runtime()))
                .sum();
            prop_assert_eq!(
                outcome.remaining.total_vacant_time() + used,
                list.total_vacant_time()
            );
            prop_assert!(outcome.remaining.validate().is_ok());
        }

        #[test]
        fn coscheduled_covers_whenever_sequential_does(
            list in slot_list_strategy(),
            requests in prop::collection::vec(request_strategy(), 1..4),
        ) {
            let jobs: Vec<Job> = requests
                .into_iter()
                .enumerate()
                .map(|(i, r)| Job::new(JobId::new(i as u32), r))
                .collect();
            let batch = Batch::from_jobs(jobs).unwrap();
            let seq = ecosched_select::find_alternatives(Amp::new(), &list, &batch).unwrap();
            let cos = find_alternatives_coscheduled(Amp::new(), &list, &batch).unwrap();
            // Earliest-first commits can only preserve or widen coverage on
            // the first pass; empirically this holds for full searches too —
            // keep it as a tested invariant so any regression surfaces.
            let seq_covered = seq.alternatives.per_job().iter().filter(|ja| !ja.is_empty()).count();
            let cos_covered = cos.alternatives.per_job().iter().filter(|ja| !ja.is_empty()).count();
            prop_assert!(cos_covered >= seq_covered);
        }

        #[test]
        fn queue_rounds_pick_the_same_windows_as_rescan(
            list in slot_list_strategy(),
            requests in prop::collection::vec(request_strategy(), 1..5),
            threads in 1usize..5,
        ) {
            // The lazy-revalidated priority queue must commit exactly the
            // window sequence the retained O(batch²) full-rescan driver
            // commits: same alternatives per job (same windows, same
            // order), same remaining list, same pass count.
            let jobs: Vec<Job> = requests
                .into_iter()
                .enumerate()
                .map(|(i, r)| Job::new(JobId::new(i as u32), r))
                .collect();
            let batch = Batch::from_jobs(jobs).unwrap();
            for selector in [&Alp::new() as &dyn SlotSelector, &Amp::new()] {
                let rescan = ecosched_select::find_alternatives_coscheduled_rescan(
                    selector, &list, &batch,
                ).unwrap();
                let queue = ecosched_select::find_alternatives_coscheduled_threads(
                    selector, &list, &batch, threads,
                ).unwrap();
                prop_assert_eq!(&queue.alternatives, &rescan.alternatives);
                prop_assert_eq!(&queue.remaining, &rescan.remaining);
                prop_assert_eq!(queue.stats.passes, rescan.stats.passes);
                prop_assert_eq!(
                    queue.stats.windows_committed,
                    rescan.stats.windows_committed
                );
            }
        }

        #[test]
        fn coscheduled_earliest_first_window_is_no_later(
            list in slot_list_strategy(),
            requests in prop::collection::vec(request_strategy(), 2..4),
        ) {
            // Provable relation: the co-scheduler's very first commit is the
            // globally earliest candidate window on the full list, so the
            // minimum first-alternative start across jobs can never exceed
            // the sequential search's. (The *sum* of first starts is not
            // ordered — greedy earliest-first is not sum-optimal.)
            let jobs: Vec<Job> = requests
                .into_iter()
                .enumerate()
                .map(|(i, r)| Job::new(JobId::new(i as u32), r))
                .collect();
            let batch = Batch::from_jobs(jobs).unwrap();
            let seq = ecosched_select::find_alternatives(Amp::new(), &list, &batch).unwrap();
            let cos = find_alternatives_coscheduled(Amp::new(), &list, &batch).unwrap();
            let min_first = |o: &ecosched_select::SearchOutcome| -> Option<i64> {
                o.alternatives
                    .per_job()
                    .iter()
                    .filter_map(|ja| ja.alternatives().first())
                    .map(|a| a.window().start().ticks())
                    .min()
            };
            if let (Some(s), Some(c)) = (min_first(&seq), min_first(&cos)) {
                prop_assert!(c <= s, "coscheduled min first start {c} > sequential {s}");
            }
        }
    }
}
