//! Start-domination properties of slot coalescing under ALP and AMP.
//!
//! Literal search-result invariance is *false*: a job whose runtime
//! straddles a fragment boundary fits the merged slot but neither
//! fragment, so coalescing can move a window earlier (that is the
//! point). The provable relation is domination: every window hostable
//! on the fragmented list is hostable on the coalesced one (each
//! fragment's span is contained in its merged slot, at the same price
//! and performance), so the earliest-start scan on the coalesced list
//! succeeds whenever the fragmented scan does, and never later.

use ecosched_core::{
    NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span, TimeDelta, TimePoint,
};
use ecosched_select::{Alp, Amp, ScanStats, SlotSelector};
use proptest::prelude::*;

/// Strategy: several nodes, each fragmented into touching or gapped
/// segments over small price/perf palettes, so merge runs are common
/// and straddling jobs actually occur.
fn fragmented_list_strategy() -> impl Strategy<Value = SlotList> {
    prop::collection::vec(
        (
            0i64..100,
            prop::collection::vec(
                (10i64..80, 0i64..3, 0usize..2, 0usize..2), // len, gap, price, perf
                1..5,
            ),
        ),
        1..8,
    )
    .prop_map(|nodes| {
        let prices = [Price::from_credits(3), Price::from_credits(6)];
        let perfs = [Perf::from_milli(1000), Perf::from_milli(2000)];
        let mut slots = Vec::new();
        let mut id = 0u64;
        for (n, (base, segments)) in nodes.into_iter().enumerate() {
            let mut cursor = base;
            for (len, gap, price, perf) in segments {
                cursor += gap;
                let span = Span::new(TimePoint::new(cursor), TimePoint::new(cursor + len)).unwrap();
                slots.push(
                    Slot::new(
                        SlotId::new(id),
                        NodeId::new(n as u32),
                        perfs[perf],
                        prices[price],
                        span,
                    )
                    .unwrap(),
                );
                id += 1;
                cursor += len;
            }
        }
        SlotList::from_slots(slots).unwrap()
    })
}

fn request_strategy() -> impl Strategy<Value = ResourceRequest> {
    (1usize..4, 15i64..120, 1000i64..2000, 3i64..10).prop_map(|(n, t, p, c)| {
        ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_milli(p),
            Price::from_credits(c),
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ALP and AMP on the coalesced list succeed whenever they succeed
    /// on the fragmented one, with a window that starts no later, and
    /// the found window still satisfies every per-request guarantee.
    #[test]
    fn coalesced_search_dominates_fragmented(
        list in fragmented_list_strategy(),
        request in request_strategy(),
    ) {
        let mut coalesced = list.clone();
        coalesced.coalesce();

        for selector in [&Alp::new() as &dyn SlotSelector, &Amp::new()] {
            let mut stats = ScanStats::new();
            let fragmented_window = selector.find_window(&list, &request, &mut stats);
            let coalesced_window = selector.find_window(&coalesced, &request, &mut stats);

            if let Some(f) = fragmented_window {
                let c = coalesced_window.unwrap_or_else(|| {
                    panic!(
                        "{} found a window on the fragmented list but lost it after \
                         coalescing",
                        selector.name()
                    )
                });
                prop_assert!(
                    c.start() <= f.start(),
                    "{} window moved later after coalescing: {} > {}",
                    selector.name(),
                    c.start(),
                    f.start()
                );
                // The coalesced window is still a real window of the
                // coalesced list.
                prop_assert_eq!(c.slot_count(), request.nodes());
                for ws in c.slots() {
                    prop_assert!(ws.perf().satisfies(request.min_perf()));
                    let source = coalesced
                        .get(ws.source())
                        .expect("window member cites a live slot");
                    prop_assert!(source.span().contains_span(c.used_span(ws)));
                }
            }
        }
    }

    /// Coalescing the already-coalesced list changes neither search
    /// outcome — the engine may safely re-run the pass every cycle.
    #[test]
    fn repeated_coalescing_is_search_stable(
        list in fragmented_list_strategy(),
        request in request_strategy(),
    ) {
        let mut once = list.clone();
        once.coalesce();
        let mut twice = once.clone();
        twice.coalesce();
        let mut stats = ScanStats::new();
        for selector in [&Alp::new() as &dyn SlotSelector, &Amp::new()] {
            let a = selector.find_window(&once, &request, &mut stats);
            let b = selector.find_window(&twice, &request, &mut stats);
            prop_assert_eq!(a, b);
        }
    }
}
