//! Differential harness at the search layer: the full ALP and AMP
//! pipelines must return **byte-identical** outcomes whether the vacant
//! market is the flat list or the interval-timeline representation.
//!
//! The core-level harness (`ecosched-core/tests/interval_equivalence.rs`)
//! pins the two representations to the same observable slot sequence;
//! this file closes the loop one layer up: the `as_algo`-backed window
//! scans, the sequential search driver, and the coscheduled driver all
//! consume a [`SlotList`] only through its iteration and subtraction
//! API, so the same slots must yield the same windows, the same
//! alternatives, the same remaining lists, *and the same work counters*
//! on both representations.
//!
//! CI runs this file at `PROPTEST_CASES=512` in the failure-injection
//! job; the local default below keeps `cargo test` fast.

use ecosched_core::{
    Batch, Job, JobId, MarketRepr, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList,
    Span, TimeDelta, TimePoint,
};
use ecosched_select::{
    find_alternatives, find_alternatives_coscheduled, Alp, Amp, ScanStats, SlotSelector,
};
use proptest::prelude::*;

/// The raw slots of a market with several consecutive vacancies per node
/// — the shape subtraction remnants produce mid-run.
fn market_slots_strategy() -> impl Strategy<Value = Vec<Slot>> {
    prop::collection::vec(
        (
            prop::collection::vec((0i64..80, 40i64..300), 1..4),
            1000i64..3000,
            1i64..12,
        ),
        1..14,
    )
    .prop_map(|nodes| {
        let mut slots = Vec::new();
        let mut id = 0u64;
        for (node, (segments, perf, price)) in nodes.into_iter().enumerate() {
            let mut cursor = 0i64;
            for (gap, len) in segments {
                let start = cursor + gap;
                let end = start + len;
                cursor = end;
                slots.push(
                    Slot::new(
                        SlotId::new(id),
                        NodeId::new(node as u32),
                        Perf::from_milli(perf),
                        Price::from_credits(price),
                        Span::new(TimePoint::new(start), TimePoint::new(end)).unwrap(),
                    )
                    .unwrap(),
                );
                id += 1;
            }
        }
        slots
    })
}

fn request_strategy() -> impl Strategy<Value = ResourceRequest> {
    (1usize..5, 20i64..150, 1000i64..2000, 2i64..10).prop_map(|(n, t, p, c)| {
        ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_milli(p),
            Price::from_credits(c),
        )
        .unwrap()
    })
}

fn batch_strategy() -> impl Strategy<Value = Batch> {
    prop::collection::vec(request_strategy(), 1..5).prop_map(|requests| {
        let jobs: Vec<Job> = requests
            .into_iter()
            .enumerate()
            .map(|(i, r)| Job::new(JobId::new(i as u32), r))
            .collect();
        Batch::from_jobs(jobs).unwrap()
    })
}

/// Builds the same market in both representations.
fn both_reprs(slots: &[Slot]) -> (SlotList, SlotList) {
    let flat = SlotList::from_slots_with_repr(slots.to_vec(), MarketRepr::Flat).unwrap();
    let interval = SlotList::from_slots_with_repr(slots.to_vec(), MarketRepr::Interval).unwrap();
    (flat, interval)
}

/// Full-outcome equality: alternatives, the left-behind market, and every
/// scan counter. Unlike the incremental-vs-naive harness, *nothing* may
/// differ here — the representations walk the same slots in the same
/// order, so even the work accounting must agree.
#[track_caller]
fn assert_outcomes_identical(
    label: &str,
    flat: &ecosched_select::SearchOutcome,
    interval: &ecosched_select::SearchOutcome,
) {
    assert_eq!(
        flat.alternatives, interval.alternatives,
        "{label}: alternatives diverge across representations"
    );
    assert_eq!(
        flat.remaining, interval.remaining,
        "{label}: remaining markets diverge across representations"
    );
    assert_eq!(
        flat.stats, interval.stats,
        "{label}: search statistics diverge across representations"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The `as_algo`-backed window scan: same window, same counters, for
    /// both selectors on both representations.
    #[test]
    fn window_scan_is_representation_blind(
        slots in market_slots_strategy(),
        request in request_strategy(),
    ) {
        let (flat, interval) = both_reprs(&slots);

        let mut fs = ScanStats::new();
        let mut is = ScanStats::new();
        let alp = Alp::new();
        prop_assert_eq!(
            alp.find_window(&flat, &request, &mut fs),
            alp.find_window(&interval, &request, &mut is),
            "ALP windows diverge across representations"
        );
        prop_assert_eq!(fs, is, "ALP scan counters diverge across representations");

        let mut fs = ScanStats::new();
        let mut is = ScanStats::new();
        let amp = Amp::new();
        prop_assert_eq!(
            amp.find_window(&flat, &request, &mut fs),
            amp.find_window(&interval, &request, &mut is),
            "AMP windows diverge across representations"
        );
        prop_assert_eq!(fs, is, "AMP scan counters diverge across representations");
    }

    /// The sequential search driver, end to end (scan, commit,
    /// checkpoint resume, remnant re-admission).
    #[test]
    fn sequential_search_is_representation_blind(
        slots in market_slots_strategy(),
        batch in batch_strategy(),
    ) {
        let (flat, interval) = both_reprs(&slots);

        let f = find_alternatives(Alp::new(), &flat, &batch).unwrap();
        let i = find_alternatives(Alp::new(), &interval, &batch).unwrap();
        assert_outcomes_identical("ALP sequential", &f, &i);

        let f = find_alternatives(Amp::new(), &flat, &batch).unwrap();
        let i = find_alternatives(Amp::new(), &interval, &batch).unwrap();
        assert_outcomes_identical("AMP sequential", &f, &i);

        let f = find_alternatives(Amp::with_rho(0.7), &flat, &batch).unwrap();
        let i = find_alternatives(Amp::with_rho(0.7), &interval, &batch).unwrap();
        assert_outcomes_identical("AMP ρ=0.7 sequential", &f, &i);
    }

    /// The coscheduled driver (priority-queue rounds with lazy
    /// revalidation) over both representations.
    #[test]
    fn coscheduled_search_is_representation_blind(
        slots in market_slots_strategy(),
        batch in batch_strategy(),
    ) {
        let (flat, interval) = both_reprs(&slots);

        let f = find_alternatives_coscheduled(Alp::new(), &flat, &batch).unwrap();
        let i = find_alternatives_coscheduled(Alp::new(), &interval, &batch).unwrap();
        assert_outcomes_identical("ALP coscheduled", &f, &i);

        let f = find_alternatives_coscheduled(Amp::new(), &flat, &batch).unwrap();
        let i = find_alternatives_coscheduled(Amp::new(), &interval, &batch).unwrap();
        assert_outcomes_identical("AMP coscheduled", &f, &i);
    }
}

/// A deterministic 4,000-slot market, searched under both representations
/// — volume for the checkpointed `iter_from` resume path, which is the
/// only place the interval walk differs structurally (a `BTreeMap` range
/// instead of a `partition_point` slice).
#[test]
fn large_deterministic_market_is_representation_blind() {
    // SplitMix64, as in the incremental-equivalence harness.
    let mut state = 0x51ab_3c4d_5e6f_7081u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };

    const M: usize = 4_000;
    const NODES: u64 = 200;
    let mut slots = Vec::with_capacity(M);
    let mut cursors = vec![0i64; NODES as usize];
    for id in 0..M as u64 {
        let node = next() % NODES;
        let gap = (next() % 40) as i64;
        let len = 40 + (next() % 260) as i64;
        let start = cursors[node as usize] + gap;
        let end = start + len;
        cursors[node as usize] = end;
        slots.push(
            Slot::new(
                SlotId::new(id),
                NodeId::new(node as u32),
                Perf::from_milli(1000 + (next() % 2000) as i64),
                Price::from_credits(1 + (next() % 11) as i64),
                Span::new(TimePoint::new(start), TimePoint::new(end)).unwrap(),
            )
            .unwrap(),
        );
    }

    let jobs: Vec<Job> = (0..6)
        .map(|i| {
            let n = 2 + (next() % 3) as usize;
            let t = 30 + (next() % 90) as i64;
            let c = 3 + (next() % 6) as i64;
            Job::new(
                JobId::new(i),
                ResourceRequest::new(
                    n,
                    TimeDelta::new(t),
                    Perf::from_milli(1000),
                    Price::from_credits(c),
                )
                .unwrap(),
            )
        })
        .collect();
    let batch = Batch::from_jobs(jobs).unwrap();
    let (flat, interval) = both_reprs(&slots);

    let f = find_alternatives(Amp::new(), &flat, &batch).unwrap();
    let i = find_alternatives(Amp::new(), &interval, &batch).unwrap();
    assert_outcomes_identical("AMP sequential 4k", &f, &i);
    assert!(
        f.stats.scan.checkpoint_hits > 0,
        "instance never resumed from a checkpoint — too sparse to test iter_from"
    );

    let f = find_alternatives_coscheduled(Amp::new(), &flat, &batch).unwrap();
    let i = find_alternatives_coscheduled(Amp::new(), &interval, &batch).unwrap();
    assert_outcomes_identical("AMP coscheduled 4k", &f, &i);

    let f = find_alternatives(Alp::new(), &flat, &batch).unwrap();
    let i = find_alternatives(Alp::new(), &interval, &batch).unwrap();
    assert_outcomes_identical("ALP sequential 4k", &f, &i);
}
