//! Crash-recovery fault injection: kill a run at an arbitrary event
//! index, restore from the latest snapshot at or before the kill point,
//! replay the surviving log suffix, and assert the completed run is
//! byte-identical — final report, full event log, and log hash — to the
//! run that never crashed.
//!
//! Coverage axes: Poisson and SWF-trace arrivals, revocation on/off,
//! optimizer cache on/off, ALP and AMP selectors, the determinism-suite
//! seeds, and proptest-driven random kill points.

use ecosched_engine::{ArrivalConfig, Engine, EngineConfig, LogEntry};
use ecosched_persist::{encode_snapshot, resume_from, run_with_snapshots};
use ecosched_select::{Alp, Amp, SlotSelector};
use ecosched_sim::swf::{parse_swf, SwfImportConfig};
use ecosched_sim::{JobGenConfig, RevocationConfig};
use proptest::prelude::*;

fn poisson_config(churn: bool, cache: bool) -> EngineConfig {
    EngineConfig {
        cycles: 5,
        revocation: if churn {
            RevocationConfig::per_slot(0.05)
        } else {
            RevocationConfig::none()
        },
        optimizer_cache: cache,
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: 8.0,
            jobs: 20,
            job_gen: JobGenConfig::default(),
        },
        ..EngineConfig::default()
    }
}

fn trace_config(churn: bool, cache: bool) -> EngineConfig {
    let trace = parse_swf(
        "1 0 5 3600 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1\n\
         2 30 5 1800 2 -1 -1 2 2400 -1 1 1 1 1 1 1 -1 -1\n\
         3 90 5 1200 1 -1 -1 1 1200 -1 1 1 1 1 1 1 -1 -1\n\
         4 150 5 2400 2 -1 -1 2 3000 -1 1 1 1 1 1 1 -1 -1\n\
         5 200 5 1800 3 -1 -1 3 2000 -1 1 1 1 1 1 1 -1 -1\n",
    )
    .expect("static trace parses");
    EngineConfig {
        cycles: 4,
        revocation: if churn {
            RevocationConfig::per_slot(0.05)
        } else {
            RevocationConfig::none()
        },
        optimizer_cache: cache,
        arrivals: ArrivalConfig::Trace {
            trace,
            import: SwfImportConfig::default(),
        },
        ..EngineConfig::default()
    }
}

/// The full kill/restore/replay cycle against one engine and seed:
///
/// 1. the uninterrupted run is the ground truth (and, by determinism,
///    exactly what the "crashed" process observed up to the kill);
/// 2. the crashed process died after logging `kill_at` events, holding
///    snapshots from every cycle commit before that point;
/// 3. recovery restores the latest usable snapshot (through its *bytes*,
///    exercising the container), replays the suffix the crashed process
///    had logged after the capture, and runs to completion.
fn assert_recovery_converges<S: SlotSelector + Copy>(
    engine: &Engine<S>,
    seed: u64,
    kill_at: usize,
) {
    let (baseline, snapshots) = run_with_snapshots(engine, seed, 1).expect("baseline run");
    assert!(
        !snapshots.is_empty(),
        "every config here has at least one cycle commit"
    );
    let kill_at = kill_at.min(baseline.log.entries.len());

    let Some(checkpoint) = snapshots.iter().rev().find(|c| c.log.len() <= kill_at) else {
        // Killed before the first snapshot existed: recovery is a
        // restart, which determinism already covers.
        let rerun = engine.run(seed).expect("restart run");
        assert_eq!(rerun, baseline);
        return;
    };

    let suffix: Vec<LogEntry> = baseline.log.entries[checkpoint.log.len()..kill_at].to_vec();
    let bytes = encode_snapshot(checkpoint);
    let recovered = resume_from(engine, &bytes, &suffix).expect("recovery");

    assert_eq!(
        recovered.report.log_hash, baseline.report.log_hash,
        "log hash diverged (seed {seed}, kill {kill_at})"
    );
    assert_eq!(
        recovered.log.to_json(),
        baseline.log.to_json(),
        "event log diverged (seed {seed}, kill {kill_at})"
    );
    assert_eq!(
        recovered.report.to_json(),
        baseline.report.to_json(),
        "report diverged (seed {seed}, kill {kill_at})"
    );
    assert_eq!(recovered, baseline);
}

/// Every seed of the engine determinism suite converges through
/// crash-recovery, with the optimizer cache on and off, under both
/// selectors, killing at a spread of points.
#[test]
fn determinism_seeds_converge_after_crash() {
    for seed in [42u64, 17, 9, 1, 2, 23] {
        for cache in [true, false] {
            let engine = Engine::new(poisson_config(true, cache), Amp::new()).expect("config");
            for kill_at in [5usize, 30, 80, usize::MAX] {
                assert_recovery_converges(&engine, seed, kill_at);
            }
        }
    }
}

#[test]
fn alp_selector_converges_after_crash() {
    let engine = Engine::new(poisson_config(true, true), Alp::new()).expect("config");
    for seed in [42u64, 17] {
        for kill_at in [10usize, 50] {
            assert_recovery_converges(&engine, seed, kill_at);
        }
    }
}

#[test]
fn trace_arrivals_converge_after_crash() {
    for churn in [false, true] {
        for cache in [true, false] {
            let engine = Engine::new(trace_config(churn, cache), Amp::new()).expect("config");
            for kill_at in [8usize, 25, usize::MAX] {
                assert_recovery_converges(&engine, 9, kill_at);
            }
        }
    }
}

/// The cache-on and cache-off recoveries of the same seed also agree
/// with *each other* on everything but the work counters — recovery must
/// not leak cache state into the schedule.
#[test]
fn recovered_runs_agree_across_cache_modes() {
    let seed = 42u64;
    let mut reports = Vec::new();
    for cache in [true, false] {
        let engine = Engine::new(poisson_config(true, cache), Amp::new()).expect("config");
        let (baseline, snapshots) = run_with_snapshots(&engine, seed, 1).expect("baseline");
        let checkpoint = snapshots.last().expect("at least one snapshot");
        let suffix: Vec<LogEntry> = baseline.log.entries[checkpoint.log.len()..].to_vec();
        let recovered =
            resume_from(&engine, &encode_snapshot(checkpoint), &suffix).expect("recovery");
        assert_eq!(recovered, baseline);
        let mut report = recovered.report;
        report.opt = Default::default();
        reports.push(report);
    }
    assert_eq!(reports[0].to_json(), reports[1].to_json());
}

proptest! {
    // Each case is two full engine runs plus a replayed recovery; keep
    // the count small (CI raises PROPTEST_CASES for the dedicated job).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Recovery converges for random seeds, kill points, and fault axes.
    #[test]
    fn random_kills_converge(
        seed in 0u64..100_000,
        kill_at in 0usize..200,
        churn in any::<bool>(),
        cache in any::<bool>(),
        poisson in any::<bool>(),
    ) {
        let config = if poisson {
            EngineConfig {
                cycles: 3,
                arrivals: ArrivalConfig::Poisson {
                    mean_interarrival: 10.0,
                    jobs: 10,
                    job_gen: JobGenConfig::default(),
                },
                ..poisson_config(churn, cache)
            }
        } else {
            trace_config(churn, cache)
        };
        let engine = Engine::new(config, Amp::new()).expect("config");
        assert_recovery_converges(&engine, seed, kill_at);
    }
}
