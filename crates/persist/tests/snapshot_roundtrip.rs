//! Snapshot round-trip, corruption-rejection, and divergence-detection
//! tests, plus the committed golden fixture.
//!
//! The contract under test: every serialized state type survives an
//! encode/decode round trip unchanged; corrupted, truncated, or
//! version-mismatched bytes fail with *typed* errors (never panics,
//! never a silently wrong checkpoint); and replay against a tampered log
//! suffix reports the exact offending event pair.

use std::path::PathBuf;

use ecosched_engine::{ArrivalConfig, Engine, EngineCheckpoint, EngineConfig, Event, LogEntry};
use ecosched_persist::{
    decode_snapshot, encode_snapshot, peek_meta, read_snapshot, resume_and_replay, resume_from,
    run_with_snapshots, write_snapshot, PersistError, ReplayError, SnapshotMeta, FORMAT_VERSION,
};
use ecosched_select::Amp;
use ecosched_sim::{JobGenConfig, RevocationConfig};
use proptest::prelude::*;

/// The fixed configuration the golden fixture was generated under. Keep
/// in sync with `tests/data/golden_v1.snap` — regenerate the fixture
/// (see `regenerate_golden_fixture`) whenever the checkpoint schema or
/// this configuration changes.
fn golden_config() -> EngineConfig {
    EngineConfig {
        cycles: 3,
        revocation: RevocationConfig::per_slot(0.05),
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: 8.0,
            jobs: 8,
            job_gen: JobGenConfig::default(),
        },
        ..EngineConfig::default()
    }
}

const GOLDEN_SEED: u64 = 42;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_v1.snap")
}

/// The checkpoint the fixture stores: the golden run's second cycle
/// commit.
fn golden_checkpoint() -> EngineCheckpoint {
    let engine = Engine::new(golden_config(), Amp::new()).expect("golden config");
    let (_, snapshots) = run_with_snapshots(&engine, GOLDEN_SEED, 1).expect("golden run");
    snapshots
        .get(1)
        .cloned()
        .expect("golden run has at least two cycle commits")
}

/// Rewrites the golden fixture. Run explicitly after an intentional
/// schema change: `cargo test -p ecosched-persist -- --ignored
/// regenerate_golden_fixture`, then commit the file and bump this
/// comment's rationale in the PR.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    std::fs::create_dir_all(golden_path().parent().expect("fixture dir")).expect("mkdir");
    write_snapshot(&golden_path(), &golden_checkpoint()).expect("write fixture");
}

/// The committed fixture still decodes, identifies itself correctly,
/// matches a freshly generated checkpoint, and resumes into a run that
/// converges with the uninterrupted baseline.
#[test]
fn golden_fixture_decodes_and_resumes() {
    let checkpoint = read_snapshot(&golden_path()).expect(
        "golden fixture must decode; if the checkpoint schema changed \
         intentionally, rerun regenerate_golden_fixture and commit the file",
    );
    assert_eq!(checkpoint, golden_checkpoint(), "fixture drifted from code");

    let bytes = std::fs::read(golden_path()).expect("fixture bytes");
    let meta = peek_meta(&bytes).expect("fixture meta");
    let engine = Engine::new(golden_config(), Amp::new()).expect("golden config");
    assert_eq!(
        meta,
        SnapshotMeta {
            seed: GOLDEN_SEED,
            config_fp: engine.config_fingerprint(),
            events_processed: checkpoint.log.len() as u64,
            events_queued: checkpoint.queue.len() as u64,
        }
    );

    let baseline = engine.run(GOLDEN_SEED).expect("baseline");
    let suffix: Vec<LogEntry> = baseline.log.entries[checkpoint.log.len()..].to_vec();
    let recovered = resume_from(&engine, &bytes, &suffix).expect("resume from fixture");
    assert_eq!(recovered, baseline);
}

/// A snapshot taken under one configuration is refused by an engine
/// built under another — through the full byte path.
#[test]
fn foreign_config_is_refused_through_bytes() {
    let bytes = encode_snapshot(&golden_checkpoint());
    let other = Engine::new(
        EngineConfig {
            cycles: 4,
            ..golden_config()
        },
        Amp::new(),
    )
    .expect("config");
    match resume_from(&other, &bytes, &[]) {
        Err(ReplayError::Engine(e)) => {
            assert!(e.to_string().contains("different configuration"), "{e}");
        }
        other => panic!("expected a config-mismatch error, got {other:?}"),
    }
}

/// A tampered suffix entry is reported as `Diverged` with the exact
/// offending pair and whole-run index; a suffix longer than the run is
/// reported as `RunEnded`.
#[test]
fn divergence_names_the_offending_event() {
    let engine = Engine::new(golden_config(), Amp::new()).expect("config");
    let checkpoint = golden_checkpoint();
    let baseline = engine.run(GOLDEN_SEED).expect("baseline");
    let suffix: Vec<LogEntry> = baseline.log.entries[checkpoint.log.len()..].to_vec();

    // Tamper with one event mid-suffix.
    let tamper_at = suffix.len() / 2;
    let mut tampered = suffix.clone();
    tampered[tamper_at].event = Event::JobArrival { job: 4_000_000 };
    match resume_and_replay(&engine, &checkpoint, &tampered) {
        Err(ReplayError::Diverged {
            index,
            expected,
            actual,
        }) => {
            assert_eq!(index as usize, checkpoint.log.len() + tamper_at);
            assert_eq!(expected, tampered[tamper_at]);
            assert_eq!(actual, suffix[tamper_at]);
        }
        other => panic!("expected Diverged, got {other:?}"),
    }

    // Expect one event more than the run produces.
    let mut long = suffix.clone();
    long.push(LogEntry {
        time: i64::MAX,
        seq: u64::MAX,
        event: Event::CycleTick { cycle: u32::MAX },
    });
    match resume_and_replay(&engine, &checkpoint, &long) {
        Err(ReplayError::RunEnded { index, .. }) => {
            assert_eq!(index as usize, checkpoint.log.len() + suffix.len());
        }
        other => panic!("expected RunEnded, got {other:?}"),
    }
}

/// Simple state types round-trip through their canonical JSON.
#[test]
fn component_types_round_trip() {
    let checkpoint = golden_checkpoint();

    let rng_json = serde_json::to_string(&checkpoint.rng).expect("rng json");
    assert_eq!(
        serde_json::from_str::<ecosched_engine::RngState>(&rng_json).expect("rng back"),
        checkpoint.rng
    );
    for q in &checkpoint.queue {
        let json = serde_json::to_string(q).expect("queued json");
        assert_eq!(
            serde_json::from_str::<ecosched_engine::QueuedEventState>(&json).expect("queued back"),
            *q
        );
    }
    for a in &checkpoint.arrivals {
        let json = serde_json::to_string(a).expect("arrival json");
        assert_eq!(
            serde_json::from_str::<ecosched_engine::ArrivalState>(&json).expect("arrival back"),
            *a
        );
    }
    for p in &checkpoint.pending {
        let json = serde_json::to_string(p).expect("pending json");
        assert_eq!(
            serde_json::from_str::<ecosched_engine::PendingState>(&json).expect("pending back"),
            *p
        );
    }
    for l in &checkpoint.leases {
        let json = serde_json::to_string(l).expect("lease json");
        assert_eq!(
            serde_json::from_str::<ecosched_engine::LeaseState>(&json).expect("lease back"),
            *l
        );
    }
    let meta = SnapshotMeta::of(&checkpoint);
    let json = serde_json::to_string(&meta).expect("meta json");
    assert_eq!(
        serde_json::from_str::<SnapshotMeta>(&json).expect("meta back"),
        meta
    );
}

proptest! {
    // Full engine runs per case; keep counts moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoints from random runs and capture points round-trip through
    /// the full byte container unchanged — covering every nested state
    /// type (slot lists, leases, windows, reports, optimizer caches).
    #[test]
    fn checkpoints_round_trip_through_bytes(
        seed in 0u64..100_000,
        steps in 1usize..120,
        churn in any::<bool>(),
        cache in any::<bool>(),
    ) {
        let config = EngineConfig {
            cycles: 3,
            revocation: if churn {
                RevocationConfig::per_slot(0.05)
            } else {
                RevocationConfig::none()
            },
            optimizer_cache: cache,
            arrivals: ArrivalConfig::Poisson {
                mean_interarrival: 10.0,
                jobs: 10,
                job_gen: JobGenConfig::default(),
            },
            ..EngineConfig::default()
        };
        let engine = Engine::new(config, Amp::new()).expect("config");
        let mut state = engine.start(seed);
        for _ in 0..steps {
            if engine.step(&mut state).expect("step").is_none() {
                break;
            }
        }
        let checkpoint = engine.checkpoint(&state);
        prop_assert_eq!(checkpoint.optimizer.is_some(), cache);
        let bytes = encode_snapshot(&checkpoint);
        let back = decode_snapshot(&bytes).expect("round trip");
        prop_assert_eq!(&back, &checkpoint);
        // Idempotent: re-encoding the decoded checkpoint is byte-stable.
        prop_assert_eq!(encode_snapshot(&back), bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any truncation of a real snapshot fails with a typed error — no
    /// panic, no partial state.
    #[test]
    fn truncation_is_rejected(cut_permille in 0u32..1000) {
        let bytes = encode_snapshot(&golden_checkpoint());
        let cut = (bytes.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        prop_assert!(decode_snapshot(&bytes[..cut]).is_err());
    }

    /// Any single corrupted byte in a real snapshot fails with a typed
    /// error.
    #[test]
    fn byte_corruption_is_rejected(pos_permille in 0u32..1000, mask in 1u8..=255) {
        let mut bytes = encode_snapshot(&golden_checkpoint());
        let pos = (bytes.len() as u64 * u64::from(pos_permille) / 1000) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= mask;
        prop_assert!(decode_snapshot(&bytes).is_err());
    }
}

/// A future format version is refused by name, not misparsed.
#[test]
fn wrong_version_is_refused() {
    let mut bytes = encode_snapshot(&golden_checkpoint());
    let next = FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&next.to_le_bytes());
    match decode_snapshot(&bytes) {
        Err(PersistError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, next);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// Checksummed-but-nonsense JSON payloads fail as `Corrupt`, not panics.
#[test]
fn valid_container_with_garbage_payload_is_corrupt() {
    let bytes = ecosched_persist::encode(&[
        (ecosched_persist::META_SECTION, b"not json".as_slice()),
        (ecosched_persist::CHECKPOINT_SECTION, b"{}".as_slice()),
    ]);
    assert!(matches!(
        peek_meta(&bytes),
        Err(PersistError::Corrupt { .. })
    ));
    assert!(matches!(
        decode_snapshot(&bytes),
        Err(PersistError::Corrupt { .. })
    ));
}
