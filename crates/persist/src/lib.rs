//! Checkpoint/restore and event-log replay for the discrete-event engine.
//!
//! The engine's determinism contract — a run is a pure function of
//! `(config, seed)` — makes crash recovery exact rather than
//! best-effort. This crate adds the three pieces:
//!
//! * a **snapshot format** ([`format`], [`snapshot`]): a self-describing
//!   binary container (magic, version header, per-section FNV-1a 64
//!   checksums) whose sections carry the engine's serde-serialized
//!   [`EngineCheckpoint`](ecosched_engine::EngineCheckpoint). Corrupted,
//!   truncated, or version-mismatched files fail with typed
//!   [`PersistError`]s — never panics, never a silently wrong state;
//! * **restore + replay** ([`replay`]): [`resume_from`] rebuilds a live
//!   run from a snapshot and *regenerates* the events the crashed
//!   process logged after the capture, checking each against the
//!   surviving log suffix. The first mismatch aborts with
//!   [`ReplayError::Diverged`] naming the offending pair; past the
//!   suffix, determinism guarantees the continuation is byte-identical
//!   to a run that never crashed (same final report, same log hash);
//! * a **snapshot cadence helper** ([`run_with_snapshots`]): capture
//!   after every N-th cycle commit, which is what the crash-recovery
//!   fault-injection tests and `exp_online --snapshot-every` build on;
//! * **federated snapshots** ([`federated`]): the whole multi-shard
//!   federation — per-shard engine checkpoints, router state, merged
//!   log — captured in one container and rotated by the same store
//!   discipline, so every shard resumes from the same instant;
//! * a **rotated snapshot store** ([`rotate`]): a directory of
//!   crash-atomically written snapshots (temp file + fsync + rename),
//!   pruned to the newest K, whose loader walks past corrupt or
//!   truncated files to the newest usable capture — the durability
//!   substrate of the `ecosched-serve` daemon.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod federated;
pub mod format;
pub mod replay;
pub mod rotate;
pub mod snapshot;

pub use federated::{
    decode_federated_snapshot, encode_federated_snapshot, peek_federated_meta,
    read_federated_snapshot, write_federated_snapshot, FederatedSnapshotMeta,
    FederatedSnapshotStore, LatestFederatedSnapshot, SkippedFederatedSnapshot,
    FED_CHECKPOINT_SECTION, FED_META_SECTION,
};
pub use format::{
    decode, encode, PersistError, SectionTag, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION,
};
pub use replay::{
    resume_and_replay, resume_from, run_to_completion, run_with_snapshots, ReplayError,
};
pub use rotate::{LatestSnapshot, SkippedSnapshot, SnapshotStore};
pub use snapshot::{
    decode_snapshot, encode_snapshot, peek_meta, read_snapshot, write_snapshot, SnapshotMeta,
    CHECKPOINT_SECTION, META_SECTION,
};
