//! Writing and reading engine checkpoints as snapshot files.
//!
//! A snapshot is a two-section [`format`](crate::format) container:
//!
//! * `META` — a small JSON header ([`SnapshotMeta`]) identifying the run
//!   (seed, configuration fingerprint, progress) without the cost of
//!   parsing the full state;
//! * `CKPT` — the canonical JSON of the engine's
//!   [`EngineCheckpoint`], the complete resumable state.
//!
//! Both payloads are checksummed by the container, so a flipped bit or a
//! short write surfaces as a typed [`PersistError`] at read time.

use std::path::Path;

use ecosched_engine::EngineCheckpoint;
use serde::{Deserialize, Serialize};

use crate::format::{decode, encode, require, PersistError, SectionTag};

/// The section holding the [`SnapshotMeta`] JSON.
pub const META_SECTION: SectionTag = SectionTag(*b"META");
/// The section holding the [`EngineCheckpoint`] JSON.
pub const CHECKPOINT_SECTION: SectionTag = SectionTag(*b"CKPT");

/// The cheap-to-read identity header of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// The seed the captured run was started with.
    pub seed: u64,
    /// The `(config, selector)` fingerprint the checkpoint was taken
    /// under; resume requires an engine with the same fingerprint.
    pub config_fp: u64,
    /// Events the captured run had processed.
    pub events_processed: u64,
    /// Future events still queued at capture time.
    pub events_queued: u64,
}

impl SnapshotMeta {
    /// Builds the header for a checkpoint.
    #[must_use]
    pub fn of(checkpoint: &EngineCheckpoint) -> Self {
        SnapshotMeta {
            seed: checkpoint.seed,
            config_fp: checkpoint.config_fp,
            events_processed: checkpoint.log.len() as u64,
            events_queued: checkpoint.queue.len() as u64,
        }
    }
}

fn parse_section<T: for<'de> Deserialize<'de>>(
    section: SectionTag,
    payload: &[u8],
) -> Result<T, PersistError> {
    let text = std::str::from_utf8(payload).map_err(|e| PersistError::Corrupt {
        section,
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| PersistError::Corrupt {
        section,
        detail: format!("payload is not a valid {}: {e}", std::any::type_name::<T>()),
    })
}

/// Serializes a checkpoint into snapshot bytes.
#[must_use]
pub fn encode_snapshot(checkpoint: &EngineCheckpoint) -> Vec<u8> {
    let meta = serde_json::to_string(&SnapshotMeta::of(checkpoint)).unwrap_or_default();
    let state = serde_json::to_string(checkpoint).unwrap_or_default();
    encode(&[
        (META_SECTION, meta.as_bytes()),
        (CHECKPOINT_SECTION, state.as_bytes()),
    ])
}

/// Parses snapshot bytes back into a checkpoint, verifying the container
/// header and every checksum.
///
/// # Errors
///
/// Any [`PersistError`] from the container layer, or
/// [`PersistError::Corrupt`] when a payload passes its checksum but is
/// not valid checkpoint JSON.
pub fn decode_snapshot(bytes: &[u8]) -> Result<EngineCheckpoint, PersistError> {
    let sections = decode(bytes)?;
    parse_section(CHECKPOINT_SECTION, require(&sections, CHECKPOINT_SECTION)?)
}

/// Reads only the identity header of snapshot bytes — cheap relative to
/// the full state, for "which run is this?" inspection.
///
/// # Errors
///
/// Same failure modes as [`decode_snapshot`].
pub fn peek_meta(bytes: &[u8]) -> Result<SnapshotMeta, PersistError> {
    let sections = decode(bytes)?;
    parse_section(META_SECTION, require(&sections, META_SECTION)?)
}

/// Writes a checkpoint to a snapshot file.
///
/// # Errors
///
/// [`PersistError::Io`] when the write fails.
pub fn write_snapshot(path: &Path, checkpoint: &EngineCheckpoint) -> Result<(), PersistError> {
    std::fs::write(path, encode_snapshot(checkpoint))?;
    Ok(())
}

/// Reads a checkpoint from a snapshot file.
///
/// # Errors
///
/// [`PersistError::Io`] when the read fails; otherwise the failure modes
/// of [`decode_snapshot`].
pub fn read_snapshot(path: &Path) -> Result<EngineCheckpoint, PersistError> {
    decode_snapshot(&std::fs::read(path)?)
}
