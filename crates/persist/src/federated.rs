//! Federated snapshots: every shard's engine checkpoint plus the router
//! state in one rotated, checksummed container.
//!
//! A federated snapshot is a two-section [`format`](crate::format)
//! container, parallel to the single-engine one in
//! [`snapshot`](crate::snapshot):
//!
//! * `FMET` — a small JSON header ([`FederatedSnapshotMeta`]) naming the
//!   run (seed, configuration fingerprint, shard count, merged-log
//!   progress) without parsing the full state;
//! * `FCKP` — the canonical JSON of the federation's
//!   [`FederationCheckpoint`]: the per-shard
//!   [`EngineCheckpoint`](ecosched_engine::EngineCheckpoint)s in shard
//!   order, the undelivered arrival stream, the router cursor and
//!   counters, the merged log so far, and the committed cross-shard
//!   windows. One container restores the whole federation — there is no
//!   window where some shards resumed from a newer capture than others.
//!
//! [`FederatedSnapshotStore`] rotates these files (`fsnap-<events>`,
//! keyed by merged-log length) with the same crash-atomic write, prune,
//! and corruption-tolerant resume discipline as the single-engine
//! [`SnapshotStore`](crate::SnapshotStore); the two stores can share a
//! directory without colliding.

use std::path::{Path, PathBuf};

use ecosched_federation::FederationCheckpoint;
use serde::{Deserialize, Serialize};

use crate::format::{decode, encode, require, PersistError, SectionTag};
use crate::rotate::{atomic_save, file_name_for, list_dir, prune_dir};

/// The section holding the [`FederatedSnapshotMeta`] JSON.
pub const FED_META_SECTION: SectionTag = SectionTag(*b"FMET");
/// The section holding the [`FederationCheckpoint`] JSON.
pub const FED_CHECKPOINT_SECTION: SectionTag = SectionTag(*b"FCKP");

/// Prefix of every federated snapshot file name.
const PREFIX: &str = "fsnap-";

/// The cheap-to-read identity header of a federated snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FederatedSnapshotMeta {
    /// The seed the captured federation was started with.
    pub seed: u64,
    /// The `(config, selector)` fingerprint of the federation; resume
    /// requires a federation with the same fingerprint.
    pub config_fp: u64,
    /// Shard count at capture time.
    pub shards: u32,
    /// Merged-log entries the captured run had emitted.
    pub merged_events: u64,
}

impl FederatedSnapshotMeta {
    /// Builds the header for a federation checkpoint.
    #[must_use]
    pub fn of(checkpoint: &FederationCheckpoint) -> Self {
        FederatedSnapshotMeta {
            seed: checkpoint.seed,
            config_fp: checkpoint.config_fp,
            shards: checkpoint.shards.len() as u32,
            merged_events: checkpoint.merged.len() as u64,
        }
    }
}

fn parse_section<T: for<'de> Deserialize<'de>>(
    section: SectionTag,
    payload: &[u8],
) -> Result<T, PersistError> {
    let text = std::str::from_utf8(payload).map_err(|e| PersistError::Corrupt {
        section,
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| PersistError::Corrupt {
        section,
        detail: format!("payload is not a valid {}: {e}", std::any::type_name::<T>()),
    })
}

/// Serializes a federation checkpoint into snapshot bytes.
#[must_use]
pub fn encode_federated_snapshot(checkpoint: &FederationCheckpoint) -> Vec<u8> {
    let meta = serde_json::to_string(&FederatedSnapshotMeta::of(checkpoint)).unwrap_or_default();
    let state = serde_json::to_string(checkpoint).unwrap_or_default();
    encode(&[
        (FED_META_SECTION, meta.as_bytes()),
        (FED_CHECKPOINT_SECTION, state.as_bytes()),
    ])
}

/// Parses federated snapshot bytes back into a checkpoint, verifying the
/// container header and every checksum.
///
/// # Errors
///
/// Any [`PersistError`] from the container layer, or
/// [`PersistError::Corrupt`] when a payload passes its checksum but is
/// not valid checkpoint JSON. A single-engine snapshot fails here with
/// a missing-`FCKP` error rather than a misparse.
pub fn decode_federated_snapshot(bytes: &[u8]) -> Result<FederationCheckpoint, PersistError> {
    let sections = decode(bytes)?;
    parse_section(
        FED_CHECKPOINT_SECTION,
        require(&sections, FED_CHECKPOINT_SECTION)?,
    )
}

/// Reads only the identity header of federated snapshot bytes.
///
/// # Errors
///
/// Same failure modes as [`decode_federated_snapshot`].
pub fn peek_federated_meta(bytes: &[u8]) -> Result<FederatedSnapshotMeta, PersistError> {
    let sections = decode(bytes)?;
    parse_section(FED_META_SECTION, require(&sections, FED_META_SECTION)?)
}

/// Writes a federation checkpoint to a snapshot file.
///
/// # Errors
///
/// [`PersistError::Io`] when the write fails.
pub fn write_federated_snapshot(
    path: &Path,
    checkpoint: &FederationCheckpoint,
) -> Result<(), PersistError> {
    std::fs::write(path, encode_federated_snapshot(checkpoint))?;
    Ok(())
}

/// Reads a federation checkpoint from a snapshot file.
///
/// # Errors
///
/// [`PersistError::Io`] when the read fails; otherwise the failure modes
/// of [`decode_federated_snapshot`].
pub fn read_federated_snapshot(path: &Path) -> Result<FederationCheckpoint, PersistError> {
    decode_federated_snapshot(&std::fs::read(path)?)
}

/// A directory of rotated federated snapshots with a bounded retention
/// window.
#[derive(Debug)]
pub struct FederatedSnapshotStore {
    dir: PathBuf,
    keep_last: usize,
}

/// One snapshot skipped during [`FederatedSnapshotStore::load_latest`]
/// because it failed to decode.
#[derive(Debug)]
pub struct SkippedFederatedSnapshot {
    /// The unreadable file.
    pub path: PathBuf,
    /// Why it was rejected.
    pub error: PersistError,
}

/// The result of scanning a store for the newest usable federated
/// snapshot.
#[derive(Debug)]
pub struct LatestFederatedSnapshot {
    /// The decoded checkpoint.
    pub checkpoint: FederationCheckpoint,
    /// The file it came from.
    pub path: PathBuf,
    /// Newer files that were skipped as corrupt or truncated, newest
    /// first. Non-empty means durability degraded to an older capture.
    pub skipped: Vec<SkippedFederatedSnapshot>,
}

impl FederatedSnapshotStore {
    /// Opens (creating if needed) a federated snapshot directory that
    /// retains the newest `keep_last` snapshots (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, keep_last: usize) -> Result<Self, PersistError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FederatedSnapshotStore {
            dir,
            keep_last: keep_last.max(1),
        })
    }

    /// The directory this store manages.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Saves a federation checkpoint crash-atomically (temp sibling,
    /// fsync, rename, directory fsync) and prunes old snapshots. File
    /// names are keyed by merged-log length, so lexical order is
    /// capture order; re-saving the same length overwrites the previous
    /// capture (the states are identical by determinism).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on any filesystem failure.
    pub fn save(&self, checkpoint: &FederationCheckpoint) -> Result<PathBuf, PersistError> {
        let meta = FederatedSnapshotMeta::of(checkpoint);
        let final_path = atomic_save(
            &self.dir,
            &file_name_for(PREFIX, meta.merged_events),
            &encode_federated_snapshot(checkpoint),
        )?;
        self.prune()?;
        Ok(final_path)
    }

    /// Federated snapshot paths in capture order (oldest first). Temp
    /// files, single-engine snapshots, and foreign names are ignored.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be read.
    pub fn list(&self) -> Result<Vec<PathBuf>, PersistError> {
        list_dir(&self.dir, PREFIX)
    }

    /// Deletes all but the newest `keep_last` snapshots, and any stray
    /// temp files left by an interrupted save.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be read; failures
    /// to delete individual files are ignored.
    pub fn prune(&self) -> Result<(), PersistError> {
        prune_dir(&self.dir, PREFIX, self.keep_last)
    }

    /// Finds and decodes the newest usable federated snapshot, skipping
    /// corrupt or truncated files (newest first) until one decodes
    /// cleanly. Returns `None` when the directory holds no usable
    /// snapshot.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be read. Decode
    /// failures are not errors — they are recorded in
    /// [`LatestFederatedSnapshot::skipped`] and the scan falls back to
    /// the next older file.
    pub fn load_latest(&self) -> Result<Option<LatestFederatedSnapshot>, PersistError> {
        let mut skipped = Vec::new();
        for path in self.list()?.into_iter().rev() {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push(SkippedFederatedSnapshot {
                        path,
                        error: PersistError::Io(e),
                    });
                    continue;
                }
            };
            match decode_federated_snapshot(&bytes) {
                Ok(checkpoint) => {
                    return Ok(Some(LatestFederatedSnapshot {
                        checkpoint,
                        path,
                        skipped,
                    }))
                }
                Err(error) => skipped.push(SkippedFederatedSnapshot { path, error }),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_engine::EngineConfig;
    use ecosched_federation::{Federation, FederationConfig};
    use ecosched_select::Amp;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ecosched-fedsnap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Real federation checkpoints from a short S=2 run, captured at
    /// strictly increasing merged-log lengths.
    fn checkpoints(n: usize) -> (Federation<Amp>, Vec<FederationCheckpoint>) {
        let fed = Federation::new(
            FederationConfig::new(EngineConfig::default(), 2),
            Amp::new(),
        )
        .expect("default config");
        let mut state = fed.start(17);
        let mut snaps = Vec::with_capacity(n);
        while snaps.len() < n {
            for _ in 0..24 {
                if fed.step(&mut state).expect("step").is_none() {
                    panic!("run drained before producing {n} checkpoints");
                }
            }
            snaps.push(fed.checkpoint(&state));
        }
        (fed, snaps)
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let (_, snaps) = checkpoints(1);
        let bytes = encode_federated_snapshot(&snaps[0]);
        let decoded = decode_federated_snapshot(&bytes).unwrap();
        assert_eq!(decoded, snaps[0]);

        let meta = peek_federated_meta(&bytes).unwrap();
        assert_eq!(meta, FederatedSnapshotMeta::of(&snaps[0]));
        assert_eq!(meta.shards, 2);
        assert_eq!(meta.merged_events, snaps[0].merged.len() as u64);
    }

    #[test]
    fn a_single_engine_snapshot_is_rejected_not_misparsed() {
        let engine = ecosched_engine::Engine::new(EngineConfig::default(), Amp::new()).unwrap();
        let mut state = engine.start(3);
        for _ in 0..10 {
            engine.step(&mut state).unwrap();
        }
        let bytes = crate::snapshot::encode_snapshot(&engine.checkpoint(&state));
        assert!(matches!(
            decode_federated_snapshot(&bytes),
            Err(PersistError::MissingSection { .. })
        ));
    }

    #[test]
    fn resume_from_store_continues_the_run_exactly() {
        let dir = scratch_dir("resume");
        let store = FederatedSnapshotStore::open(&dir, 3).unwrap();
        let (fed, snaps) = checkpoints(2);
        for snap in &snaps {
            store.save(snap).unwrap();
        }

        let latest = store.load_latest().unwrap().expect("snapshots saved");
        assert!(latest.skipped.is_empty());
        assert_eq!(&latest.checkpoint, snaps.last().unwrap());

        // Resuming the loaded checkpoint reproduces the uninterrupted
        // run's merged log byte for byte.
        let baseline = fed.run(17).unwrap();
        let mut resumed = fed.resume(&latest.checkpoint).unwrap();
        while fed.step(&mut resumed).unwrap().is_some() {}
        let recovered = fed.finish(resumed);
        assert_eq!(recovered.merged.to_json(), baseline.merged.to_json());
        assert_eq!(recovered.report.to_json(), baseline.report.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_skips_corrupt_newest() {
        let dir = scratch_dir("corrupt");
        let store = FederatedSnapshotStore::open(&dir, 4).unwrap();
        let (_, snaps) = checkpoints(2);
        store.save(&snaps[0]).unwrap();
        let newest = store.save(&snaps[1]).unwrap();

        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&newest, &bytes).unwrap();

        let latest = store
            .load_latest()
            .unwrap()
            .expect("older snapshot survives");
        assert_eq!(latest.checkpoint, snaps[0]);
        assert_eq!(latest.skipped.len(), 1);
        assert_eq!(latest.skipped[0].path, newest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_two_stores_share_a_directory_without_colliding() {
        let dir = scratch_dir("shared");
        let fed_store = FederatedSnapshotStore::open(&dir, 2).unwrap();
        let engine_store = crate::SnapshotStore::open(&dir, 2).unwrap();

        let (_, snaps) = checkpoints(1);
        fed_store.save(&snaps[0]).unwrap();
        engine_store.save(&snaps[0].shards[0]).unwrap();

        assert_eq!(fed_store.list().unwrap().len(), 1);
        assert_eq!(engine_store.list().unwrap().len(), 1);
        // Each loader sees only its own format.
        assert!(fed_store.load_latest().unwrap().is_some());
        assert!(engine_store.load_latest().unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
