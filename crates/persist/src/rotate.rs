//! Rotated snapshot directories: atomic writes, keep-last-K pruning,
//! and corruption-tolerant resume.
//!
//! A [`SnapshotStore`] manages a directory of `snap-<events>.ecosnap`
//! files, one per capture, named by the number of events the run had
//! processed (zero-padded so lexical order is capture order). Saving is
//! crash-atomic: bytes go to a `.tmp` sibling, are fsynced, and only
//! then renamed over the final name — a crash mid-write leaves at worst
//! a stray temp file, never a half-written snapshot under the real
//! name. After each save the store prunes to the newest `keep_last`
//! files, and [`SnapshotStore::load_latest`] walks newest-to-oldest past
//! any truncated or corrupt file, so one bad newest snapshot costs one
//! capture interval of replay, not the run.

use std::fs;
use std::path::{Path, PathBuf};

use ecosched_engine::EngineCheckpoint;

use crate::format::PersistError;
use crate::snapshot::{decode_snapshot, encode_snapshot, SnapshotMeta};

/// File extension of finished snapshots.
const EXT: &str = "ecosnap";
/// Prefix of every snapshot file name.
const PREFIX: &str = "snap-";

/// File name for a capture taken after `events` processed events, under
/// the given store prefix.
pub(crate) fn file_name_for(prefix: &str, events: u64) -> String {
    format!("{prefix}{events:016}.{EXT}")
}

/// Parses the event count out of a snapshot file name under `prefix`.
pub(crate) fn parse_name_for(prefix: &str, name: &str) -> Option<u64> {
    let stem = name
        .strip_prefix(prefix)?
        .strip_suffix(&format!(".{EXT}"))?;
    stem.parse().ok()
}

/// Writes `bytes` crash-atomically under `dir/name`: temp sibling,
/// fsync, rename, directory fsync.
pub(crate) fn atomic_save(dir: &Path, name: &str, bytes: &[u8]) -> Result<PathBuf, PersistError> {
    let final_path = dir.join(name);
    let tmp_path = final_path.with_extension("tmp");
    {
        use std::io::Write as _;
        let mut file = fs::File::create(&tmp_path)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Make the rename itself durable. Directory fsync is a no-op on
    // some platforms; failure here must not discard the snapshot.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Snapshot paths under `prefix` in capture order (oldest first). Temp
/// files and foreign names are ignored.
pub(crate) fn list_dir(dir: &Path, prefix: &str) -> Result<Vec<PathBuf>, PersistError> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(events) = parse_name_for(prefix, name) {
            found.push((events, entry.path()));
        }
    }
    found.sort_unstable_by_key(|(events, _)| *events);
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

/// Deletes all but the newest `keep_last` snapshots under `prefix`, and
/// any stray temp files left by an interrupted save.
pub(crate) fn prune_dir(dir: &Path, prefix: &str, keep_last: usize) -> Result<(), PersistError> {
    let listed = list_dir(dir, prefix)?;
    if listed.len() > keep_last {
        for stale in &listed[..listed.len() - keep_last] {
            let _ = fs::remove_file(stale);
        }
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            let _ = fs::remove_file(&path);
        }
    }
    Ok(())
}

/// A directory of rotated snapshots with a bounded retention window.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    keep_last: usize,
}

/// One snapshot skipped during [`SnapshotStore::load_latest`] because it
/// failed to decode.
#[derive(Debug)]
pub struct SkippedSnapshot {
    /// The unreadable file.
    pub path: PathBuf,
    /// Why it was rejected.
    pub error: PersistError,
}

/// The result of scanning a store for the newest usable snapshot.
#[derive(Debug)]
pub struct LatestSnapshot {
    /// The decoded checkpoint.
    pub checkpoint: EngineCheckpoint,
    /// The file it came from.
    pub path: PathBuf,
    /// Newer files that were skipped as corrupt or truncated, newest
    /// first. Non-empty means durability degraded to an older capture.
    pub skipped: Vec<SkippedSnapshot>,
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory that retains the
    /// newest `keep_last` snapshots. `keep_last` is clamped to at
    /// least 1 — a store that deletes everything it saves is useless.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, keep_last: usize) -> Result<Self, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore {
            dir,
            keep_last: keep_last.max(1),
        })
    }

    /// The directory this store manages.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File name for a capture taken after `events` processed events.
    fn file_name(events: u64) -> String {
        file_name_for(PREFIX, events)
    }

    /// Parses the event count out of a snapshot file name.
    #[cfg(test)]
    fn parse_name(name: &str) -> Option<u64> {
        parse_name_for(PREFIX, name)
    }

    /// Saves a checkpoint crash-atomically and prunes old snapshots.
    /// Returns the path of the finished file.
    ///
    /// The bytes are written to a temp sibling, fsynced, renamed over
    /// the final name, and the directory itself is then fsynced so the
    /// rename is durable. Re-saving the same event count overwrites the
    /// previous capture (the states are identical by determinism).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on any filesystem failure.
    pub fn save(&self, checkpoint: &EngineCheckpoint) -> Result<PathBuf, PersistError> {
        let meta = SnapshotMeta::of(checkpoint);
        let final_path = atomic_save(
            &self.dir,
            &Self::file_name(meta.events_processed),
            &encode_snapshot(checkpoint),
        )?;
        self.prune()?;
        Ok(final_path)
    }

    /// Snapshot paths in capture order (oldest first). Temp files and
    /// foreign names are ignored.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be read.
    pub fn list(&self) -> Result<Vec<PathBuf>, PersistError> {
        list_dir(&self.dir, PREFIX)
    }

    /// Deletes all but the newest `keep_last` snapshots, and any stray
    /// temp files left by an interrupted save.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be read; failures
    /// to delete individual files are ignored (they will be retried on
    /// the next save).
    pub fn prune(&self) -> Result<(), PersistError> {
        prune_dir(&self.dir, PREFIX, self.keep_last)
    }

    /// Finds and decodes the newest usable snapshot, skipping corrupt
    /// or truncated files (newest first) until one decodes cleanly.
    /// Returns `None` when the directory holds no usable snapshot.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be read. Decode
    /// failures are not errors — they are recorded in
    /// [`LatestSnapshot::skipped`] and the scan falls back to the next
    /// older file.
    pub fn load_latest(&self) -> Result<Option<LatestSnapshot>, PersistError> {
        let mut skipped = Vec::new();
        for path in self.list()?.into_iter().rev() {
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push(SkippedSnapshot {
                        path,
                        error: PersistError::Io(e),
                    });
                    continue;
                }
            };
            match decode_snapshot(&bytes) {
                Ok(checkpoint) => {
                    return Ok(Some(LatestSnapshot {
                        checkpoint,
                        path,
                        skipped,
                    }))
                }
                Err(error) => skipped.push(SkippedSnapshot { path, error }),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ecosched-rotate-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Real checkpoints (strictly increasing event counts) from a short
    /// deterministic run — the store keys file names on that count.
    fn checkpoints(n: usize) -> Vec<EngineCheckpoint> {
        let engine = ecosched_engine::Engine::new(
            ecosched_engine::EngineConfig {
                cycles: n as u32 + 2,
                ..ecosched_engine::EngineConfig::default()
            },
            ecosched_select::Amp::new(),
        )
        .expect("default config");
        let (_, snaps) = crate::replay::run_with_snapshots(&engine, 7, 1).expect("run");
        assert!(snaps.len() >= n, "run produced too few snapshots");
        snaps.into_iter().take(n).collect()
    }

    #[test]
    fn names_round_trip() {
        let name = SnapshotStore::file_name(42);
        assert_eq!(SnapshotStore::parse_name(&name), Some(42));
        assert_eq!(SnapshotStore::parse_name("snap-x.ecosnap"), None);
        assert_eq!(SnapshotStore::parse_name("other.ecosnap"), None);
        assert_eq!(SnapshotStore::parse_name("snap-1.tmp"), None);
    }

    #[test]
    fn saves_prune_to_keep_last() {
        let dir = scratch_dir("prune");
        let store = SnapshotStore::open(&dir, 2).unwrap();
        let snaps = checkpoints(4);
        for c in &snaps {
            store.save(c).unwrap();
        }
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 2);
        let kept_events = |c: &EngineCheckpoint| format!("{:016}", c.log.len() as u64);
        assert!(listed[0]
            .to_string_lossy()
            .contains(&kept_events(&snaps[2])));
        assert!(listed[1]
            .to_string_lossy()
            .contains(&kept_events(&snaps[3])));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_skips_corrupt_newest() {
        let dir = scratch_dir("corrupt");
        let store = SnapshotStore::open(&dir, 4).unwrap();
        let snaps = checkpoints(2);
        store.save(&snaps[0]).unwrap();
        let newest = store.save(&snaps[1]).unwrap();

        // Corrupt the newest file's tail (payload bytes -> checksum
        // mismatch) and confirm the scan falls back to the older one.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();

        let latest = store
            .load_latest()
            .unwrap()
            .expect("older snapshot survives");
        assert_eq!(latest.checkpoint, snaps[0]);
        assert_eq!(latest.skipped.len(), 1);
        assert_eq!(latest.skipped[0].path, newest);

        // Truncation of every remaining snapshot leaves nothing usable.
        let older = latest.path.clone();
        fs::write(&older, b"ECOSNAP\0").unwrap();
        assert!(store.load_latest().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_save_leaves_no_partial_final_file() {
        let dir = scratch_dir("tmpfile");
        let store = SnapshotStore::open(&dir, 4).unwrap();
        // Simulate a crash mid-write: a temp file exists, no final file.
        fs::write(dir.join("snap-0000000000000009.tmp"), b"partial").unwrap();
        assert!(store.load_latest().unwrap().is_none());
        // The next save cleans the stray temp file up.
        store.save(&checkpoints(1)[0]).unwrap();
        let strays: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(strays.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
