//! The snapshot container: a self-describing binary envelope with a
//! version header and per-section checksums.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    [u8; 8]   "ECOSNAP\0"
//! version  u32       FORMAT_VERSION
//! count    u32       number of sections
//! section  × count:
//!   tag      [u8; 4]  ASCII section name
//!   len      u64      payload length in bytes
//!   checksum u64      FNV-1a 64 of the payload
//!   payload  [u8; len]
//! ```
//!
//! The container knows nothing about payload semantics — sections are
//! opaque byte strings (in practice, canonical `serde_json` of the
//! engine's checkpoint types). Decoding verifies the magic, the version,
//! and every section checksum before returning anything, so corruption
//! and truncation surface as typed [`PersistError`]s, never panics, and
//! never a silently wrong checkpoint.

use ecosched_engine::event::fnv1a_64;

/// The magic bytes every snapshot file starts with.
pub const MAGIC: [u8; 8] = *b"ECOSNAP\0";

/// The container format version this build writes.
///
/// Version history:
/// * **1** — original container; the checkpoint's vacant market always
///   serialized in the flat `{slots, next_id}` form.
/// * **2** — the vacant market may serialize in the tagged per-node
///   interval form (`{"repr": "interval", …}`). The container layout is
///   unchanged; the bump marks the payload schema extension.
///
/// Decoding accepts any version in [`MIN_FORMAT_VERSION`]`..=`
/// [`FORMAT_VERSION`]: a v1 snapshot (flat market) decodes under this
/// build and resumes into either market representation.
pub const FORMAT_VERSION: u32 = 2;

/// The oldest container format version this build still decodes.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// A four-byte ASCII section tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionTag(pub [u8; 4]);

impl SectionTag {
    /// The tag as a printable string (lossy for non-ASCII bytes).
    #[must_use]
    pub fn name(&self) -> String {
        self.0.iter().map(|&b| char::from(b)).collect()
    }
}

impl std::fmt::Display for SectionTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Errors from encoding, decoding, or interpreting a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// The byte stream ended before the declared structure did.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The stream does not start with the snapshot magic.
    BadMagic,
    /// The stream's format version is not supported by this build.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// A section's payload does not match its stored checksum.
    ChecksumMismatch {
        /// The offending section.
        section: SectionTag,
        /// The checksum the header declared.
        expected: u64,
        /// The checksum of the payload as read.
        found: u64,
    },
    /// A required section is absent from the container.
    MissingSection {
        /// The section that was expected.
        section: SectionTag,
    },
    /// A section's payload passed its checksum but failed to parse as
    /// the expected type (a writer bug or a hand-edited file).
    Corrupt {
        /// The offending section.
        section: SectionTag,
        /// What went wrong.
        detail: String,
    },
    /// Resuming or replaying the decoded checkpoint failed in the engine.
    Engine(ecosched_engine::EngineError),
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated { needed, have } => {
                write!(f, "snapshot truncated: needed {needed} more bytes, have {have}")
            }
            PersistError::BadMagic => write!(f, "not a snapshot: bad magic"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build supports {supported})"
            ),
            PersistError::ChecksumMismatch {
                section,
                expected,
                found,
            } => write!(
                f,
                "section {section}: checksum mismatch (header {expected:016x}, payload {found:016x})"
            ),
            PersistError::MissingSection { section } => {
                write!(f, "snapshot is missing required section {section}")
            }
            PersistError::Corrupt { section, detail } => {
                write!(f, "section {section}: {detail}")
            }
            PersistError::Engine(e) => write!(f, "engine rejected the checkpoint: {e}"),
            PersistError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Engine(e) => Some(e),
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ecosched_engine::EngineError> for PersistError {
    fn from(e: ecosched_engine::EngineError) -> Self {
        PersistError::Engine(e)
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Encodes sections into the container byte layout.
#[must_use]
pub fn encode(sections: &[(SectionTag, &[u8])]) -> Vec<u8> {
    let body: usize = sections.iter().map(|(_, p)| 4 + 8 + 8 + p.len()).sum();
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + 4 + body);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in sections {
        out.extend_from_slice(&tag.0);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// Reads `N` bytes from `bytes` at `*at`, advancing the cursor.
fn take<const N: usize>(bytes: &[u8], at: &mut usize) -> Result<[u8; N], PersistError> {
    let have = bytes.len().saturating_sub(*at);
    if have < N {
        return Err(PersistError::Truncated { needed: N, have });
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&bytes[*at..*at + N]);
    *at += N;
    Ok(out)
}

/// Decodes a container, verifying the magic, the version, and every
/// section checksum.
///
/// # Errors
///
/// [`PersistError::BadMagic`], [`PersistError::UnsupportedVersion`],
/// [`PersistError::Truncated`], or [`PersistError::ChecksumMismatch`] —
/// never a panic, whatever the input bytes.
pub fn decode(bytes: &[u8]) -> Result<Vec<(SectionTag, Vec<u8>)>, PersistError> {
    let mut at = 0usize;
    let magic: [u8; 8] = take(bytes, &mut at)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(take(bytes, &mut at)?);
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = u32::from_le_bytes(take(bytes, &mut at)?);
    let mut sections = Vec::with_capacity(count.min(64) as usize);
    for _ in 0..count {
        let tag = SectionTag(take(bytes, &mut at)?);
        let len = u64::from_le_bytes(take(bytes, &mut at)?);
        let expected = u64::from_le_bytes(take(bytes, &mut at)?);
        let len = usize::try_from(len).map_err(|_| PersistError::Truncated {
            needed: usize::MAX,
            have: bytes.len() - at,
        })?;
        let have = bytes.len().saturating_sub(at);
        if have < len {
            return Err(PersistError::Truncated { needed: len, have });
        }
        let payload = bytes[at..at + len].to_vec();
        at += len;
        let found = fnv1a_64(&payload);
        if found != expected {
            return Err(PersistError::ChecksumMismatch {
                section: tag,
                expected,
                found,
            });
        }
        sections.push((tag, payload));
    }
    Ok(sections)
}

/// Finds a required section in a decoded container.
///
/// # Errors
///
/// [`PersistError::MissingSection`] when absent.
pub fn require(sections: &[(SectionTag, Vec<u8>)], tag: SectionTag) -> Result<&[u8], PersistError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| p.as_slice())
        .ok_or(PersistError::MissingSection { section: tag })
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: SectionTag = SectionTag(*b"AAAA");
    const B: SectionTag = SectionTag(*b"BBBB");

    #[test]
    fn round_trips_sections() {
        let bytes = encode(&[(A, b"hello"), (B, b"")]);
        let sections = decode(&bytes).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(require(&sections, A).unwrap(), b"hello");
        assert_eq!(require(&sections, B).unwrap(), b"");
        assert!(matches!(
            require(&sections, SectionTag(*b"ZZZZ")),
            Err(PersistError::MissingSection { .. })
        ));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = encode(&[(A, b"x")]);
        bytes[0] ^= 0xff;
        assert!(matches!(decode(&bytes), Err(PersistError::BadMagic)));

        let mut bytes = encode(&[(A, b"x")]);
        bytes[8] = 99; // version field
        assert!(matches!(
            decode(&bytes),
            Err(PersistError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn rejects_payload_corruption() {
        let bytes = encode(&[(A, b"payload-bytes")]);
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert!(matches!(
            decode(&corrupt),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode(&[(A, b"hello"), (B, b"world")]);
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
        assert!(decode(&bytes).is_ok());
    }

    #[test]
    fn errors_render() {
        let e = PersistError::ChecksumMismatch {
            section: A,
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("AAAA"));
        assert!(PersistError::BadMagic.to_string().contains("magic"));
    }
}
