//! Resuming a run from a checkpoint and replaying its event-log suffix.
//!
//! Recovery after a crash has two phases:
//!
//! 1. **Restore**: rebuild a [`RunState`] from the latest snapshot via
//!    [`Engine::resume`] (refused under a mismatched configuration).
//! 2. **Replay**: the crashed process typically logged events *after*
//!    the snapshot was taken. Stepping the restored state regenerates
//!    those events — determinism makes replay regeneration, not
//!    re-application — and [`resume_and_replay`] checks each regenerated
//!    entry against the surviving log suffix. The first mismatch aborts
//!    with [`ReplayError::Diverged`] naming the offending pair: the
//!    suffix came from a different configuration, a different build, or
//!    a corrupted log, and continuing would silently fork history.
//!
//! After the suffix is exhausted the run simply continues; by the same
//! determinism argument the continuation — final report, full event log,
//! and log hash — is byte-identical to the run that never crashed.

use ecosched_engine::engine::RunState;
use ecosched_engine::{Engine, EngineCheckpoint, EngineError, EngineRun, Event, LogEntry};
use ecosched_select::SlotSelector;

use crate::format::PersistError;
use crate::snapshot::decode_snapshot;

/// Errors from resume-and-replay.
#[derive(Debug)]
pub enum ReplayError {
    /// The snapshot bytes failed to decode.
    Persist(PersistError),
    /// The engine refused the checkpoint or failed while stepping.
    Engine(EngineError),
    /// A regenerated event disagreed with the stored log suffix. The
    /// index is in whole-run coordinates (position in the full event
    /// log).
    Diverged {
        /// Index of the first mismatching event.
        index: u64,
        /// The entry the stored suffix expected.
        expected: LogEntry,
        /// The entry the resumed run actually produced.
        actual: LogEntry,
    },
    /// The resumed run drained its queue while the stored suffix still
    /// expected more events — divergence by early termination.
    RunEnded {
        /// Index of the expected-but-missing event.
        index: u64,
        /// The entry the stored suffix expected.
        expected: LogEntry,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Persist(e) => write!(f, "{e}"),
            ReplayError::Engine(e) => write!(f, "{e}"),
            ReplayError::Diverged {
                index,
                expected,
                actual,
            } => write!(
                f,
                "replay diverged at event {index}: log has {expected:?}, run produced {actual:?}"
            ),
            ReplayError::RunEnded { index, expected } => write!(
                f,
                "replay ended early: log expects {expected:?} at event {index}, queue drained"
            ),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Persist(e) => Some(e),
            ReplayError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for ReplayError {
    fn from(e: PersistError) -> Self {
        ReplayError::Persist(e)
    }
}

impl From<EngineError> for ReplayError {
    fn from(e: EngineError) -> Self {
        ReplayError::Engine(e)
    }
}

/// Restores a run from a checkpoint and replays a log suffix against it,
/// verifying every regenerated event. Returns the state positioned just
/// past the suffix, ready to continue to completion.
///
/// The suffix is the tail the crashed process logged *after* the
/// checkpoint was taken (entries `checkpoint.log.len()..` of its log);
/// pass an empty suffix to restore without verification.
///
/// # Errors
///
/// [`ReplayError::Engine`] when the checkpoint is refused or a step
/// fails; [`ReplayError::Diverged`] / [`ReplayError::RunEnded`] at the
/// first disagreement between the regenerated events and the suffix.
pub fn resume_and_replay<S: SlotSelector + Copy>(
    engine: &Engine<S>,
    checkpoint: &EngineCheckpoint,
    log_suffix: &[LogEntry],
) -> Result<RunState, ReplayError> {
    let mut state = engine.resume(checkpoint)?;
    let base = checkpoint.log.len() as u64;
    for (i, expected) in log_suffix.iter().enumerate() {
        let index = base + i as u64;
        match engine.step(&mut state)? {
            Some(actual) if actual == *expected => {}
            Some(actual) => {
                return Err(ReplayError::Diverged {
                    index,
                    expected: *expected,
                    actual,
                })
            }
            None => {
                return Err(ReplayError::RunEnded {
                    index,
                    expected: *expected,
                })
            }
        }
    }
    Ok(state)
}

/// One-call crash recovery: decodes snapshot bytes, restores, replays
/// the surviving log suffix, and runs the rest of the simulation.
///
/// # Errors
///
/// [`ReplayError::Persist`] for container/decoding failures, then the
/// failure modes of [`resume_and_replay`].
pub fn resume_from<S: SlotSelector + Copy>(
    engine: &Engine<S>,
    snapshot: &[u8],
    log_suffix: &[LogEntry],
) -> Result<EngineRun, ReplayError> {
    let checkpoint = decode_snapshot(snapshot)?;
    let state = resume_and_replay(engine, &checkpoint, log_suffix)?;
    Ok(run_to_completion(engine, state)?)
}

/// Steps a state until the queue drains, then closes the books.
///
/// # Errors
///
/// Propagates [`EngineError`] from any step.
pub fn run_to_completion<S: SlotSelector + Copy>(
    engine: &Engine<S>,
    mut state: RunState,
) -> Result<EngineRun, EngineError> {
    while engine.step(&mut state)?.is_some() {}
    Ok(engine.finish(state))
}

/// Runs a full simulation, capturing a checkpoint after every
/// `every_cycles`-th `CycleTick` commit (the cadence `exp_online
/// --snapshot-every` exposes). `every_cycles == 0` captures nothing.
///
/// Returns the finished run plus the checkpoints in capture order —
/// exactly what a crash-recovery harness needs to restore from "the
/// latest snapshot before the kill point".
///
/// # Errors
///
/// Propagates [`EngineError`] from any step.
pub fn run_with_snapshots<S: SlotSelector + Copy>(
    engine: &Engine<S>,
    seed: u64,
    every_cycles: u32,
) -> Result<(EngineRun, Vec<EngineCheckpoint>), EngineError> {
    let mut state = engine.start(seed);
    let mut snapshots = Vec::new();
    while let Some(entry) = engine.step(&mut state)? {
        if every_cycles > 0 {
            if let Event::CycleTick { cycle } = entry.event {
                if (cycle + 1) % every_cycles == 0 {
                    snapshots.push(engine.checkpoint(&state));
                }
            }
        }
    }
    Ok((engine.finish(state), snapshots))
}
