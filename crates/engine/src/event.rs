//! The engine's event taxonomy and the serialized, hashable event log.
//!
//! Every state change in the engine is driven by exactly one [`Event`]
//! popped from the queue, and every processed event is appended to the
//! [`EventLog`] as a [`LogEntry`] carrying its virtual time and queue
//! sequence number. Because the engine is single-threaded, draws all
//! randomness from one seeded RNG in event order, and breaks queue ties
//! deterministically on `(time, seq)`, two runs with the same seed and
//! configuration produce byte-identical serialized logs — the determinism
//! contract that [`EventLog::fnv1a_hash`] turns into a one-line check.

use serde::{Deserialize, Serialize};

/// One typed event of the discrete-event engine.
///
/// Payloads are plain identifiers (engine job ids, lease ids, raw slot
/// ids) rather than references into engine state, so the log is
/// self-contained and serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A job entered the pending queue.
    JobArrival {
        /// The engine job id (arrival order).
        job: u32,
    },
    /// A batch of fresh vacant slots was published by the owners.
    SlotPublished {
        /// The publication round (one per cycle).
        round: u32,
        /// Slots added to the market.
        count: u32,
    },
    /// A published slot reached the end of its span; triggers a sweep
    /// that drops every fully expired vacant slot.
    SlotExpired {
        /// The raw id the slot was published under (it may since have
        /// been carved into remnants or consumed entirely).
        slot: u64,
    },
    /// A committed lease finished executing; unused tail capacity returns
    /// to the vacant list.
    LeaseCompleted {
        /// The lease id. Stale ids (leases broken and replaced since the
        /// event was scheduled) are ignored.
        lease: u64,
    },
    /// A mid-cycle fault process fired: revocations are drawn against the
    /// live state (vacant slots plus active leases) and broken leases run
    /// the three-tier repair pass.
    RevocationStrike {
        /// The strike index (one per cycle, mid-cycle).
        strike: u32,
    },
    /// A scheduling cycle: snapshot the live market, run the batch
    /// pipeline (alternatives search, VO limits, combination
    /// optimization) over the pending jobs, and commit the chosen windows
    /// as leases.
    CycleTick {
        /// The cycle index.
        cycle: u32,
    },
}

/// One processed event with its virtual time and queue sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Virtual time the event fired at, in ticks.
    pub time: i64,
    /// Queue sequence number (insertion order; the `(time, seq)` pop
    /// tie-break).
    pub seq: u64,
    /// The event.
    pub event: Event,
}

/// The append-only log of every event the engine processed, in pop order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventLog {
    /// The processed events, in order.
    pub entries: Vec<LogEntry>,
}

impl EventLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends one processed event.
    pub fn push(&mut self, time: i64, seq: u64, event: Event) {
        self.entries.push(LogEntry { time, seq, event });
    }

    /// Number of logged events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing has been logged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The canonical serialized form of the log. Byte-identical across
    /// identically seeded runs — the determinism contract.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// FNV-1a 64 hash of the canonical serialization, rendered as 16 hex
    /// digits (a stable one-line fingerprint for tests and the CI smoke
    /// job).
    #[must_use]
    pub fn fnv1a_hash(&self) -> String {
        format!("{:016x}", fnv1a_64(self.to_json().as_bytes()))
    }
}

/// FNV-1a 64-bit hash (implemented locally — the build is offline and the
/// fingerprint only needs to be stable and sensitive, not cryptographic).
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn log_hash_is_stable_and_sensitive() {
        let mut a = EventLog::new();
        a.push(0, 0, Event::JobArrival { job: 0 });
        a.push(5, 1, Event::CycleTick { cycle: 0 });
        let mut b = EventLog::new();
        b.push(0, 0, Event::JobArrival { job: 0 });
        b.push(5, 1, Event::CycleTick { cycle: 0 });
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.fnv1a_hash(), b.fnv1a_hash());
        assert_eq!(a.fnv1a_hash().len(), 16);

        b.push(5, 2, Event::SlotExpired { slot: 3 });
        assert_ne!(a.fnv1a_hash(), b.fnv1a_hash());
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn events_serialize_round_trip() {
        let events = [
            Event::JobArrival { job: 7 },
            Event::SlotPublished {
                round: 1,
                count: 130,
            },
            Event::SlotExpired { slot: 42 },
            Event::LeaseCompleted { lease: 3 },
            Event::RevocationStrike { strike: 2 },
            Event::CycleTick { cycle: 9 },
        ];
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event);
        }
    }
}
