//! Time-series metrics emitted by an engine run.

use ecosched_optimize::OptStats;
use serde::{Deserialize, Serialize};

/// One scheduling cycle's snapshot of the online system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CyclePoint {
    /// The cycle index.
    pub cycle: u32,
    /// Virtual time the cycle fired at.
    pub time: i64,
    /// Vacant slots in the clipped market snapshot the pipeline saw.
    pub market_slots: usize,
    /// Jobs in the cycle's batch (pending arrivals plus carry-overs).
    pub batch_size: usize,
    /// Jobs committed to leases this cycle.
    pub scheduled: usize,
    /// Jobs postponed to the next cycle.
    pub postponed: usize,
    /// Mean wait (commit start minus arrival, ticks) of the jobs committed
    /// this cycle; `0` when none were.
    pub mean_wait: f64,
    /// Money spent on the leases committed this cycle.
    pub spend: f64,
}

/// The aggregate report of one engine run.
///
/// All fields are plain serializable values so two identically seeded runs
/// can be compared byte-for-byte through `serde_json`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Per-cycle time series, in cycle order.
    pub cycles: Vec<CyclePoint>,
    /// Jobs that entered the pending queue.
    pub jobs_arrived: u64,
    /// Lease commitments made at cycle ticks (excluding repair
    /// re-commitments).
    pub jobs_scheduled: u64,
    /// Leases that ran to completion.
    pub jobs_completed: u64,
    /// Jobs still pending when the event queue drained.
    pub backlog: u64,
    /// Mean wait over completed jobs: lease start minus arrival, ticks.
    pub mean_wait: f64,
    /// Mean bounded slowdown over completed jobs:
    /// `max((wait + run) / max(run, τ), 1)`.
    pub mean_bounded_slowdown: f64,
    /// Busy node-ticks over published node-ticks.
    pub utilization: f64,
    /// Cumulative lease spend per virtual organisation (round-robin
    /// assignment by arrival order).
    pub vo_spend: Vec<f64>,
    /// Revocations drawn by the mid-cycle fault model.
    pub revocations: u64,
    /// Active leases broken by a strike.
    pub leases_broken: u64,
    /// Broken leases recovered by adopting a surviving alternative.
    pub failovers: u64,
    /// Broken leases recovered by the bounded repair search.
    pub repairs: u64,
    /// Broken leases returned to the pending queue.
    pub repostponed: u64,
    /// Full-rescan repair attempts (tier 2.5) started after the anchored
    /// repair was exhausted; zero unless
    /// [`RepairPolicy::full_rescan_on_exhaustion`] is on. Successful
    /// rescans count under [`Self::repairs`].
    ///
    /// [`RepairPolicy::full_rescan_on_exhaustion`]: ecosched_sim::RepairPolicy::full_rescan_on_exhaustion
    pub full_rescans: u64,
    /// Completion events that arrived for a lease already broken and
    /// replaced (their ids went stale).
    pub stale_completions: u64,
    /// Events processed before the queue drained.
    pub event_count: u64,
    /// Adjacent same-node, same-price, same-performance vacant slots
    /// absorbed by the cycle-commit coalescing pass (zero when
    /// [`coalesce`](crate::EngineConfig::coalesce) is off).
    pub slots_coalesced: u64,
    /// Combination-optimizer work counters summed over all cycle ticks
    /// (solves, dynamic-programming rows reused/rebuilt, cache residency
    /// high-water). Differs between cache-on and cache-off runs of the
    /// same seed; every other field — including [`Self::log_hash`] — is
    /// identical.
    pub opt: OptStats,
    /// FNV-1a 64 fingerprint of the serialized event log (16 hex digits).
    pub log_hash: String,
}

impl EngineReport {
    /// The canonical serialized form, for byte-identical comparison of two
    /// runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_round_trip() {
        let report = EngineReport {
            cycles: vec![CyclePoint {
                cycle: 0,
                time: 0,
                market_slots: 130,
                batch_size: 4,
                scheduled: 3,
                postponed: 1,
                mean_wait: 2.5,
                spend: 410.25,
            }],
            jobs_arrived: 4,
            jobs_scheduled: 3,
            vo_spend: vec![100.0, 200.0, 110.25],
            log_hash: "0123456789abcdef".into(),
            ..EngineReport::default()
        };
        let json = report.to_json();
        let back: EngineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json);
    }
}
