//! Discrete-event engine: online, trace-driven metascheduling over a
//! virtual clock.
//!
//! The batch pipeline in `ecosched-sim` schedules one static snapshot at
//! a time. This crate wraps it in a discrete-event simulation: a virtual
//! clock and a deterministic `(time, seq)` event queue drive job
//! arrivals (Poisson or SWF trace replay), slot publication and expiry,
//! mid-cycle revocation strikes, lease completions, and periodic
//! scheduling cycles that snapshot the live market and run the existing
//! alternatives-search / VO-limit / combination-optimization pipeline.
//!
//! The headline property is determinism: a run is a pure function of
//! `(config, seed)`, and two identically seeded runs produce
//! byte-identical serialized event logs — checked in one line via
//! [`EventLog::fnv1a_hash`] and enforced by the CI online-smoke job.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod config;
pub mod engine;
pub mod event;
pub mod obs;
pub mod queue;
pub mod report;
pub mod state;

pub use config::{ArrivalConfig, EngineConfig};
pub use engine::{Engine, EngineError, EngineRun, Reservation, ReserveError, RunState};
pub use event::{fnv1a_64, Event, EventLog, LogEntry};
pub use obs::{EngineIds, EngineObs};
pub use queue::EventQueue;
pub use report::{CyclePoint, EngineReport};
pub use state::{
    ArrivalState, EngineCheckpoint, LeaseState, PendingState, QueuedEventState, RngState,
};
