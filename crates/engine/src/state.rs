//! The serialized form of a paused engine run.
//!
//! [`EngineCheckpoint`] captures everything [`Engine::resume`] needs to
//! rebuild a [`RunState`] that continues *byte-identically*: the RNG
//! position, the future-event queue with its already-assigned sequence
//! numbers, the full event log so far, the precomputed arrival stream,
//! the vacant-slot market, pending jobs, active leases with their
//! surviving failover alternatives, the report accumulated so far, and —
//! when the run shares one optimizer across cycles — the dynamic
//! programming row caches, so resumed work counters match the
//! uninterrupted run's exactly.
//!
//! Floating-point accumulators are stored as IEEE-754 bit patterns
//! (`f64::to_bits`) rather than decimal text, so restore is exact by
//! construction and the resumed report's derived means are bit-equal.
//!
//! The checkpoint is an ordinary serde-serializable value; the container
//! format (version header, per-section checksums) lives in the
//! `ecosched-persist` crate, which treats this type as one payload.
//!
//! [`Engine::resume`]: crate::engine::Engine::resume
//! [`RunState`]: crate::engine::RunState

use ecosched_core::{ResourceRequest, SlotList, Window};
use ecosched_optimize::OptimizerSnapshot;
use serde::{Deserialize, Serialize};

use crate::event::{Event, EventLog};
use crate::report::EngineReport;

/// A ChaCha8 generator's position in its output stream.
///
/// The block buffer is not stored: ChaCha output is a pure function of
/// `(key, block counter)`, so restore regenerates the in-flight block and
/// seeks to `cursor`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// The 8-word key the generator was seeded with.
    pub key: Vec<u32>,
    /// The next block counter a refill would use.
    pub counter: u64,
    /// Next unread word in the current block; 16 means "exhausted".
    pub cursor: u64,
}

/// One future event still in the queue, with the sequence number it was
/// assigned at push time (restore must preserve it — re-pushing would
/// mint fresh numbers and change `(time, seq)` tie-breaks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedEventState {
    /// Virtual time the event fires at, in ticks.
    pub time: i64,
    /// The queue sequence number already assigned to it.
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

/// One entry of the precomputed arrival stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalState {
    /// Arrival tick.
    pub time: i64,
    /// The job's resource request.
    pub request: ResourceRequest,
}

/// A job waiting in the pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PendingState {
    /// The engine job id (arrival order).
    pub id: u32,
    /// Arrival tick (batch priority key).
    pub arrival: i64,
    /// The virtual organisation the job bills to.
    pub vo: u32,
    /// The job's resource request.
    pub request: ResourceRequest,
}

/// An active lease with everything repair and completion need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseState {
    /// The lease id (commitment order; keys the completion event).
    pub lease: u64,
    /// The engine job id the lease executes.
    pub job: u32,
    /// The job's arrival tick.
    pub arrival: i64,
    /// The virtual organisation the job bills to.
    pub vo: u32,
    /// The job's resource request.
    pub request: ResourceRequest,
    /// The committed window.
    pub window: Window,
    /// Surviving pre-computed alternatives, for tier-1 failover.
    pub alternatives: Vec<Window>,
    /// How long the lease actually runs, in ticks.
    pub actual_length: i64,
}

/// The full resumable state of an engine run, captured between events.
///
/// Produced by [`Engine::checkpoint`], consumed by [`Engine::resume`].
/// The `config_fp` field fingerprints the engine configuration *and*
/// selector the checkpoint was taken under; resume refuses a checkpoint
/// whose fingerprint does not match the resuming engine, because replay
/// convergence is only guaranteed under the identical configuration.
///
/// [`Engine::checkpoint`]: crate::engine::Engine::checkpoint
/// [`Engine::resume`]: crate::engine::Engine::resume
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// The seed the run was started with (metadata; the RNG position
    /// below is what resume actually uses).
    pub seed: u64,
    /// FNV-1a 64 fingerprint of the engine configuration and selector
    /// name this state was produced under.
    pub config_fp: u64,
    /// The RNG's position in its stream.
    pub rng: RngState,
    /// The queue's next sequence number.
    pub queue_next_seq: u64,
    /// Every future event still queued, in pop order.
    pub queue: Vec<QueuedEventState>,
    /// The full event log up to the capture point.
    pub log: EventLog,
    /// The precomputed `(arrival tick, request)` stream.
    pub arrivals: Vec<ArrivalState>,
    /// The vacant-slot market.
    pub vacant: SlotList,
    /// Next fresh node id for slot publication.
    pub next_node: u32,
    /// Jobs waiting to be scheduled, in queue order.
    pub pending: Vec<PendingState>,
    /// Active leases, in lease-id order.
    pub leases: Vec<LeaseState>,
    /// Next lease id to mint.
    pub next_lease: u64,
    /// The report accumulated so far (final-only fields still zero).
    pub report: EngineReport,
    /// Published node-ticks so far (utilization denominator).
    pub published_ticks: i64,
    /// Busy node-ticks so far (utilization numerator).
    pub busy_ticks: i64,
    /// The wait-time accumulator as an IEEE-754 bit pattern.
    pub wait_sum_bits: u64,
    /// The bounded-slowdown accumulator as an IEEE-754 bit pattern.
    pub slowdown_sum_bits: u64,
    /// The shared optimizer's caches, when `optimizer_cache` is on.
    /// `None` is the deliberate cold-cache marker: with the cache off
    /// every tick solves from scratch, so there is nothing to carry.
    pub optimizer: Option<OptimizerSnapshot>,
}
