//! Engine configuration: clock, arrivals, market churn, and metrics knobs.

use ecosched_sim::swf::{SwfImportConfig, SwfJob};
use ecosched_sim::{
    ConfigError, IterationConfig, JobGenConfig, RepairPolicy, RevocationConfig, SlotGenConfig,
};
use serde::{Deserialize, Serialize};

/// Where the online job stream comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalConfig {
    /// A seeded Poisson process: exponential inter-arrival gaps with the
    /// given mean, each arrival drawing one paper-style request.
    Poisson {
        /// Mean inter-arrival gap in ticks.
        mean_interarrival: f64,
        /// Total jobs to generate.
        jobs: u32,
        /// The request distributions (the paper's Sec. 5 generator).
        job_gen: JobGenConfig,
    },
    /// Replay of a Standard Workload Format trace: arrival times come from
    /// the trace's submit field (scaled by the import config's
    /// `seconds_per_tick`), economic attributes are drawn per job as in
    /// [`ecosched_sim::swf::batch_from_swf`].
    Trace {
        /// The parsed trace jobs, in trace order.
        trace: Vec<SwfJob>,
        /// How to convert rigid trace jobs into economic requests.
        import: SwfImportConfig,
    },
    /// No generator-driven arrivals: every job enters through
    /// [`Engine::submit`](crate::Engine::submit) between steps. This is
    /// service mode — the `ecosched-serve` daemon injects admitted
    /// submissions as `JobArrival` events, and the run stays a pure
    /// function of `(config, seed, accepted-arrival sequence)`.
    External,
}

impl ArrivalConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        match self {
            ArrivalConfig::Poisson {
                mean_interarrival,
                jobs,
                job_gen,
            } => {
                if *mean_interarrival <= 0.0 {
                    return Err(ConfigError::NotPositive {
                        field: "mean_interarrival",
                    });
                }
                if *jobs == 0 {
                    return Err(ConfigError::NotPositive { field: "jobs" });
                }
                job_gen.validate()
            }
            ArrivalConfig::Trace { import, .. } => {
                if import.seconds_per_tick <= 0 {
                    return Err(ConfigError::NotPositive {
                        field: "seconds_per_tick",
                    });
                }
                Ok(())
            }
            ArrivalConfig::External => Ok(()),
        }
    }
}

/// Configuration of one discrete-event engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Ticks between scheduling cycles (slot publication and `CycleTick`
    /// both fire on this period; revocation strikes fire mid-period).
    pub cycle_length: i64,
    /// Number of scheduling cycles. The run ends when the event queue
    /// drains, which may be after the last tick (leases finish on their
    /// own clock).
    pub cycles: u32,
    /// The slot market published each cycle (paper Sec. 5 distributions).
    pub slot_gen: SlotGenConfig,
    /// The mid-cycle fault model. Disabled by default; when disabled no
    /// `RevocationStrike` events are scheduled and no RNG is drawn for
    /// faults.
    pub revocation: RevocationConfig,
    /// The per-broken-lease recovery budget for the three-tier repair
    /// pass.
    pub repair: RepairPolicy,
    /// The scheduling pipeline configuration (criterion, optimizer,
    /// search mode).
    pub iteration: IterationConfig,
    /// Whether cycles share one incremental optimizer (the dynamic
    /// programming row cache) across the run. Outcome-invisible by
    /// construction — cache-on and cache-off runs commit the same leases
    /// and log the same events; only the work counters in
    /// [`ecosched_optimize::OptStats`] differ. The flag exists as an A/B
    /// switch for the determinism tests and benchmarks.
    pub optimizer_cache: bool,
    /// Whether each cycle commit coalesces adjacent vacant slots on the
    /// same node with identical price and performance into one slot.
    /// Coalescing preserves exactly which `(node, time)` regions are
    /// vacant, but merging fragments can only improve what a window
    /// search sees: a runtime that straddles a fragment boundary fits the
    /// merged slot and not the fragments, so the coalesced run may accept
    /// windows *earlier* (never later) and its event log may differ from
    /// an uncoalesced run of the same seed. The flag is the A/B switch
    /// for that comparison.
    pub coalesce: bool,
    /// Number of virtual organisations; arriving jobs are assigned
    /// round-robin and per-VO spend is tracked.
    pub vos: u32,
    /// Fraction of a lease's planned length it actually runs before
    /// completing (traces routinely overestimate requested time). The
    /// unused tail returns to the vacant list at completion. Must be in
    /// `(0, 1]`.
    pub completion_fraction: f64,
    /// The bounded-slowdown threshold τ in ticks:
    /// `max((wait + run) / max(run, τ), 1)`.
    pub slowdown_tau: i64,
    /// Worker threads for each cycle's scheduling iteration (alternatives
    /// scans and DP row construction fan out across this many workers).
    /// An execution knob, **never** an outcome knob: the engine report and
    /// event-log hash are byte-identical at every thread count, and the
    /// configuration fingerprint normalizes `threads` to 1 before hashing
    /// so recorded runs replay regardless of the machine they were
    /// captured on. Default 1 (fully sequential, today's behavior).
    pub threads: usize,
    /// The job stream.
    pub arrivals: ArrivalConfig,
    /// Whether the vacant market uses the interval-timeline representation
    /// ([`ecosched_core::MarketRepr::Interval`]) instead of the flat
    /// start-ordered list. Like `threads`, an execution knob and **never**
    /// an outcome knob: the two representations are observably identical
    /// (same slots, same minted ids, same iteration order), so the engine
    /// report and event-log hash are byte-identical either way — the A/B
    /// determinism tests pin exactly that. The flag is therefore *omitted*
    /// from the serialized form and from the configuration fingerprint
    /// (decoding always yields the default `true`), which keeps old
    /// checkpoints resumable under either representation. Default on.
    pub interval_market: bool,
}

// Manual serde, replicating the derive's field order for every field
// except `interval_market`, which is deliberately absent from the wire:
// the representation never changes an outcome, so fingerprints and
// checkpoints must not depend on it (a decoded config always carries the
// default `true`; flip it in code for A/B runs).
impl Serialize for EngineConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("cycle_length".to_string(), self.cycle_length.to_value()),
            ("cycles".to_string(), self.cycles.to_value()),
            ("slot_gen".to_string(), self.slot_gen.to_value()),
            ("revocation".to_string(), self.revocation.to_value()),
            ("repair".to_string(), self.repair.to_value()),
            ("iteration".to_string(), self.iteration.to_value()),
            (
                "optimizer_cache".to_string(),
                self.optimizer_cache.to_value(),
            ),
            ("coalesce".to_string(), self.coalesce.to_value()),
            ("vos".to_string(), self.vos.to_value()),
            (
                "completion_fraction".to_string(),
                self.completion_fraction.to_value(),
            ),
            ("slowdown_tau".to_string(), self.slowdown_tau.to_value()),
            ("threads".to_string(), self.threads.to_value()),
            ("arrivals".to_string(), self.arrivals.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for EngineConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(EngineConfig {
            cycle_length: Deserialize::from_value(serde::get_field(value, "cycle_length")?)?,
            cycles: Deserialize::from_value(serde::get_field(value, "cycles")?)?,
            slot_gen: Deserialize::from_value(serde::get_field(value, "slot_gen")?)?,
            revocation: Deserialize::from_value(serde::get_field(value, "revocation")?)?,
            repair: Deserialize::from_value(serde::get_field(value, "repair")?)?,
            iteration: Deserialize::from_value(serde::get_field(value, "iteration")?)?,
            optimizer_cache: Deserialize::from_value(serde::get_field(value, "optimizer_cache")?)?,
            coalesce: Deserialize::from_value(serde::get_field(value, "coalesce")?)?,
            vos: Deserialize::from_value(serde::get_field(value, "vos")?)?,
            completion_fraction: Deserialize::from_value(serde::get_field(
                value,
                "completion_fraction",
            )?)?,
            slowdown_tau: Deserialize::from_value(serde::get_field(value, "slowdown_tau")?)?,
            threads: Deserialize::from_value(serde::get_field(value, "threads")?)?,
            arrivals: Deserialize::from_value(serde::get_field(value, "arrivals")?)?,
            interval_market: true,
        })
    }
}

impl Default for EngineConfig {
    /// A small continuous-load scenario: 8 cycles of 60 ticks, a Poisson
    /// stream of 40 paper-style jobs, revocation disabled.
    fn default() -> Self {
        EngineConfig {
            cycle_length: 60,
            cycles: 8,
            slot_gen: SlotGenConfig::default(),
            revocation: RevocationConfig::none(),
            repair: RepairPolicy::default(),
            iteration: IterationConfig::default(),
            optimizer_cache: true,
            coalesce: true,
            vos: 3,
            completion_fraction: 0.75,
            slowdown_tau: 10,
            threads: 1,
            arrivals: ArrivalConfig::Poisson {
                mean_interarrival: 12.0,
                jobs: 40,
                job_gen: JobGenConfig::default(),
            },
            interval_market: true,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cycle_length <= 0 {
            return Err(ConfigError::NotPositive {
                field: "cycle_length",
            });
        }
        if self.cycles == 0 {
            return Err(ConfigError::NotPositive { field: "cycles" });
        }
        if self.vos == 0 {
            return Err(ConfigError::NotPositive { field: "vos" });
        }
        if !(self.completion_fraction > 0.0 && self.completion_fraction <= 1.0) {
            return Err(ConfigError::NotAProbability {
                field: "completion_fraction",
            });
        }
        if self.slowdown_tau <= 0 {
            return Err(ConfigError::NotPositive {
                field: "slowdown_tau",
            });
        }
        if self.threads == 0 {
            return Err(ConfigError::NotPositive { field: "threads" });
        }
        self.slot_gen.validate()?;
        self.revocation.validate()?;
        self.arrivals.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        EngineConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_fields_are_named() {
        let bad = EngineConfig {
            cycle_length: 0,
            ..EngineConfig::default()
        };
        assert_eq!(
            bad.validate(),
            Err(ConfigError::NotPositive {
                field: "cycle_length"
            })
        );
        let bad = EngineConfig {
            completion_fraction: 1.5,
            ..EngineConfig::default()
        };
        assert_eq!(
            bad.validate(),
            Err(ConfigError::NotAProbability {
                field: "completion_fraction"
            })
        );
        let bad = EngineConfig {
            threads: 0,
            ..EngineConfig::default()
        };
        assert_eq!(
            bad.validate(),
            Err(ConfigError::NotPositive { field: "threads" })
        );
        let bad = EngineConfig {
            arrivals: ArrivalConfig::Poisson {
                mean_interarrival: 0.0,
                jobs: 10,
                job_gen: JobGenConfig::default(),
            },
            ..EngineConfig::default()
        };
        assert_eq!(
            bad.validate(),
            Err(ConfigError::NotPositive {
                field: "mean_interarrival"
            })
        );
    }

    #[test]
    fn trace_arrivals_validate_tick_scale() {
        let bad = EngineConfig {
            arrivals: ArrivalConfig::Trace {
                trace: Vec::new(),
                import: SwfImportConfig {
                    seconds_per_tick: 0,
                    ..SwfImportConfig::default()
                },
            },
            ..EngineConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
