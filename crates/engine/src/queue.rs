//! The future event queue: a binary min-heap over `(time, seq)`.
//!
//! Events scheduled for the same virtual time pop in insertion order —
//! the `seq` counter is assigned at push time and never reused, so the
//! ordering is total and the engine's event processing order is fully
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ecosched_core::TimePoint;

use crate::event::Event;

/// An event waiting in the queue, keyed for the `(time, seq)` pop order.
#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    time: TimePoint,
    seq: u64,
    event: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // `seq` is unique, so this order is total and consistent with
        // `eq` even though the payload is ignored.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A future-event queue with a deterministic `(time, seq)` pop order.
///
/// `BinaryHeap` is a max-heap, so entries are stored under [`Reverse`]
/// to pop the earliest time first; among equal times the lowest sequence
/// number — the earliest insertion — wins.
///
/// [`Reverse`]: std::cmp::Reverse
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<QueuedEvent>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue. Sequence numbers start at zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at virtual time `time` and returns the sequence
    /// number it was assigned.
    pub fn push(&mut self, time: TimePoint, event: Event) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(std::cmp::Reverse(QueuedEvent { time, seq, event }));
        seq
    }

    /// Pops the earliest event: lowest time, then lowest sequence number.
    pub fn pop(&mut self) -> Option<(TimePoint, u64, Event)> {
        self.heap
            .pop()
            .map(|std::cmp::Reverse(q)| (q.time, q.seq, q.event))
    }

    /// The `(time, seq)` key of the event the next [`Self::pop`] would
    /// return, without removing it. The service-mode pacing loop uses
    /// this to step only the events at or before the current virtual
    /// time.
    #[must_use]
    pub fn peek(&self) -> Option<(TimePoint, u64)> {
        self.heap.peek().map(|std::cmp::Reverse(q)| (q.time, q.seq))
    }

    /// The sequence number the next [`Self::push`] will assign. The
    /// federation's submit path uses this to predict where an injected
    /// arrival will land in the merged `(time, seq, shard)` order.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The queue's resumable state: the next sequence number plus every
    /// queued event in pop order. Non-destructive (works on a clone of the
    /// heap).
    #[must_use]
    pub fn snapshot(&self) -> (u64, Vec<(TimePoint, u64, Event)>) {
        let mut heap = self.heap.clone();
        let mut entries = Vec::with_capacity(heap.len());
        while let Some(std::cmp::Reverse(q)) = heap.pop() {
            entries.push((q.time, q.seq, q.event));
        }
        (self.next_seq, entries)
    }

    /// Rebuilds a queue from a [`Self::snapshot`], preserving the sequence
    /// numbers already assigned (unlike [`Self::push`], which would mint
    /// new ones). Pop order is a pure function of the `(time, seq)` keys,
    /// so the restored queue pops identically to the captured one.
    pub fn restore(
        next_seq: u64,
        entries: impl IntoIterator<Item = (TimePoint, u64, Event)>,
    ) -> Self {
        EventQueue {
            heap: entries
                .into_iter()
                .map(|(time, seq, event)| std::cmp::Reverse(QueuedEvent { time, seq, event }))
                .collect(),
            next_seq,
        }
    }

    /// Number of events still queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ticks: i64) -> TimePoint {
        TimePoint::new(ticks)
    }

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(at(10), Event::CycleTick { cycle: 1 });
        q.push(at(5), Event::JobArrival { job: 0 });
        q.push(at(10), Event::RevocationStrike { strike: 0 });
        q.push(at(5), Event::JobArrival { job: 1 });

        let order: Vec<(i64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, s, _)| (t.ticks(), s))
            .collect();
        assert_eq!(order, vec![(5, 1), (5, 3), (10, 0), (10, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn sequence_numbers_are_never_reused() {
        let mut q = EventQueue::new();
        let a = q.push(at(1), Event::CycleTick { cycle: 0 });
        q.pop();
        let b = q.push(at(1), Event::CycleTick { cycle: 1 });
        assert!(b > a);
        assert_eq!(q.len(), 1);
    }
}
