//! Engine-level observability: live counters, gauges, and cycle spans.
//!
//! [`EngineObs`] is the engine's recorder handle — runtime state like
//! the `Parallelism` worker budget, never serialized, absent from
//! [`Engine::config_fingerprint`](crate::Engine::config_fingerprint)
//! and from checkpoints. Every method is a no-op when observability is
//! off, and a recorder-on run is byte-identical to a recorder-off run
//! (pinned by the `obs_ab` integration tests).
//!
//! The ids are registered once at startup ([`EngineIds::register`]),
//! optionally labelled with a federation shard index, so a sharded
//! daemon exposes one metric family with per-shard series.

use std::sync::Arc;

use ecosched_obs::{CounterId, GaugeId, Recorder, RegistryBuilder};
use ecosched_optimize::OptStats;
use ecosched_select::SearchStats;

use crate::report::EngineReport;

/// Dense metric ids for one engine instance.
#[derive(Debug, Clone)]
pub struct EngineIds {
    // -- event-loop counters (deltas of the run report) ----------------
    events: CounterId,
    jobs_arrived: CounterId,
    jobs_scheduled: CounterId,
    jobs_completed: CounterId,
    revocations: CounterId,
    leases_broken: CounterId,
    failovers: CounterId,
    repairs: CounterId,
    full_rescans: CounterId,
    repostponed: CounterId,
    stale_completions: CounterId,
    slots_coalesced: CounterId,
    // -- per-cycle select/optimize counters -----------------------------
    cycles: CounterId,
    scan_slots_examined: CounterId,
    scan_slots_admitted: CounterId,
    scan_acceptance_tests: CounterId,
    scan_windows_found: CounterId,
    scan_passes: CounterId,
    opt_solves: CounterId,
    opt_rows_reused: CounterId,
    opt_rows_rebuilt: CounterId,
    opt_rows_extended: CounterId,
    opt_frontier_reused: CounterId,
    opt_frontier_rebuilt: CounterId,
    // -- gauges ---------------------------------------------------------
    backlog: GaugeId,
    queue_depth: GaugeId,
    active_leases: GaugeId,
    vacant_slots: GaugeId,
    virtual_time: GaugeId,
    utilization: GaugeId,
    cycle_mean_wait: GaugeId,
}

impl EngineIds {
    /// Registers the engine metric family, optionally labelled with a
    /// shard index (federation mode).
    #[must_use]
    pub fn register(b: &mut RegistryBuilder, shard: Option<u32>) -> EngineIds {
        let shard_value = shard.map(|s| s.to_string());
        let labels: Vec<(&str, &str)> = match &shard_value {
            Some(v) => vec![("shard", v.as_str())],
            None => Vec::new(),
        };
        let l = labels.as_slice();
        let c = |b: &mut RegistryBuilder, name: &str, help: &str| b.counter_with(name, help, l);
        let g = |b: &mut RegistryBuilder, name: &str, help: &str| b.gauge_with(name, help, l);
        EngineIds {
            events: c(b, "ecosched_engine_events_total", "Events processed"),
            jobs_arrived: c(b, "ecosched_engine_jobs_arrived_total", "Jobs arrived"),
            jobs_scheduled: c(
                b,
                "ecosched_engine_jobs_scheduled_total",
                "Lease commitments at cycle ticks",
            ),
            jobs_completed: c(
                b,
                "ecosched_engine_jobs_completed_total",
                "Leases run to completion",
            ),
            revocations: c(
                b,
                "ecosched_engine_revocations_total",
                "Slot revocations drawn by the fault model",
            ),
            leases_broken: c(
                b,
                "ecosched_engine_leases_broken_total",
                "Active leases broken by a strike",
            ),
            failovers: c(
                b,
                "ecosched_engine_repair_failovers_total",
                "Broken leases recovered by adopting a surviving alternative (tier 1)",
            ),
            repairs: c(
                b,
                "ecosched_engine_repair_searches_total",
                "Broken leases recovered by repair search (tiers 2/2.5)",
            ),
            full_rescans: c(
                b,
                "ecosched_engine_repair_full_rescans_total",
                "Full-rescan repair attempts (tier 2.5)",
            ),
            repostponed: c(
                b,
                "ecosched_engine_repair_repostponed_total",
                "Broken leases returned to the pending queue (tier 3)",
            ),
            stale_completions: c(
                b,
                "ecosched_engine_stale_completions_total",
                "Completion events for already-replaced leases",
            ),
            slots_coalesced: c(
                b,
                "ecosched_engine_slots_coalesced_total",
                "Vacant slots absorbed by cycle-commit coalescing",
            ),
            cycles: c(b, "ecosched_engine_cycles_total", "Scheduling cycles run"),
            scan_slots_examined: c(
                b,
                "ecosched_engine_scan_slots_examined_total",
                "Slots examined by the alternatives search",
            ),
            scan_slots_admitted: c(
                b,
                "ecosched_engine_scan_slots_admitted_total",
                "Slots admitted into candidate pools",
            ),
            scan_acceptance_tests: c(
                b,
                "ecosched_engine_scan_acceptance_tests_total",
                "Window acceptance tests evaluated",
            ),
            scan_windows_found: c(
                b,
                "ecosched_engine_scan_windows_found_total",
                "Windows found by the alternatives search",
            ),
            scan_passes: c(
                b,
                "ecosched_engine_scan_passes_total",
                "Alternatives-search passes over the batch",
            ),
            opt_solves: c(
                b,
                "ecosched_engine_opt_solves_total",
                "Combination-optimizer solves",
            ),
            opt_rows_reused: c(
                b,
                "ecosched_engine_opt_rows_reused_total",
                "DP rows served from the incremental cache (hits)",
            ),
            opt_rows_rebuilt: c(
                b,
                "ecosched_engine_opt_rows_rebuilt_total",
                "DP rows rebuilt from scratch (misses)",
            ),
            opt_rows_extended: c(
                b,
                "ecosched_engine_opt_rows_extended_total",
                "DP rows extended from a cached prefix",
            ),
            opt_frontier_reused: c(
                b,
                "ecosched_engine_opt_frontier_reused_total",
                "Pareto frontiers served from cache",
            ),
            opt_frontier_rebuilt: c(
                b,
                "ecosched_engine_opt_frontier_rebuilt_total",
                "Pareto frontiers rebuilt",
            ),
            backlog: g(b, "ecosched_engine_backlog", "Pending jobs"),
            queue_depth: g(
                b,
                "ecosched_engine_event_queue_depth",
                "Events waiting in the queue",
            ),
            active_leases: g(b, "ecosched_engine_active_leases", "Leases in flight"),
            vacant_slots: g(b, "ecosched_engine_vacant_slots", "Vacant market slots"),
            virtual_time: g(
                b,
                "ecosched_engine_virtual_time",
                "Last processed event tick",
            ),
            utilization: g(
                b,
                "ecosched_engine_utilization",
                "Busy node-ticks over published node-ticks so far",
            ),
            cycle_mean_wait: g(
                b,
                "ecosched_engine_cycle_mean_wait",
                "Mean wait (ticks) of the jobs committed by the last cycle",
            ),
        }
    }
}

/// Point-in-time copy of the run report's monotone counters, taken
/// before an event handler runs so the per-event delta can be recorded
/// after it — regardless of which arm (or early return) it took.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportSnap {
    jobs_arrived: u64,
    jobs_scheduled: u64,
    jobs_completed: u64,
    revocations: u64,
    leases_broken: u64,
    failovers: u64,
    repairs: u64,
    full_rescans: u64,
    repostponed: u64,
    stale_completions: u64,
    slots_coalesced: u64,
}

impl ReportSnap {
    fn of(report: &EngineReport) -> ReportSnap {
        ReportSnap {
            jobs_arrived: report.jobs_arrived,
            jobs_scheduled: report.jobs_scheduled,
            jobs_completed: report.jobs_completed,
            revocations: report.revocations,
            leases_broken: report.leases_broken,
            failovers: report.failovers,
            repairs: report.repairs,
            full_rescans: report.full_rescans,
            repostponed: report.repostponed,
            stale_completions: report.stale_completions,
            slots_coalesced: report.slots_coalesced,
        }
    }
}

#[derive(Debug)]
struct EngineObsInner {
    rec: Recorder,
    ids: EngineIds,
}

/// The engine's observability handle; off by default.
#[derive(Debug, Clone, Default)]
pub struct EngineObs {
    inner: Option<Arc<EngineObsInner>>,
}

/// Per-step gauge values pushed out of the event loop (the engine owns
/// the private state; observability only sees these numbers).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StepGauges {
    pub(crate) now: i64,
    pub(crate) backlog: usize,
    pub(crate) queue_depth: usize,
    pub(crate) active_leases: usize,
    pub(crate) vacant_slots: usize,
    pub(crate) utilization: f64,
}

impl EngineObs {
    /// The disabled handle.
    #[must_use]
    pub fn off() -> EngineObs {
        EngineObs { inner: None }
    }

    /// Binds registered ids to a recorder.
    #[must_use]
    pub fn new(rec: Recorder, ids: EngineIds) -> EngineObs {
        if !rec.is_on() {
            return EngineObs::off();
        }
        EngineObs {
            inner: Some(Arc::new(EngineObsInner { rec, ids })),
        }
    }

    /// Whether recording is enabled.
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// The underlying recorder, when on.
    #[must_use]
    pub fn recorder(&self) -> Option<&Recorder> {
        self.inner.as_deref().map(|i| &i.rec)
    }

    /// Snapshot of the report counters before an event handler runs;
    /// `None` when off (so the off path does no copying).
    pub(crate) fn pre_step(&self, report: &EngineReport) -> Option<ReportSnap> {
        self.inner.as_ref().map(|_| ReportSnap::of(report))
    }

    /// Records one processed event: report-counter deltas plus the
    /// per-step gauges.
    pub(crate) fn post_step(
        &self,
        snap: Option<ReportSnap>,
        report: &EngineReport,
        gauges: StepGauges,
    ) {
        let (Some(inner), Some(prev)) = (self.inner.as_deref(), snap) else {
            return;
        };
        let rec = &inner.rec;
        let ids = &inner.ids;
        rec.inc(ids.events);
        rec.add(ids.jobs_arrived, report.jobs_arrived - prev.jobs_arrived);
        rec.add(
            ids.jobs_scheduled,
            report.jobs_scheduled - prev.jobs_scheduled,
        );
        rec.add(
            ids.jobs_completed,
            report.jobs_completed - prev.jobs_completed,
        );
        rec.add(ids.revocations, report.revocations - prev.revocations);
        rec.add(ids.leases_broken, report.leases_broken - prev.leases_broken);
        rec.add(ids.failovers, report.failovers - prev.failovers);
        rec.add(ids.repairs, report.repairs - prev.repairs);
        rec.add(ids.full_rescans, report.full_rescans - prev.full_rescans);
        rec.add(ids.repostponed, report.repostponed - prev.repostponed);
        rec.add(
            ids.stale_completions,
            report.stale_completions - prev.stale_completions,
        );
        rec.add(
            ids.slots_coalesced,
            report.slots_coalesced - prev.slots_coalesced,
        );
        rec.set(ids.backlog, gauges.backlog as f64);
        rec.set(ids.queue_depth, gauges.queue_depth as f64);
        rec.set(ids.active_leases, gauges.active_leases as f64);
        rec.set(ids.vacant_slots, gauges.vacant_slots as f64);
        rec.set(ids.virtual_time, gauges.now as f64);
        rec.set(ids.utilization, gauges.utilization);
    }

    /// Records one scheduling cycle: scan and optimizer work counters
    /// plus a `cycle` span with `scan` / `optimize` / `commit` children.
    pub(crate) fn on_cycle(
        &self,
        now: i64,
        search: &SearchStats,
        opt: &OptStats,
        batch: usize,
        committed: usize,
        mean_wait: f64,
    ) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let rec = &inner.rec;
        let ids = &inner.ids;
        rec.inc(ids.cycles);
        rec.add(ids.scan_slots_examined, search.scan.slots_examined);
        rec.add(ids.scan_slots_admitted, search.scan.slots_admitted);
        rec.add(ids.scan_acceptance_tests, search.scan.acceptance_tests);
        rec.add(ids.scan_windows_found, search.scan.windows_found);
        rec.add(ids.scan_passes, search.passes);
        rec.add(ids.opt_solves, opt.solves);
        rec.add(ids.opt_rows_reused, opt.rows_reused);
        rec.add(ids.opt_rows_rebuilt, opt.rows_rebuilt);
        rec.add(ids.opt_rows_extended, opt.rows_extended);
        rec.add(ids.opt_frontier_reused, opt.frontier_reused);
        rec.add(ids.opt_frontier_rebuilt, opt.frontier_rebuilt);
        rec.set(ids.cycle_mean_wait, mean_wait);
        let cycle = rec.span(now, "cycle", None, batch as u64);
        rec.span(now, "scan", cycle, search.scan.slots_examined);
        rec.span(now, "optimize", cycle, opt.solves);
        rec.span(now, "commit", cycle, committed as u64);
    }

    /// Records one revocation strike's repair pass as a span.
    pub(crate) fn on_repair(&self, now: i64, broken: usize) {
        if let Some(inner) = self.inner.as_deref() {
            inner.rec.span(now, "repair", None, broken as u64);
        }
    }
}
