//! The discrete-event engine: a virtual clock driving the batch pipeline
//! under continuous, trace- or Poisson-driven load.
//!
//! The engine owns one seeded RNG and one event queue. Every state change
//! happens inside an event handler, handlers run in the queue's
//! deterministic `(time, seq)` order, and every draw happens in handler
//! order — so a run is a pure function of `(config, seed)` and two
//! identically seeded runs produce byte-identical event logs and reports.
//!
//! Per [`crate::event::Event`]:
//!
//! * `JobArrival` feeds the pending queue;
//! * `SlotPublished` adds a fresh batch of vacant slots (re-homed onto
//!   fresh nodes and shifted to the current virtual time);
//! * `CycleTick` snapshots the live market (clipping slots to the
//!   future), runs the existing pipeline — alternatives search, Eq.
//!   (2)/(3) VO limits, combination optimization — and commits the chosen
//!   windows as leases with their surviving alternatives attached;
//! * `RevocationStrike` draws faults against the *live* state (vacant
//!   slots plus active leases, via `RevocationModel::draw_live`) and runs
//!   the three-tier repair pass on every broken lease;
//! * `LeaseCompleted` retires a lease and returns its unused tail
//!   capacity to the vacant list through a sorted merge
//!   (`SlotList::from_sorted_slots`);
//! * `SlotExpired` sweeps fully elapsed vacant slots.

use std::collections::BTreeMap;

use ecosched_core::{
    Batch, Job, JobId, Lease, NodeId, ResourceRequest, Slot, SlotList, Span, TimeDelta, TimePoint,
    Window,
};
use ecosched_optimize::IncrementalOptimizer;
use ecosched_select::{repair_search, try_adopt_window, ScanStats, SlotSelector};
use ecosched_sim::swf::batch_from_swf;
use ecosched_sim::{
    run_iteration, run_iteration_cached, ConfigError, IterationError, JobGenerator,
    RevocationModel, SlotGenerator,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::config::{ArrivalConfig, EngineConfig};
use crate::event::{Event, EventLog};
use crate::queue::EventQueue;
use crate::report::{CyclePoint, EngineReport};

/// Errors from an engine run.
#[derive(Debug)]
pub enum EngineError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The scheduling pipeline failed inside a cycle.
    Iteration(IterationError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "invalid engine configuration: {e}"),
            EngineError::Iteration(e) => write!(f, "scheduling cycle failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            EngineError::Iteration(e) => Some(e),
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<IterationError> for EngineError {
    fn from(e: IterationError) -> Self {
        EngineError::Iteration(e)
    }
}

/// The outcome of one engine run: aggregate metrics plus the full event
/// log the determinism contract is checked against.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRun {
    /// Aggregate and per-cycle metrics.
    pub report: EngineReport,
    /// Every processed event, in order.
    pub log: EventLog,
}

/// A job waiting to be scheduled.
#[derive(Debug, Clone, Copy)]
struct PendingJob {
    id: u32,
    arrival: TimePoint,
    vo: u32,
    request: ResourceRequest,
}

/// A committed lease with everything repair and completion need.
#[derive(Debug, Clone)]
struct ActiveLease {
    job: u32,
    arrival: TimePoint,
    vo: u32,
    request: ResourceRequest,
    window: Window,
    /// Surviving pre-computed alternatives, for tier-1 failover.
    alternatives: Vec<Window>,
    /// How long the lease actually runs (`completion_fraction` of the
    /// planned length).
    actual_length: TimeDelta,
}

/// The discrete-event metascheduling engine.
#[derive(Debug, Clone)]
pub struct Engine<S> {
    config: EngineConfig,
    selector: S,
}

impl<S: SlotSelector + Copy> Engine<S> {
    /// Creates an engine over a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first invalid field.
    pub fn new(config: EngineConfig, selector: S) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Engine { config, selector })
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the simulation to queue exhaustion.
    ///
    /// Deterministic: the run is a pure function of `(config, seed)`, and
    /// two identical calls produce byte-identical [`EngineRun`]s.
    ///
    /// # Errors
    ///
    /// Propagates [`IterationError`] from any scheduling cycle.
    pub fn run(&self, seed: u64) -> Result<EngineRun, EngineError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut queue = EventQueue::new();
        let mut log = EventLog::new();

        // -- setup: arrivals, then the cycle skeleton -------------------
        let arrivals = self.arrivals(&mut rng);
        for (i, (t, _)) in arrivals.iter().enumerate() {
            queue.push(*t, Event::JobArrival { job: i as u32 });
        }
        let slot_gen = SlotGenerator::new(self.config.slot_gen);
        let strikes = self.config.revocation.is_enabled();
        let revocation = RevocationModel::new(self.config.revocation);
        for k in 0..self.config.cycles {
            let t = TimePoint::new(i64::from(k) * self.config.cycle_length);
            let count = rng
                .gen_range(self.config.slot_gen.slot_count.lo..=self.config.slot_gen.slot_count.hi)
                as u32;
            // Publication precedes the tick at equal time (lower seq).
            queue.push(t, Event::SlotPublished { round: k, count });
            queue.push(t, Event::CycleTick { cycle: k });
            if strikes {
                let mid = t + TimeDelta::new(self.config.cycle_length / 2);
                queue.push(mid, Event::RevocationStrike { strike: k });
            }
        }

        // -- live state -------------------------------------------------
        let mut vacant = SlotList::new();
        let mut next_node: u32 = 0;
        let mut pending: Vec<PendingJob> = Vec::new();
        let mut leases: BTreeMap<u64, ActiveLease> = BTreeMap::new();
        let mut next_lease: u64 = 0;
        // One optimizer for the whole run: cycle N+1 reuses the dynamic
        // programming rows cycle N left behind wherever the batch suffix
        // is unchanged. With `optimizer_cache` off every tick solves from
        // scratch instead; both paths commit identical leases.
        let mut optimizer = IncrementalOptimizer::new();
        let mut report = EngineReport {
            vo_spend: vec![0.0; self.config.vos as usize],
            ..EngineReport::default()
        };
        let mut published_ticks: i64 = 0;
        let mut busy_ticks: i64 = 0;
        let mut wait_sum: f64 = 0.0;
        let mut slowdown_sum: f64 = 0.0;

        while let Some((now, seq, event)) = queue.pop() {
            log.push(now.ticks(), seq, event);
            match event {
                Event::JobArrival { job } => {
                    let (arrival, request) = arrivals[job as usize];
                    report.jobs_arrived += 1;
                    pending.push(PendingJob {
                        id: job,
                        arrival,
                        vo: job % self.config.vos,
                        request,
                    });
                }

                Event::SlotPublished { count, .. } => {
                    let generated = slot_gen.generate_exact(&mut rng, count as usize);
                    for s in generated.iter() {
                        let id = vacant.mint_id();
                        let node = NodeId::new(next_node);
                        next_node += 1;
                        let span = Span::new(now + (s.start() - TimePoint::ZERO), {
                            now + (s.end() - TimePoint::ZERO)
                        })
                        .expect("generated spans are non-empty");
                        let slot = Slot::new(id, node, s.perf(), s.price(), span)
                            .expect("generated slots are non-empty");
                        published_ticks += span.length().ticks();
                        queue.push(span.end(), Event::SlotExpired { slot: id.raw() });
                        vacant
                            .insert(slot)
                            .expect("fresh nodes cannot collide with existing slots");
                    }
                }

                Event::SlotExpired { .. } => {
                    // The id is only a trigger: sweep everything that has
                    // fully elapsed (remnants carved from expired slots
                    // carry fresh ids but the same end bound).
                    let dead: Vec<(NodeId, Span)> = vacant
                        .iter()
                        .filter(|s| s.end() <= now)
                        .map(|s| (s.node(), s.span()))
                        .collect();
                    for (node, span) in dead {
                        vacant.remove_region(node, span);
                    }
                }

                Event::CycleTick { cycle } => {
                    let market = clip_to_now(&vacant, now);
                    let market_slots = market.len();
                    if pending.is_empty() {
                        report.cycles.push(CyclePoint {
                            cycle,
                            time: now.ticks(),
                            market_slots,
                            batch_size: 0,
                            scheduled: 0,
                            postponed: 0,
                            mean_wait: 0.0,
                            spend: 0.0,
                        });
                        continue;
                    }

                    // Pending order is (arrival, id): the longest-waiting
                    // job takes the highest batch priority.
                    let jobs: Vec<Job> = pending
                        .iter()
                        .enumerate()
                        .map(|(i, p)| Job::new(JobId::new(i as u32), p.request))
                        .collect();
                    let batch = Batch::from_jobs(jobs).expect("re-keyed ids are unique");
                    let result = if self.config.optimizer_cache {
                        run_iteration_cached(
                            self.selector,
                            &market,
                            &batch,
                            &self.config.iteration,
                            &mut optimizer,
                        )?
                    } else {
                        run_iteration(self.selector, &market, &batch, &self.config.iteration)?
                    };
                    report.opt.merge(&result.opt);
                    let per_job = result.search.alternatives.per_job();

                    let mut chosen: Vec<Option<usize>> = vec![None; batch.len()];
                    if let Some(assignment) = &result.assignment {
                        for choice in assignment.choices() {
                            chosen[choice.job.index() as usize] = Some(choice.alternative);
                        }
                    }

                    // The post-commit vacant list: whatever the search left,
                    // plus every non-chosen alternative released back (they
                    // stay adoptable for failover until something else
                    // consumes their time).
                    let mut exec = result.search.remaining.clone();
                    for (i, ja) in per_job.iter().enumerate() {
                        for (alt_idx, alt) in ja.alternatives().iter().enumerate() {
                            if chosen[i] == Some(alt_idx) {
                                continue;
                            }
                            release_window(&mut exec, alt.window());
                        }
                    }

                    let mut committed: usize = 0;
                    let mut cycle_wait: i64 = 0;
                    let mut cycle_spend: f64 = 0.0;
                    for (i, p) in pending.iter().enumerate() {
                        let Some(alt_idx) = chosen[i] else { continue };
                        let window = per_job[i].alternatives()[alt_idx].window().clone();
                        let alternatives: Vec<Window> = per_job[i]
                            .alternatives()
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != alt_idx)
                            .map(|(_, a)| a.window().clone())
                            .collect();
                        let cost = window.total_cost().to_f64();
                        cycle_wait += (window.start() - p.arrival).ticks();
                        cycle_spend += cost;
                        report.vo_spend[p.vo as usize] += cost;
                        committed += 1;
                        self.commit_lease(
                            &mut queue,
                            &mut leases,
                            &mut next_lease,
                            ActiveLeaseSeed {
                                job: p.id,
                                arrival: p.arrival,
                                vo: p.vo,
                                request: p.request,
                                window,
                                alternatives,
                            },
                        );
                    }
                    report.jobs_scheduled += committed as u64;

                    let carried: Vec<PendingJob> = pending
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| chosen[*i].is_none())
                        .map(|(_, p)| *p)
                        .collect();
                    report.cycles.push(CyclePoint {
                        cycle,
                        time: now.ticks(),
                        market_slots,
                        batch_size: pending.len(),
                        scheduled: committed,
                        postponed: carried.len(),
                        mean_wait: if committed > 0 {
                            cycle_wait as f64 / committed as f64
                        } else {
                            0.0
                        },
                        spend: cycle_spend,
                    });
                    pending = carried;
                    vacant = exec;
                }

                Event::RevocationStrike { .. } => {
                    // Sample against the live surface: vacant slots plus
                    // active lease regions, so strikes can land on windows
                    // carved by earlier repairs.
                    let lease_views: Vec<Lease> = leases
                        .values()
                        .map(|al| Lease::planned(JobId::new(al.job), al.window.clone()))
                        .collect();
                    let revocations = revocation.draw_live(&vacant, &lease_views, &mut rng);
                    report.revocations += revocations.len() as u64;
                    if revocations.is_empty() {
                        continue;
                    }
                    for r in &revocations {
                        vacant.remove_region(r.node, r.span);
                    }

                    let broken: Vec<u64> = leases
                        .keys()
                        .copied()
                        .zip(lease_views.iter())
                        .filter(|(_, view)| revocations.iter().any(|r| view.broken_by(r)))
                        .map(|(id, _)| id)
                        .collect();

                    // Broken leases release their surviving future
                    // fragments first, so later repairs can reuse the time.
                    for id in &broken {
                        let al = &leases[id];
                        for ws in al.window.slots() {
                            let mut fragments = vec![al.window.used_span(ws)];
                            for r in revocations.iter().filter(|r| r.node == ws.node()) {
                                let mut survivors = Vec::new();
                                for frag in fragments {
                                    let (left, right) = frag.subtract(r.span);
                                    survivors.extend(left);
                                    survivors.extend(right);
                                }
                                fragments = survivors;
                            }
                            for frag in fragments {
                                if frag.end() <= now {
                                    continue; // already elapsed
                                }
                                let span = Span::new(frag.start().max(now), frag.end())
                                    .expect("clipped fragments are non-empty");
                                let slot_id = vacant.mint_id();
                                let slot =
                                    Slot::new(slot_id, ws.node(), ws.perf(), ws.price(), span)
                                        .expect("surviving fragments are non-empty");
                                vacant
                                    .insert(slot)
                                    .expect("lease regions were held exclusively");
                            }
                        }
                    }
                    report.leases_broken += broken.len() as u64;

                    // Three-tier recovery, in lease-id (commitment) order.
                    for id in broken {
                        let original = leases.remove(&id).expect("broken ids are live");
                        let mut attempts: u32 = 0;
                        let mut recovered: Option<(Window, Vec<Window>, bool)> = None;

                        // Tier 1: adopt a surviving future alternative.
                        for (alt_idx, alt) in original.alternatives.iter().enumerate() {
                            if attempts >= self.config.repair.max_attempts {
                                break;
                            }
                            if alt.start() < now {
                                continue; // cannot launch in the past
                            }
                            attempts += 1;
                            if try_adopt_window(alt, &mut vacant, &revocations).is_ok() {
                                let rest: Vec<Window> = original
                                    .alternatives
                                    .iter()
                                    .enumerate()
                                    .filter(|(j, _)| *j != alt_idx)
                                    .map(|(_, w)| w.clone())
                                    .collect();
                                recovered = Some((alt.clone(), rest, true));
                                break;
                            }
                        }

                        // Tier 2: bounded repair search from the broken
                        // window's start (never the past).
                        if recovered.is_none() && attempts < self.config.repair.max_attempts {
                            let mut scan = ScanStats::new();
                            let resume_at = original.window.start().max(now);
                            if let Some(window) = repair_search(
                                &self.selector,
                                &original.request,
                                resume_at,
                                &vacant,
                                &mut scan,
                            ) {
                                vacant
                                    .subtract_window(&window)
                                    .expect("repair windows are carved from the vacant list");
                                recovered = Some((window, Vec::new(), false));
                            }
                        }

                        // Tier 3: back to the pending queue.
                        match recovered {
                            Some((window, alternatives, failover)) => {
                                if failover {
                                    report.failovers += 1;
                                } else {
                                    report.repairs += 1;
                                }
                                // The old lease id dies here; its pending
                                // completion event goes stale.
                                self.commit_lease(
                                    &mut queue,
                                    &mut leases,
                                    &mut next_lease,
                                    ActiveLeaseSeed {
                                        job: original.job,
                                        arrival: original.arrival,
                                        vo: original.vo,
                                        request: original.request,
                                        window,
                                        alternatives,
                                    },
                                );
                            }
                            None => {
                                report.repostponed += 1;
                                pending.push(PendingJob {
                                    id: original.job,
                                    arrival: original.arrival,
                                    vo: original.vo,
                                    request: original.request,
                                });
                                pending.sort_by_key(|p| (p.arrival, p.id));
                            }
                        }
                    }
                }

                Event::LeaseCompleted { lease } => {
                    let Some(al) = leases.remove(&lease) else {
                        // The lease broke and was replaced after this event
                        // was scheduled.
                        report.stale_completions += 1;
                        continue;
                    };
                    report.jobs_completed += 1;
                    let run = al.actual_length.ticks();
                    let wait = (al.window.start() - al.arrival).ticks();
                    wait_sum += wait as f64;
                    slowdown_sum +=
                        ((wait + run) as f64 / run.max(self.config.slowdown_tau) as f64).max(1.0);

                    // Unused tails (members faster than the elapsed run, or
                    // the completion-fraction shortfall) return to the
                    // vacant list via a sorted merge.
                    let mut tails: Vec<Slot> = Vec::new();
                    for ws in al.window.slots() {
                        busy_ticks += ws.runtime().ticks().min(run);
                        if ws.runtime().ticks() > run {
                            let span = Span::new(
                                al.window.start() + al.actual_length,
                                al.window.start() + ws.runtime(),
                            )
                            .expect("tails are non-empty");
                            let id = vacant.mint_id();
                            tails.push(
                                Slot::new(id, ws.node(), ws.perf(), ws.price(), span)
                                    .expect("tails are non-empty"),
                            );
                        }
                    }
                    if !tails.is_empty() {
                        let mut merged: Vec<Slot> = vacant.iter().copied().chain(tails).collect();
                        merged.sort_by_key(|s| (s.start(), s.id()));
                        vacant = SlotList::from_sorted_slots(merged)
                            .expect("returned tails are disjoint from the vacant list");
                    }
                }
            }
        }

        report.backlog = (pending.len() + leases.len()) as u64;
        if report.jobs_completed > 0 {
            report.mean_wait = wait_sum / report.jobs_completed as f64;
            report.mean_bounded_slowdown = slowdown_sum / report.jobs_completed as f64;
        }
        if published_ticks > 0 {
            report.utilization = busy_ticks as f64 / published_ticks as f64;
        }
        report.event_count = log.len() as u64;
        report.log_hash = log.fnv1a_hash();
        Ok(EngineRun { report, log })
    }

    /// Commits a window as a fresh lease and schedules its completion.
    fn commit_lease(
        &self,
        queue: &mut EventQueue,
        leases: &mut BTreeMap<u64, ActiveLease>,
        next_lease: &mut u64,
        seed: ActiveLeaseSeed,
    ) {
        let planned = seed.window.length().ticks();
        let actual =
            ((planned as f64 * self.config.completion_fraction).ceil() as i64).clamp(1, planned);
        let lease_id = *next_lease;
        *next_lease += 1;
        queue.push(
            seed.window.start() + TimeDelta::new(actual),
            Event::LeaseCompleted { lease: lease_id },
        );
        leases.insert(
            lease_id,
            ActiveLease {
                job: seed.job,
                arrival: seed.arrival,
                vo: seed.vo,
                request: seed.request,
                window: seed.window,
                alternatives: seed.alternatives,
                actual_length: TimeDelta::new(actual),
            },
        );
    }

    /// Precomputes the `(arrival time, request)` stream.
    fn arrivals(&self, rng: &mut ChaCha8Rng) -> Vec<(TimePoint, ResourceRequest)> {
        match &self.config.arrivals {
            ArrivalConfig::Poisson {
                mean_interarrival,
                jobs,
                job_gen,
            } => {
                let job_gen = JobGenerator::new(*job_gen);
                let mut t = 0.0f64;
                let mut out = Vec::with_capacity(*jobs as usize);
                for _ in 0..*jobs {
                    let u: f64 = rng.gen_range(0.0..=1.0);
                    // Inverse-CDF exponential draw, clamped away from
                    // ln(0).
                    t += -((1.0 - u).max(1e-12)).ln() * mean_interarrival;
                    let batch = job_gen.generate_exact(rng, 1);
                    out.push((TimePoint::new(t as i64), *batch.as_slice()[0].request()));
                }
                out
            }
            ArrivalConfig::Trace { trace, import } => {
                let batch = batch_from_swf(trace, import, rng);
                // Replicate the importer's keep-filter to recover each
                // kept job's arrival tick.
                let limit = if import.max_jobs == 0 {
                    usize::MAX
                } else {
                    import.max_jobs
                };
                let times: Vec<TimePoint> = trace
                    .iter()
                    .take(limit)
                    .filter(|j| j.requested_time / import.seconds_per_tick > 0)
                    .map(|j| TimePoint::new(j.submit / import.seconds_per_tick))
                    .collect();
                assert_eq!(
                    times.len(),
                    batch.len(),
                    "arrival filter must mirror the importer"
                );
                times
                    .into_iter()
                    .zip(batch.as_slice().iter().map(|j| *j.request()))
                    .collect()
            }
        }
    }
}

/// The fields [`Engine::commit_lease`] needs to mint an [`ActiveLease`].
#[derive(Debug)]
struct ActiveLeaseSeed {
    job: u32,
    arrival: TimePoint,
    vo: u32,
    request: ResourceRequest,
    window: Window,
    alternatives: Vec<Window>,
}

/// The market snapshot a cycle schedules over: every vacant slot clipped
/// to `[now, end)`, dropping fully elapsed ones. Ids are preserved, so the
/// clipped slots stay in strictly increasing `(start, id)` order after the
/// sort and the `O(m)` [`SlotList::from_sorted_slots`] constructor
/// applies.
fn clip_to_now(vacant: &SlotList, now: TimePoint) -> SlotList {
    let mut clipped: Vec<Slot> = Vec::with_capacity(vacant.len());
    for s in vacant.iter() {
        if s.end() <= now {
            continue;
        }
        if s.start() >= now {
            clipped.push(*s);
        } else {
            let span = Span::new(now, s.end()).expect("end is after now");
            clipped.push(
                s.with_span(s.id(), span)
                    .expect("clipped spans are non-empty"),
            );
        }
    }
    clipped.sort_by_key(|s| (s.start(), s.id()));
    SlotList::from_sorted_slots(clipped).expect("clipping preserves disjointness and unique ids")
}

/// Returns a window's regions to `list` as freshly minted slots.
fn release_window(list: &mut SlotList, window: &Window) {
    for ws in window.slots() {
        let id = list.mint_id();
        let slot = Slot::new(id, ws.node(), ws.perf(), ws.price(), window.used_span(ws))
            .expect("window members have positive runtimes");
        list.insert(slot)
            .expect("released regions were carved from this list");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use ecosched_select::{Alp, Amp};
    use ecosched_sim::RevocationConfig;

    fn small_config() -> EngineConfig {
        EngineConfig {
            cycles: 4,
            arrivals: ArrivalConfig::Poisson {
                mean_interarrival: 10.0,
                jobs: 12,
                job_gen: ecosched_sim::JobGenConfig::default(),
            },
            ..EngineConfig::default()
        }
    }

    #[test]
    fn run_schedules_and_completes_jobs() {
        let engine = Engine::new(small_config(), Amp::new()).unwrap();
        let run = engine.run(7).unwrap();
        assert_eq!(run.report.jobs_arrived, 12);
        assert!(run.report.jobs_scheduled > 0, "nothing scheduled");
        assert!(run.report.jobs_completed > 0, "nothing completed");
        assert_eq!(run.report.cycles.len(), 4);
        assert!(run.report.utilization > 0.0 && run.report.utilization <= 1.0);
        assert_eq!(run.report.event_count, run.log.len() as u64);
        // Accounting: every arrival is scheduled-and-completed, still
        // pending, or holds no lease only because the run ended.
        assert!(run.report.jobs_completed + run.report.backlog <= run.report.jobs_arrived);
    }

    #[test]
    fn log_times_are_monotone() {
        let engine = Engine::new(small_config(), Alp::new()).unwrap();
        let run = engine.run(3).unwrap();
        for pair in run.log.entries.windows(2) {
            assert!(pair[0].time <= pair[1].time, "virtual time went backwards");
        }
    }

    #[test]
    fn vo_spend_matches_cycle_spend() {
        let engine = Engine::new(small_config(), Amp::new()).unwrap();
        let run = engine.run(11).unwrap();
        let by_vo: f64 = run.report.vo_spend.iter().sum();
        let by_cycle: f64 = run.report.cycles.iter().map(|c| c.spend).sum();
        // Repair re-commitments do not add cycle spend, so VO spend can
        // only exceed cycle spend under churn; without churn they match.
        assert!((by_vo - by_cycle).abs() < 1e-6);
    }

    #[test]
    fn churn_breaks_and_recovers_leases() {
        let config = EngineConfig {
            revocation: RevocationConfig::per_slot(0.06),
            ..small_config()
        };
        let engine = Engine::new(config, Amp::new()).unwrap();
        let run = engine.run(5).unwrap();
        assert!(run.report.revocations > 0, "churn must inject faults");
        assert!(
            run.log
                .entries
                .iter()
                .any(|e| matches!(e.event, Event::RevocationStrike { .. })),
            "strikes must be logged"
        );
        assert_eq!(
            run.report.leases_broken,
            run.report.failovers + run.report.repairs + run.report.repostponed,
            "every broken lease ends in a terminal tier"
        );
    }

    #[test]
    fn trace_arrivals_drive_the_engine() {
        let trace = ecosched_sim::swf::parse_swf(
            "1 0 5 3600 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1\n\
             2 60 5 1800 2 -1 -1 2 2400 -1 1 1 1 1 1 1 -1 -1\n\
             3 120 5 1200 1 -1 -1 1 1200 -1 1 1 1 1 1 1 -1 -1\n",
        )
        .unwrap();
        let config = EngineConfig {
            cycles: 3,
            arrivals: ArrivalConfig::Trace {
                trace,
                import: ecosched_sim::swf::SwfImportConfig::default(),
            },
            ..EngineConfig::default()
        };
        let engine = Engine::new(config, Amp::new()).unwrap();
        let run = engine.run(1).unwrap();
        assert_eq!(run.report.jobs_arrived, 3);
        assert!(run.report.jobs_scheduled > 0);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let bad = EngineConfig {
            cycles: 0,
            ..EngineConfig::default()
        };
        assert!(Engine::new(bad, Amp::new()).is_err());
    }
}
