//! The discrete-event engine: a virtual clock driving the batch pipeline
//! under continuous, trace- or Poisson-driven load.
//!
//! The engine owns one seeded RNG and one event queue. Every state change
//! happens inside an event handler, handlers run in the queue's
//! deterministic `(time, seq)` order, and every draw happens in handler
//! order — so a run is a pure function of `(config, seed)` and two
//! identically seeded runs produce byte-identical event logs and reports.
//!
//! Per [`crate::event::Event`]:
//!
//! * `JobArrival` feeds the pending queue;
//! * `SlotPublished` adds a fresh batch of vacant slots (re-homed onto
//!   fresh nodes and shifted to the current virtual time);
//! * `CycleTick` snapshots the live market (clipping slots to the
//!   future), runs the existing pipeline — alternatives search, Eq.
//!   (2)/(3) VO limits, combination optimization — and commits the chosen
//!   windows as leases with their surviving alternatives attached;
//! * `RevocationStrike` draws faults against the *live* state (vacant
//!   slots plus active leases, via `RevocationModel::draw_live`) and runs
//!   the three-tier repair pass on every broken lease;
//! * `LeaseCompleted` retires a lease and returns its unused tail
//!   capacity to the vacant list through a sorted merge
//!   (`SlotList::from_sorted_slots`);
//! * `SlotExpired` sweeps fully elapsed vacant slots.
//!
//! The run loop is decomposed for checkpoint/restore: [`Engine::start`]
//! builds a [`RunState`], [`Engine::step`] processes exactly one event,
//! and [`Engine::finish`] closes the books. [`Engine::run`] is the
//! one-shot composition. Between any two steps, [`Engine::checkpoint`]
//! captures the full resumable state and [`Engine::resume`] rebuilds a
//! `RunState` that continues byte-identically — the foundation the
//! `ecosched-persist` crate's snapshot files and crash-recovery replay
//! are built on.

use std::collections::BTreeMap;

use ecosched_core::{
    Batch, Job, JobId, Lease, MarketRepr, NodeId, ResourceRequest, Revocation, Slot, SlotList,
    Span, TimeDelta, TimePoint, Window,
};
use ecosched_optimize::IncrementalOptimizer;
use ecosched_select::{repair_search, try_adopt_window, RepairError, ScanStats, SlotSelector};
use ecosched_sim::swf::batch_from_swf;
use ecosched_sim::{
    run_iteration_cached_with, run_iteration_with, ConfigError, IterationError, JobGenerator,
    Parallelism, RevocationModel, SlotGenerator,
};
use rand::{Rng, SeedableRng};
use rand_chacha::{ChaCha8Rng, ChaChaState};

use crate::config::{ArrivalConfig, EngineConfig};
use crate::event::{fnv1a_64, Event, EventLog, LogEntry};
use crate::obs::{EngineObs, StepGauges};
use crate::queue::EventQueue;
use crate::report::{CyclePoint, EngineReport};
use crate::state::{
    ArrivalState, EngineCheckpoint, LeaseState, PendingState, QueuedEventState, RngState,
};

/// Errors from an engine run.
#[derive(Debug)]
pub enum EngineError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The scheduling pipeline failed inside a cycle.
    Iteration(IterationError),
    /// A checkpoint was taken under a different configuration or selector
    /// than the engine trying to resume it. Replay convergence is only
    /// guaranteed under the identical `(config, selector)` pair, so
    /// resume refuses rather than silently diverging.
    CheckpointMismatch {
        /// The resuming engine's configuration fingerprint.
        expected: u64,
        /// The fingerprint stored in the checkpoint.
        found: u64,
    },
    /// A checkpoint's contents are structurally invalid (for example an
    /// RNG key of the wrong width). Indicates corruption that slipped
    /// past the container's checksums, or a hand-edited file.
    MalformedCheckpoint {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "invalid engine configuration: {e}"),
            EngineError::Iteration(e) => write!(f, "scheduling cycle failed: {e}"),
            EngineError::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different configuration: \
                 engine fingerprint {expected:016x}, checkpoint fingerprint {found:016x}"
            ),
            EngineError::MalformedCheckpoint { detail } => {
                write!(f, "malformed checkpoint: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            EngineError::Iteration(e) => Some(e),
            EngineError::CheckpointMismatch { .. } | EngineError::MalformedCheckpoint { .. } => {
                None
            }
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<IterationError> for EngineError {
    fn from(e: IterationError) -> Self {
        EngineError::Iteration(e)
    }
}

/// The outcome of one engine run: aggregate metrics plus the full event
/// log the determinism contract is checked against.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRun {
    /// Aggregate and per-cycle metrics.
    pub report: EngineReport,
    /// Every processed event, in order.
    pub log: EventLog,
}

/// A job waiting to be scheduled.
#[derive(Debug, Clone, Copy)]
struct PendingJob {
    id: u32,
    arrival: TimePoint,
    vo: u32,
    request: ResourceRequest,
}

/// Errors from the two-phase reservation protocol (see
/// [`Engine::reserve`]).
#[derive(Debug)]
pub enum ReserveError {
    /// The window no longer fits the vacant market (another reservation,
    /// lease, or revocation consumed part of its regions).
    Stale(RepairError),
    /// No reservation with this id is held.
    Unknown {
        /// The offending reservation id.
        reservation: u64,
    },
    /// The reservation was struck by a revocation between reserve and
    /// commit. Its surviving fragments already returned to the vacant
    /// list; the caller must release every sibling reservation.
    Broken {
        /// The broken reservation's id.
        reservation: u64,
    },
}

impl std::fmt::Display for ReserveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReserveError::Stale(e) => write!(f, "window no longer fits the vacant market: {e}"),
            ReserveError::Unknown { reservation } => {
                write!(f, "no reservation {reservation} is held")
            }
            ReserveError::Broken { reservation } => {
                write!(f, "reservation {reservation} was revoked before commit")
            }
        }
    }
}

impl std::error::Error for ReserveError {}

/// A window held under phase one of the two-phase reservation protocol:
/// carved out of the vacant market but not yet committed as a lease.
///
/// Reservations are deliberately *transient* state: they exist only
/// between a [`Engine::reserve`] and the matching
/// [`Engine::commit_reservation`] / [`Engine::release_reservation`], and
/// a checkpoint must never be taken while one is held (the federation
/// layer completes or aborts the whole two-phase exchange within a
/// single routing action, so its snapshots never see one).
#[derive(Debug, Clone)]
pub struct Reservation {
    window: Window,
    broken: bool,
}

impl Reservation {
    /// The reserved window.
    #[must_use]
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// Whether a revocation strike landed on the reserved regions after
    /// phase one. A broken reservation can only be released.
    #[must_use]
    pub fn is_broken(&self) -> bool {
        self.broken
    }
}

/// A committed lease with everything repair and completion need.
#[derive(Debug, Clone)]
struct ActiveLease {
    job: u32,
    arrival: TimePoint,
    vo: u32,
    request: ResourceRequest,
    window: Window,
    /// Surviving pre-computed alternatives, for tier-1 failover.
    alternatives: Vec<Window>,
    /// How long the lease actually runs (`completion_fraction` of the
    /// planned length).
    actual_length: TimeDelta,
}

/// The live state of an in-flight engine run, between events.
///
/// Produced by [`Engine::start`] (or [`Engine::resume`]), advanced one
/// event at a time by [`Engine::step`], consumed by [`Engine::finish`].
/// All mutation happens through the engine; the state only exposes
/// read-only progress accessors so external drivers (snapshot cadence,
/// fault injection) can decide when to act.
pub struct RunState {
    seed: u64,
    rng: ChaCha8Rng,
    queue: EventQueue,
    log: EventLog,
    arrivals: Vec<(TimePoint, ResourceRequest)>,
    slot_gen: SlotGenerator,
    revocation: RevocationModel,
    vacant: SlotList,
    next_node: u32,
    pending: Vec<PendingJob>,
    leases: BTreeMap<u64, ActiveLease>,
    next_lease: u64,
    // Two-phase reservations in flight. Transient by contract: held only
    // inside one federation routing action, empty whenever a checkpoint
    // is taken, and therefore deliberately absent from EngineCheckpoint.
    reservations: BTreeMap<u64, Reservation>,
    next_reservation: u64,
    reservations_broken: u64,
    // One optimizer for the whole run: cycle N+1 reuses the dynamic
    // programming rows cycle N left behind wherever the batch suffix
    // is unchanged. With `optimizer_cache` off every tick solves from
    // scratch instead; both paths commit identical leases.
    optimizer: IncrementalOptimizer,
    report: EngineReport,
    published_ticks: i64,
    busy_ticks: i64,
    wait_sum: f64,
    slowdown_sum: f64,
}

impl std::fmt::Debug for RunState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunState")
            .field("seed", &self.seed)
            .field("events_processed", &self.log.len())
            .field("events_queued", &self.queue.len())
            .field("pending_jobs", &self.pending.len())
            .field("active_leases", &self.leases.len())
            .finish_non_exhaustive()
    }
}

impl RunState {
    /// The seed the run was started with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The event log so far, in processing order.
    #[must_use]
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> usize {
        self.log.len()
    }

    /// Number of future events still queued. Zero means the run is done.
    #[must_use]
    pub fn events_queued(&self) -> usize {
        self.queue.len()
    }

    /// The most recently processed event, if any.
    #[must_use]
    pub fn last_entry(&self) -> Option<&LogEntry> {
        self.log.entries.last()
    }

    /// The virtual time of the most recently processed event
    /// ([`TimePoint::ZERO`] before the first step). Externally submitted
    /// arrivals are clamped to this floor so log times stay monotone.
    #[must_use]
    pub fn last_time(&self) -> TimePoint {
        self.log
            .entries
            .last()
            .map_or(TimePoint::ZERO, |e| TimePoint::new(e.time))
    }

    /// The virtual time of the next queued event, if any — what a pacing
    /// loop compares against its virtual-clock target.
    #[must_use]
    pub fn next_event_time(&self) -> Option<TimePoint> {
        self.queue.peek().map(|(t, _)| t)
    }

    /// Jobs waiting to be scheduled: pending batch members plus arrivals
    /// injected or precomputed but not yet processed. This is the
    /// backlog the service layer's admission control bounds.
    #[must_use]
    pub fn backlog(&self) -> usize {
        let processed = self.report.jobs_arrived as usize;
        self.pending.len() + self.arrivals.len().saturating_sub(processed)
    }

    /// Number of arrivals known to the run (processed or still queued);
    /// also the id the next [`Engine::submit`] will assign.
    #[must_use]
    pub fn arrivals_len(&self) -> usize {
        self.arrivals.len()
    }

    /// Number of active (committed, not yet completed) leases.
    #[must_use]
    pub fn active_leases(&self) -> usize {
        self.leases.len()
    }

    /// The live vacant-slot market — the state the service layer's
    /// budget/deadline admission test reads.
    #[must_use]
    pub fn vacant(&self) -> &SlotList {
        &self.vacant
    }

    /// The report accumulated so far (final means are only computed by
    /// [`Engine::finish`]).
    #[must_use]
    pub fn report_so_far(&self) -> &EngineReport {
        &self.report
    }

    /// The `(time, seq)` key of the next queued event, if any — what the
    /// federation's merge loop compares across shards to pop the
    /// globally earliest event under `(time, seq, shard)` order.
    #[must_use]
    pub fn next_event_key(&self) -> Option<(i64, u64)> {
        self.queue.peek().map(|(t, seq)| (t.ticks(), seq))
    }

    /// The sequence number the next queued event will receive — what a
    /// submitted arrival would be keyed with if injected right now.
    #[must_use]
    pub fn next_event_seq(&self) -> u64 {
        self.queue.next_seq()
    }

    /// Two-phase reservations currently held (phase one done, neither
    /// committed nor released). Must be zero whenever a checkpoint is
    /// taken.
    #[must_use]
    pub fn reservations_held(&self) -> usize {
        self.reservations.len()
    }

    /// Looks up a held reservation by id.
    #[must_use]
    pub fn reservation(&self, id: u64) -> Option<&Reservation> {
        self.reservations.get(&id)
    }

    /// Reservations broken by revocation strikes over the whole run
    /// (transient diagnostics; not part of the checkpointed report).
    #[must_use]
    pub fn reservations_broken(&self) -> u64 {
        self.reservations_broken
    }
}

/// The discrete-event metascheduling engine.
#[derive(Debug, Clone)]
pub struct Engine<S> {
    config: EngineConfig,
    selector: S,
    /// Observability handle — runtime state like the thread budget:
    /// never serialized, absent from the fingerprint and checkpoints.
    obs: EngineObs,
}

impl<S: SlotSelector + Copy> Engine<S> {
    /// Creates an engine over a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first invalid field.
    pub fn new(config: EngineConfig, selector: S) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Engine {
            config,
            selector,
            obs: EngineObs::off(),
        })
    }

    /// Attaches an observability handle (builder style). Purely an
    /// execution knob: a recorder-on engine produces byte-identical
    /// logs and reports to a recorder-off one.
    #[must_use]
    pub fn with_obs(mut self, obs: EngineObs) -> Self {
        self.obs = obs;
        self
    }

    /// Replaces the observability handle in place.
    pub fn set_obs(&mut self, obs: EngineObs) {
        self.obs = obs;
    }

    /// The observability handle in use.
    #[must_use]
    pub fn obs(&self) -> &EngineObs {
        &self.obs
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The market representation this engine runs with — interval
    /// timelines unless `interval_market` is switched off for an A/B run.
    #[must_use]
    pub fn market_repr(&self) -> MarketRepr {
        if self.config.interval_market {
            MarketRepr::Interval
        } else {
            MarketRepr::Flat
        }
    }

    /// FNV-1a 64 fingerprint of the configuration and selector name.
    ///
    /// Checkpoints carry this value; [`Self::resume`] refuses a
    /// checkpoint whose fingerprint differs, because replay only
    /// converges under the identical `(config, selector)` pair.
    ///
    /// `threads` is normalized to 1 before hashing: the worker-thread
    /// budget never changes an outcome, so a checkpoint captured on one
    /// machine must replay on another with a different thread count.
    /// `interval_market` never reaches the hash at all — the
    /// representation flag is absent from the serialized configuration.
    #[must_use]
    pub fn config_fingerprint(&self) -> u64 {
        let mut normalized = self.config.clone();
        normalized.threads = 1;
        let json = serde_json::to_string(&normalized).unwrap_or_default();
        fnv1a_64(format!("{}|{json}", self.selector.name()).as_bytes())
    }

    /// Runs the simulation to queue exhaustion.
    ///
    /// Deterministic: the run is a pure function of `(config, seed)`, and
    /// two identical calls produce byte-identical [`EngineRun`]s.
    ///
    /// # Errors
    ///
    /// Propagates [`IterationError`] from any scheduling cycle.
    pub fn run(&self, seed: u64) -> Result<EngineRun, EngineError> {
        let mut state = self.start(seed);
        while self.step(&mut state)?.is_some() {}
        Ok(self.finish(state))
    }

    /// Builds the initial [`RunState`]: seeds the RNG, precomputes the
    /// arrival stream, and schedules the cycle skeleton (publication,
    /// tick, and — when enabled — the mid-cycle strike, per cycle).
    #[must_use]
    pub fn start(&self, seed: u64) -> RunState {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut queue = EventQueue::new();

        // -- setup: arrivals, then the cycle skeleton -------------------
        let arrivals = self.generate_arrivals(&mut rng);
        for (i, (t, _)) in arrivals.iter().enumerate() {
            queue.push(*t, Event::JobArrival { job: i as u32 });
        }
        let strikes = self.config.revocation.is_enabled();
        for k in 0..self.config.cycles {
            let t = TimePoint::new(i64::from(k) * self.config.cycle_length);
            let count = rng
                .gen_range(self.config.slot_gen.slot_count.lo..=self.config.slot_gen.slot_count.hi)
                as u32;
            // Publication precedes the tick at equal time (lower seq).
            queue.push(t, Event::SlotPublished { round: k, count });
            queue.push(t, Event::CycleTick { cycle: k });
            if strikes {
                let mid = t + TimeDelta::new(self.config.cycle_length / 2);
                queue.push(mid, Event::RevocationStrike { strike: k });
            }
        }

        RunState {
            seed,
            rng,
            queue,
            log: EventLog::new(),
            arrivals,
            slot_gen: SlotGenerator::new(self.config.slot_gen),
            revocation: RevocationModel::new(self.config.revocation),
            vacant: SlotList::new_with_repr(self.market_repr()),
            next_node: 0,
            pending: Vec::new(),
            leases: BTreeMap::new(),
            next_lease: 0,
            reservations: BTreeMap::new(),
            next_reservation: 0,
            reservations_broken: 0,
            optimizer: IncrementalOptimizer::new(),
            report: EngineReport {
                vo_spend: vec![0.0; self.config.vos as usize],
                ..EngineReport::default()
            },
            published_ticks: 0,
            busy_ticks: 0,
            wait_sum: 0.0,
            slowdown_sum: 0.0,
        }
    }

    /// Processes exactly one event: pops it, logs it, and runs its
    /// handler. Returns the logged entry, or `None` when the queue has
    /// drained and the run is complete.
    ///
    /// # Errors
    ///
    /// Propagates [`IterationError`] from a scheduling cycle.
    pub fn step(&self, state: &mut RunState) -> Result<Option<LogEntry>, EngineError> {
        let Some((now, seq, event)) = state.queue.pop() else {
            return Ok(None);
        };
        state.log.push(now.ticks(), seq, event);
        let snap = self.obs.pre_step(&state.report);
        self.handle(state, now, event)?;
        self.obs.post_step(
            snap,
            &state.report,
            StepGauges {
                now: now.ticks(),
                backlog: state.pending.len(),
                queue_depth: state.queue.len(),
                active_leases: state.leases.len(),
                vacant_slots: state.vacant.len(),
                utilization: if state.published_ticks > 0 {
                    state.busy_ticks as f64 / state.published_ticks as f64
                } else {
                    0.0
                },
            },
        );
        Ok(Some(LogEntry {
            time: now.ticks(),
            seq,
            event,
        }))
    }

    /// Closes the books on a drained (or abandoned) run: backlog, means,
    /// utilization, and the log fingerprint.
    #[must_use]
    pub fn finish(&self, state: RunState) -> EngineRun {
        let RunState {
            log,
            pending,
            leases,
            mut report,
            published_ticks,
            busy_ticks,
            wait_sum,
            slowdown_sum,
            ..
        } = state;
        report.backlog = (pending.len() + leases.len()) as u64;
        if report.jobs_completed > 0 {
            report.mean_wait = wait_sum / report.jobs_completed as f64;
            report.mean_bounded_slowdown = slowdown_sum / report.jobs_completed as f64;
        }
        if published_ticks > 0 {
            report.utilization = busy_ticks as f64 / published_ticks as f64;
        }
        report.event_count = log.len() as u64;
        report.log_hash = log.fnv1a_hash();
        EngineRun { report, log }
    }

    /// Captures the full resumable state of an in-flight run.
    ///
    /// Safe to call between any two [`Self::step`]s; the intended cadence
    /// is after a `CycleTick` commit (check [`RunState::last_entry`]).
    /// The optimizer's caches are exported only when `optimizer_cache` is
    /// on — otherwise `None` marks a deliberately cold cache.
    #[must_use]
    pub fn checkpoint(&self, state: &RunState) -> EngineCheckpoint {
        debug_assert!(
            state.reservations.is_empty(),
            "checkpoints must not be taken mid two-phase reservation"
        );
        let rng = state.rng.capture();
        let (queue_next_seq, entries) = state.queue.snapshot();
        EngineCheckpoint {
            seed: state.seed,
            config_fp: self.config_fingerprint(),
            rng: RngState {
                key: rng.key.to_vec(),
                counter: rng.counter,
                cursor: rng.cursor as u64,
            },
            queue_next_seq,
            queue: entries
                .into_iter()
                .map(|(time, seq, event)| QueuedEventState {
                    time: time.ticks(),
                    seq,
                    event,
                })
                .collect(),
            log: state.log.clone(),
            arrivals: state
                .arrivals
                .iter()
                .map(|(t, request)| ArrivalState {
                    time: t.ticks(),
                    request: *request,
                })
                .collect(),
            vacant: state.vacant.clone(),
            next_node: state.next_node,
            pending: state
                .pending
                .iter()
                .map(|p| PendingState {
                    id: p.id,
                    arrival: p.arrival.ticks(),
                    vo: p.vo,
                    request: p.request,
                })
                .collect(),
            leases: state
                .leases
                .iter()
                .map(|(id, al)| LeaseState {
                    lease: *id,
                    job: al.job,
                    arrival: al.arrival.ticks(),
                    vo: al.vo,
                    request: al.request,
                    window: al.window.clone(),
                    alternatives: al.alternatives.clone(),
                    actual_length: al.actual_length.ticks(),
                })
                .collect(),
            next_lease: state.next_lease,
            report: state.report.clone(),
            published_ticks: state.published_ticks,
            busy_ticks: state.busy_ticks,
            wait_sum_bits: state.wait_sum.to_bits(),
            slowdown_sum_bits: state.slowdown_sum.to_bits(),
            optimizer: if self.config.optimizer_cache {
                Some(state.optimizer.snapshot())
            } else {
                None
            },
        }
    }

    /// Rebuilds a [`RunState`] from a checkpoint taken by
    /// [`Self::checkpoint`] under the same configuration and selector.
    /// Stepping the resumed state produces exactly the events the
    /// captured run would have produced.
    ///
    /// # Errors
    ///
    /// [`EngineError::CheckpointMismatch`] when the checkpoint was taken
    /// under a different `(config, selector)` fingerprint;
    /// [`EngineError::MalformedCheckpoint`] when its contents are
    /// structurally invalid.
    pub fn resume(&self, checkpoint: &EngineCheckpoint) -> Result<RunState, EngineError> {
        let expected = self.config_fingerprint();
        if checkpoint.config_fp != expected {
            return Err(EngineError::CheckpointMismatch {
                expected,
                found: checkpoint.config_fp,
            });
        }
        let key: [u32; 8] = checkpoint.rng.key.as_slice().try_into().map_err(|_| {
            EngineError::MalformedCheckpoint {
                detail: format!("rng key has {} words, expected 8", checkpoint.rng.key.len()),
            }
        })?;
        if checkpoint.rng.cursor > 16 {
            return Err(EngineError::MalformedCheckpoint {
                detail: format!("rng cursor {} out of range 0..=16", checkpoint.rng.cursor),
            });
        }
        let rng = ChaCha8Rng::restore(ChaChaState {
            key,
            counter: checkpoint.rng.counter,
            cursor: checkpoint.rng.cursor as usize,
        });
        Ok(RunState {
            seed: checkpoint.seed,
            rng,
            queue: EventQueue::restore(
                checkpoint.queue_next_seq,
                checkpoint
                    .queue
                    .iter()
                    .map(|q| (TimePoint::new(q.time), q.seq, q.event)),
            ),
            log: checkpoint.log.clone(),
            arrivals: checkpoint
                .arrivals
                .iter()
                .map(|a| (TimePoint::new(a.time), a.request))
                .collect(),
            slot_gen: SlotGenerator::new(self.config.slot_gen),
            revocation: RevocationModel::new(self.config.revocation),
            // A checkpoint may carry either market representation; the
            // resumed run uses the one this engine is configured for
            // (the conversion is observable-state-preserving).
            vacant: checkpoint.vacant.clone().with_repr(self.market_repr()),
            next_node: checkpoint.next_node,
            pending: checkpoint
                .pending
                .iter()
                .map(|p| PendingJob {
                    id: p.id,
                    arrival: TimePoint::new(p.arrival),
                    vo: p.vo,
                    request: p.request,
                })
                .collect(),
            leases: checkpoint
                .leases
                .iter()
                .map(|l| {
                    (
                        l.lease,
                        ActiveLease {
                            job: l.job,
                            arrival: TimePoint::new(l.arrival),
                            vo: l.vo,
                            request: l.request,
                            window: l.window.clone(),
                            alternatives: l.alternatives.clone(),
                            actual_length: TimeDelta::new(l.actual_length),
                        },
                    )
                })
                .collect(),
            next_lease: checkpoint.next_lease,
            // Reservations are transient two-phase state: checkpoints are
            // only taken with none held, so restore starts empty.
            reservations: BTreeMap::new(),
            next_reservation: 0,
            reservations_broken: 0,
            optimizer: match &checkpoint.optimizer {
                Some(snapshot) => IncrementalOptimizer::from_snapshot(snapshot),
                None => IncrementalOptimizer::new(),
            },
            report: checkpoint.report.clone(),
            published_ticks: checkpoint.published_ticks,
            busy_ticks: checkpoint.busy_ticks,
            wait_sum: f64::from_bits(checkpoint.wait_sum_bits),
            slowdown_sum: f64::from_bits(checkpoint.slowdown_sum_bits),
        })
    }

    /// Injects an externally submitted job between two steps (service
    /// mode). Returns the engine job id and the effective arrival time.
    ///
    /// The request is appended to the arrival stream and scheduled as an
    /// ordinary `JobArrival` at `at`, clamped so it never precedes the
    /// last processed event (log times stay monotone). No randomness is
    /// drawn, so determinism sharpens to: a run is a pure function of
    /// `(config, seed)` **plus the accepted-submission sequence** — each
    /// submission identified by `(events processed at injection, arrival
    /// time, request)`. Re-injecting the same sequence at the same
    /// points (what the service write-ahead log records) reproduces a
    /// byte-identical event log.
    pub fn submit(
        &self,
        state: &mut RunState,
        request: ResourceRequest,
        at: TimePoint,
    ) -> (u32, TimePoint) {
        let time = at.max(state.last_time());
        let job = state.arrivals.len() as u32;
        state.arrivals.push((time, request));
        state.queue.push(time, Event::JobArrival { job });
        (job, time)
    }

    /// Phase one of the two-phase cross-shard protocol: revalidates
    /// `window` against the live vacant market and, on success, carves
    /// its regions out and holds them under a reservation id. The
    /// regions are invisible to single-shard scheduling until the
    /// reservation is committed or released — but *not* to revocation
    /// strikes, which sample the full live surface (vacant, leased, and
    /// reserved capacity alike).
    ///
    /// # Errors
    ///
    /// [`ReserveError::Stale`] when the window no longer fits; the
    /// vacant list is untouched in that case.
    pub fn reserve(&self, state: &mut RunState, window: &Window) -> Result<u64, ReserveError> {
        try_adopt_window(window, &mut state.vacant, &[]).map_err(ReserveError::Stale)?;
        let id = state.next_reservation;
        state.next_reservation += 1;
        state.reservations.insert(
            id,
            Reservation {
                window: window.clone(),
                broken: false,
            },
        );
        Ok(id)
    }

    /// Phase two, success path: turns a held reservation into an active
    /// lease executing `request` (arrived at `arrival`), schedules its
    /// completion, and books the job into the shard's report. Returns
    /// `(job id, lease id)`.
    ///
    /// # Errors
    ///
    /// [`ReserveError::Unknown`] for an id that is not held;
    /// [`ReserveError::Broken`] when a revocation struck the reserved
    /// regions after phase one — the reservation is dropped (its
    /// surviving fragments already returned to the vacant list when the
    /// strike landed) and the caller must release all of its siblings.
    pub fn commit_reservation(
        &self,
        state: &mut RunState,
        reservation: u64,
        request: ResourceRequest,
        arrival: TimePoint,
    ) -> Result<(u32, u64), ReserveError> {
        match state.reservations.get(&reservation) {
            None => return Err(ReserveError::Unknown { reservation }),
            Some(r) if r.broken => {
                state.reservations.remove(&reservation);
                return Err(ReserveError::Broken { reservation });
            }
            Some(_) => {}
        }
        let held = state
            .reservations
            .remove(&reservation)
            .expect("presence checked above");
        let job = state.arrivals.len() as u32;
        state.arrivals.push((arrival, request));
        state.report.jobs_arrived += 1;
        state.report.jobs_scheduled += 1;
        let vo = job % self.config.vos;
        state.report.vo_spend[vo as usize] += held.window.total_cost().to_f64();
        let lease = state.next_lease;
        self.commit_lease(
            &mut state.queue,
            &mut state.leases,
            &mut state.next_lease,
            ActiveLeaseSeed {
                job,
                arrival,
                vo,
                request,
                window: held.window,
                alternatives: Vec::new(),
            },
        );
        Ok((job, lease))
    }

    /// Phase two, abort path: drops a held reservation and returns its
    /// regions to the vacant market. Releasing a *broken* reservation
    /// only drops it — the strike that broke it already returned the
    /// surviving fragments.
    ///
    /// # Errors
    ///
    /// [`ReserveError::Unknown`] for an id that is not held.
    pub fn release_reservation(
        &self,
        state: &mut RunState,
        reservation: u64,
    ) -> Result<(), ReserveError> {
        let held = state
            .reservations
            .remove(&reservation)
            .ok_or(ReserveError::Unknown { reservation })?;
        if !held.broken {
            release_window(&mut state.vacant, &held.window);
        }
        Ok(())
    }

    /// Runs one event's handler. Every state change of the run happens
    /// here, keyed by the event's type.
    fn handle(
        &self,
        state: &mut RunState,
        now: TimePoint,
        event: Event,
    ) -> Result<(), EngineError> {
        match event {
            Event::JobArrival { job } => {
                let (arrival, request) = state.arrivals[job as usize];
                state.report.jobs_arrived += 1;
                state.pending.push(PendingJob {
                    id: job,
                    arrival,
                    vo: job % self.config.vos,
                    request,
                });
            }

            Event::SlotPublished { count, .. } => {
                let generated = state
                    .slot_gen
                    .generate_exact(&mut state.rng, count as usize);
                for s in generated.iter() {
                    let id = state.vacant.mint_id();
                    let node = NodeId::new(state.next_node);
                    state.next_node += 1;
                    let span = Span::new(now + (s.start() - TimePoint::ZERO), {
                        now + (s.end() - TimePoint::ZERO)
                    })
                    .expect("generated spans are non-empty");
                    let slot = Slot::new(id, node, s.perf(), s.price(), span)
                        .expect("generated slots are non-empty");
                    state.published_ticks += span.length().ticks();
                    state
                        .queue
                        .push(span.end(), Event::SlotExpired { slot: id.raw() });
                    state
                        .vacant
                        .insert(slot)
                        .expect("fresh nodes cannot collide with existing slots");
                }
            }

            Event::SlotExpired { .. } => {
                // The id is only a trigger: sweep everything that has
                // fully elapsed (remnants carved from expired slots
                // carry fresh ids but the same end bound).
                let dead: Vec<(NodeId, Span)> = state
                    .vacant
                    .iter()
                    .filter(|s| s.end() <= now)
                    .map(|s| (s.node(), s.span()))
                    .collect();
                for (node, span) in dead {
                    state.vacant.remove_region(node, span);
                }
            }

            Event::CycleTick { cycle } => {
                let market = clip_to_now(&state.vacant, now);
                let market_slots = market.len();
                if state.pending.is_empty() {
                    state.report.cycles.push(CyclePoint {
                        cycle,
                        time: now.ticks(),
                        market_slots,
                        batch_size: 0,
                        scheduled: 0,
                        postponed: 0,
                        mean_wait: 0.0,
                        spend: 0.0,
                    });
                    return Ok(());
                }

                // Pending order is (arrival, id): the longest-waiting
                // job takes the highest batch priority.
                let jobs: Vec<Job> = state
                    .pending
                    .iter()
                    .enumerate()
                    .map(|(i, p)| Job::new(JobId::new(i as u32), p.request))
                    .collect();
                let batch = Batch::from_jobs(jobs).expect("re-keyed ids are unique");
                let parallelism = Parallelism::new(self.config.threads);
                let result = if self.config.optimizer_cache {
                    run_iteration_cached_with(
                        self.selector,
                        &market,
                        &batch,
                        &self.config.iteration,
                        &mut state.optimizer,
                        parallelism,
                    )?
                } else {
                    run_iteration_with(
                        self.selector,
                        &market,
                        &batch,
                        &self.config.iteration,
                        parallelism,
                    )?
                };
                state.report.opt.merge(&result.opt);
                let per_job = result.search.alternatives.per_job();

                let mut chosen: Vec<Option<usize>> = vec![None; batch.len()];
                if let Some(assignment) = &result.assignment {
                    for choice in assignment.choices() {
                        chosen[choice.job.index() as usize] = Some(choice.alternative);
                    }
                }

                // The post-commit vacant list: whatever the search left,
                // plus every non-chosen alternative released back (they
                // stay adoptable for failover until something else
                // consumes their time).
                let mut exec = result.search.remaining.clone();
                for (i, ja) in per_job.iter().enumerate() {
                    for (alt_idx, alt) in ja.alternatives().iter().enumerate() {
                        if chosen[i] == Some(alt_idx) {
                            continue;
                        }
                        release_window(&mut exec, alt.window());
                    }
                }
                // Fragments accumulate at commit boundaries (released
                // alternatives, returned tails, clip remnants); merging
                // touching same-attribute neighbours keeps the list —
                // and every later scan over it — small.
                if self.config.coalesce {
                    state.report.slots_coalesced += exec.coalesce() as u64;
                }

                let mut committed: usize = 0;
                let mut cycle_wait: i64 = 0;
                let mut cycle_spend: f64 = 0.0;
                for (i, p) in state.pending.iter().enumerate() {
                    let Some(alt_idx) = chosen[i] else { continue };
                    let window = per_job[i].alternatives()[alt_idx].window().clone();
                    let alternatives: Vec<Window> = per_job[i]
                        .alternatives()
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != alt_idx)
                        .map(|(_, a)| a.window().clone())
                        .collect();
                    let cost = window.total_cost().to_f64();
                    cycle_wait += (window.start() - p.arrival).ticks();
                    cycle_spend += cost;
                    state.report.vo_spend[p.vo as usize] += cost;
                    committed += 1;
                    self.commit_lease(
                        &mut state.queue,
                        &mut state.leases,
                        &mut state.next_lease,
                        ActiveLeaseSeed {
                            job: p.id,
                            arrival: p.arrival,
                            vo: p.vo,
                            request: p.request,
                            window,
                            alternatives,
                        },
                    );
                }
                state.report.jobs_scheduled += committed as u64;

                let carried: Vec<PendingJob> = state
                    .pending
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| chosen[*i].is_none())
                    .map(|(_, p)| *p)
                    .collect();
                let cycle_mean_wait = if committed > 0 {
                    cycle_wait as f64 / committed as f64
                } else {
                    0.0
                };
                state.report.cycles.push(CyclePoint {
                    cycle,
                    time: now.ticks(),
                    market_slots,
                    batch_size: state.pending.len(),
                    scheduled: committed,
                    postponed: carried.len(),
                    mean_wait: cycle_mean_wait,
                    spend: cycle_spend,
                });
                self.obs.on_cycle(
                    now.ticks(),
                    &result.search.stats,
                    &result.opt,
                    state.pending.len(),
                    committed,
                    cycle_mean_wait,
                );
                state.pending = carried;
                state.vacant = exec;
            }

            Event::RevocationStrike { .. } => {
                // Sample against the live surface: vacant slots, active
                // lease regions (so strikes can land on windows carved by
                // earlier repairs), and reserved-but-uncommitted windows
                // (so strikes can land *between* the two phases of a
                // cross-shard reservation). With no reservations held —
                // every non-federated run — the surface and therefore
                // the draw sequence is unchanged.
                let lease_views: Vec<Lease> = state
                    .leases
                    .values()
                    .map(|al| Lease::planned(JobId::new(al.job), al.window.clone()))
                    .collect();
                let reservation_views: Vec<(u64, Lease)> = state
                    .reservations
                    .iter()
                    .filter(|(_, r)| !r.broken)
                    .map(|(id, r)| (*id, Lease::planned(JobId::new(u32::MAX), r.window.clone())))
                    .collect();
                let surface: Vec<Lease> = lease_views
                    .iter()
                    .chain(reservation_views.iter().map(|(_, view)| view))
                    .cloned()
                    .collect();
                let revocations =
                    state
                        .revocation
                        .draw_live(&state.vacant, &surface, &mut state.rng);
                state.report.revocations += revocations.len() as u64;
                if revocations.is_empty() {
                    return Ok(());
                }
                for r in &revocations {
                    state.vacant.remove_region(r.node, r.span);
                }

                let broken: Vec<u64> = state
                    .leases
                    .keys()
                    .copied()
                    .zip(lease_views.iter())
                    .filter(|(_, view)| revocations.iter().any(|r| view.broken_by(r)))
                    .map(|(id, _)| id)
                    .collect();

                // Broken leases release their surviving future
                // fragments first, so later repairs can reuse the time.
                for id in &broken {
                    let al = &state.leases[id];
                    return_surviving_fragments(&mut state.vacant, &al.window, &revocations, now);
                }
                state.report.leases_broken += broken.len() as u64;

                // Struck reservations break the same way, but there is
                // no repair tier for them: the federation observes the
                // break at commit time and releases the siblings.
                for (id, view) in &reservation_views {
                    if !revocations.iter().any(|r| view.broken_by(r)) {
                        continue;
                    }
                    let held = state
                        .reservations
                        .get_mut(id)
                        .expect("reservation views mirror held reservations");
                    held.broken = true;
                    state.reservations_broken += 1;
                    let window = held.window.clone();
                    return_surviving_fragments(&mut state.vacant, &window, &revocations, now);
                }

                // Three-tier recovery, in lease-id (commitment) order.
                self.obs.on_repair(now.ticks(), broken.len());
                for id in broken {
                    let original = state.leases.remove(&id).expect("broken ids are live");
                    let mut attempts: u32 = 0;
                    let mut recovered: Option<(Window, Vec<Window>, bool)> = None;

                    // Tier 1: adopt a surviving future alternative.
                    for (alt_idx, alt) in original.alternatives.iter().enumerate() {
                        if attempts >= self.config.repair.max_attempts {
                            break;
                        }
                        if alt.start() < now {
                            continue; // cannot launch in the past
                        }
                        attempts += 1;
                        if try_adopt_window(alt, &mut state.vacant, &revocations).is_ok() {
                            let rest: Vec<Window> = original
                                .alternatives
                                .iter()
                                .enumerate()
                                .filter(|(j, _)| *j != alt_idx)
                                .map(|(_, w)| w.clone())
                                .collect();
                            recovered = Some((alt.clone(), rest, true));
                            break;
                        }
                    }

                    // Tier 2: bounded repair search from the broken
                    // window's start (never the past).
                    if recovered.is_none() && attempts < self.config.repair.max_attempts {
                        let mut scan = ScanStats::new();
                        let resume_at = original.window.start().max(now);
                        if let Some(window) = repair_search(
                            &self.selector,
                            &original.request,
                            resume_at,
                            &state.vacant,
                            &mut scan,
                        ) {
                            state
                                .vacant
                                .subtract_window(&window)
                                .expect("repair windows are carved from the vacant list");
                            recovered = Some((window, Vec::new(), false));
                        }
                    }

                    // Tier 2.5 (optional): the anchored repair is
                    // exhausted. One full rescan of everything launchable
                    // from `now` — strictly wider than the broken-start
                    // anchor, so it can adopt windows that start earlier
                    // than the broken plan (released fragments of other
                    // broken leases make those feasible).
                    if recovered.is_none() && self.config.repair.full_rescan_on_exhaustion {
                        state.report.full_rescans += 1;
                        let mut scan = ScanStats::new();
                        if let Some(window) = repair_search(
                            &self.selector,
                            &original.request,
                            now,
                            &state.vacant,
                            &mut scan,
                        ) {
                            state
                                .vacant
                                .subtract_window(&window)
                                .expect("repair windows are carved from the vacant list");
                            recovered = Some((window, Vec::new(), false));
                        }
                    }

                    // Tier 3: back to the pending queue.
                    match recovered {
                        Some((window, alternatives, failover)) => {
                            if failover {
                                state.report.failovers += 1;
                            } else {
                                state.report.repairs += 1;
                            }
                            // The old lease id dies here; its pending
                            // completion event goes stale.
                            self.commit_lease(
                                &mut state.queue,
                                &mut state.leases,
                                &mut state.next_lease,
                                ActiveLeaseSeed {
                                    job: original.job,
                                    arrival: original.arrival,
                                    vo: original.vo,
                                    request: original.request,
                                    window,
                                    alternatives,
                                },
                            );
                        }
                        None => {
                            state.report.repostponed += 1;
                            state.pending.push(PendingJob {
                                id: original.job,
                                arrival: original.arrival,
                                vo: original.vo,
                                request: original.request,
                            });
                            state.pending.sort_by_key(|p| (p.arrival, p.id));
                        }
                    }
                }
            }

            Event::LeaseCompleted { lease } => {
                let Some(al) = state.leases.remove(&lease) else {
                    // The lease broke and was replaced after this event
                    // was scheduled.
                    state.report.stale_completions += 1;
                    return Ok(());
                };
                state.report.jobs_completed += 1;
                let run = al.actual_length.ticks();
                let wait = (al.window.start() - al.arrival).ticks();
                state.wait_sum += wait as f64;
                state.slowdown_sum +=
                    ((wait + run) as f64 / run.max(self.config.slowdown_tau) as f64).max(1.0);

                // Unused tails (members faster than the elapsed run, or
                // the completion-fraction shortfall) return to the
                // vacant list as ordinary inserts.
                let mut tails: Vec<Slot> = Vec::new();
                for ws in al.window.slots() {
                    state.busy_ticks += ws.runtime().ticks().min(run);
                    if ws.runtime().ticks() > run {
                        let span = Span::new(
                            al.window.start() + al.actual_length,
                            al.window.start() + ws.runtime(),
                        )
                        .expect("tails are non-empty");
                        let id = state.vacant.mint_id();
                        tails.push(
                            Slot::new(id, ws.node(), ws.perf(), ws.price(), span)
                                .expect("tails are non-empty"),
                        );
                    }
                }
                for tail in tails {
                    state
                        .vacant
                        .insert(tail)
                        .expect("returned tails are disjoint from the vacant list");
                }
            }
        }
        Ok(())
    }

    /// Commits a window as a fresh lease and schedules its completion.
    fn commit_lease(
        &self,
        queue: &mut EventQueue,
        leases: &mut BTreeMap<u64, ActiveLease>,
        next_lease: &mut u64,
        seed: ActiveLeaseSeed,
    ) {
        let planned = seed.window.length().ticks();
        let actual =
            ((planned as f64 * self.config.completion_fraction).ceil() as i64).clamp(1, planned);
        let lease_id = *next_lease;
        *next_lease += 1;
        queue.push(
            seed.window.start() + TimeDelta::new(actual),
            Event::LeaseCompleted { lease: lease_id },
        );
        leases.insert(
            lease_id,
            ActiveLease {
                job: seed.job,
                arrival: seed.arrival,
                vo: seed.vo,
                request: seed.request,
                window: seed.window,
                alternatives: seed.alternatives,
                actual_length: TimeDelta::new(actual),
            },
        );
    }

    /// Precomputes the `(arrival time, request)` stream this engine's
    /// configuration describes, drawing from `rng` exactly as
    /// [`Engine::start`] does before it draws anything else.
    ///
    /// Public so the federation layer can generate the *offered load*
    /// once at the superscheduler level (from the base configuration and
    /// seed) and then route each arrival to an `External`-mode shard —
    /// keeping the stream identical to what a single engine at the same
    /// seed would have faced, whatever the shard count.
    pub fn generate_arrivals(&self, rng: &mut ChaCha8Rng) -> Vec<(TimePoint, ResourceRequest)> {
        match &self.config.arrivals {
            ArrivalConfig::Poisson {
                mean_interarrival,
                jobs,
                job_gen,
            } => {
                let job_gen = JobGenerator::new(*job_gen);
                let mut t = 0.0f64;
                let mut out = Vec::with_capacity(*jobs as usize);
                for _ in 0..*jobs {
                    let u: f64 = rng.gen_range(0.0..=1.0);
                    // Inverse-CDF exponential draw, clamped away from
                    // ln(0).
                    t += -((1.0 - u).max(1e-12)).ln() * mean_interarrival;
                    let batch = job_gen.generate_exact(rng, 1);
                    out.push((TimePoint::new(t as i64), *batch.as_slice()[0].request()));
                }
                out
            }
            ArrivalConfig::Trace { trace, import } => {
                let batch = batch_from_swf(trace, import, rng);
                // Replicate the importer's keep-filter to recover each
                // kept job's arrival tick.
                let limit = if import.max_jobs == 0 {
                    usize::MAX
                } else {
                    import.max_jobs
                };
                let times: Vec<TimePoint> = trace
                    .iter()
                    .take(limit)
                    .filter(|j| j.requested_time / import.seconds_per_tick > 0)
                    .map(|j| TimePoint::new(j.submit / import.seconds_per_tick))
                    .collect();
                assert_eq!(
                    times.len(),
                    batch.len(),
                    "arrival filter must mirror the importer"
                );
                times
                    .into_iter()
                    .zip(batch.as_slice().iter().map(|j| *j.request()))
                    .collect()
            }
            // Service mode: the stream starts empty and grows through
            // `Engine::submit`.
            ArrivalConfig::External => Vec::new(),
        }
    }
}

/// The fields [`Engine::commit_lease`] needs to mint an [`ActiveLease`].
#[derive(Debug)]
struct ActiveLeaseSeed {
    job: u32,
    arrival: TimePoint,
    vo: u32,
    request: ResourceRequest,
    window: Window,
    alternatives: Vec<Window>,
}

/// The market snapshot a cycle schedules over: every vacant slot clipped
/// to `[now, end)`, dropping fully elapsed ones. Ids are preserved, so the
/// clipped slots stay in strictly increasing `(start, id)` order after the
/// sort and the `O(m)` [`SlotList::from_sorted_slots`] constructor
/// applies. The snapshot keeps the live list's representation.
fn clip_to_now(vacant: &SlotList, now: TimePoint) -> SlotList {
    let mut clipped: Vec<Slot> = Vec::with_capacity(vacant.len());
    for s in vacant.iter() {
        if s.end() <= now {
            continue;
        }
        if s.start() >= now {
            clipped.push(*s);
        } else {
            let span = Span::new(now, s.end()).expect("end is after now");
            clipped.push(
                s.with_span(s.id(), span)
                    .expect("clipped spans are non-empty"),
            );
        }
    }
    clipped.sort_by_key(|s| (s.start(), s.id()));
    SlotList::from_sorted_slots_with_repr(clipped, vacant.repr())
        .expect("clipping preserves disjointness and unique ids")
}

/// Returns the surviving fragments of a revoked window — everything the
/// strikes did not consume and that has not yet elapsed — to the vacant
/// list as freshly minted slots.
fn return_surviving_fragments(
    vacant: &mut SlotList,
    window: &Window,
    revocations: &[Revocation],
    now: TimePoint,
) {
    for ws in window.slots() {
        let mut fragments = vec![window.used_span(ws)];
        for r in revocations.iter().filter(|r| r.node == ws.node()) {
            let mut survivors = Vec::new();
            for frag in fragments {
                let (left, right) = frag.subtract(r.span);
                survivors.extend(left);
                survivors.extend(right);
            }
            fragments = survivors;
        }
        for frag in fragments {
            if frag.end() <= now {
                continue; // already elapsed
            }
            let span = Span::new(frag.start().max(now), frag.end())
                .expect("clipped fragments are non-empty");
            let slot_id = vacant.mint_id();
            let slot = Slot::new(slot_id, ws.node(), ws.perf(), ws.price(), span)
                .expect("surviving fragments are non-empty");
            vacant
                .insert(slot)
                .expect("revoked regions were held exclusively");
        }
    }
}

/// Returns a window's regions to `list` as freshly minted slots.
fn release_window(list: &mut SlotList, window: &Window) {
    for ws in window.slots() {
        let id = list.mint_id();
        let slot = Slot::new(id, ws.node(), ws.perf(), ws.price(), window.used_span(ws))
            .expect("window members have positive runtimes");
        list.insert(slot)
            .expect("released regions were carved from this list");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use ecosched_select::{Alp, Amp};
    use ecosched_sim::RevocationConfig;

    fn small_config() -> EngineConfig {
        EngineConfig {
            cycles: 4,
            arrivals: ArrivalConfig::Poisson {
                mean_interarrival: 10.0,
                jobs: 12,
                job_gen: ecosched_sim::JobGenConfig::default(),
            },
            ..EngineConfig::default()
        }
    }

    #[test]
    fn run_schedules_and_completes_jobs() {
        let engine = Engine::new(small_config(), Amp::new()).unwrap();
        let run = engine.run(7).unwrap();
        assert_eq!(run.report.jobs_arrived, 12);
        assert!(run.report.jobs_scheduled > 0, "nothing scheduled");
        assert!(run.report.jobs_completed > 0, "nothing completed");
        assert_eq!(run.report.cycles.len(), 4);
        assert!(run.report.utilization > 0.0 && run.report.utilization <= 1.0);
        assert_eq!(run.report.event_count, run.log.len() as u64);
        // Accounting: every arrival is scheduled-and-completed, still
        // pending, or holds no lease only because the run ended.
        assert!(run.report.jobs_completed + run.report.backlog <= run.report.jobs_arrived);
    }

    #[test]
    fn log_times_are_monotone() {
        let engine = Engine::new(small_config(), Alp::new()).unwrap();
        let run = engine.run(3).unwrap();
        for pair in run.log.entries.windows(2) {
            assert!(pair[0].time <= pair[1].time, "virtual time went backwards");
        }
    }

    #[test]
    fn vo_spend_matches_cycle_spend() {
        let engine = Engine::new(small_config(), Amp::new()).unwrap();
        let run = engine.run(11).unwrap();
        let by_vo: f64 = run.report.vo_spend.iter().sum();
        let by_cycle: f64 = run.report.cycles.iter().map(|c| c.spend).sum();
        // Repair re-commitments do not add cycle spend, so VO spend can
        // only exceed cycle spend under churn; without churn they match.
        assert!((by_vo - by_cycle).abs() < 1e-6);
    }

    #[test]
    fn churn_breaks_and_recovers_leases() {
        let config = EngineConfig {
            revocation: RevocationConfig::per_slot(0.06),
            ..small_config()
        };
        let engine = Engine::new(config, Amp::new()).unwrap();
        let run = engine.run(5).unwrap();
        assert!(run.report.revocations > 0, "churn must inject faults");
        assert!(
            run.log
                .entries
                .iter()
                .any(|e| matches!(e.event, Event::RevocationStrike { .. })),
            "strikes must be logged"
        );
        assert_eq!(
            run.report.leases_broken,
            run.report.failovers + run.report.repairs + run.report.repostponed,
            "every broken lease ends in a terminal tier"
        );
    }

    #[test]
    fn trace_arrivals_drive_the_engine() {
        let trace = ecosched_sim::swf::parse_swf(
            "1 0 5 3600 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1\n\
             2 60 5 1800 2 -1 -1 2 2400 -1 1 1 1 1 1 1 -1 -1\n\
             3 120 5 1200 1 -1 -1 1 1200 -1 1 1 1 1 1 1 -1 -1\n",
        )
        .unwrap();
        let config = EngineConfig {
            cycles: 3,
            arrivals: ArrivalConfig::Trace {
                trace,
                import: ecosched_sim::swf::SwfImportConfig::default(),
            },
            ..EngineConfig::default()
        };
        let engine = Engine::new(config, Amp::new()).unwrap();
        let run = engine.run(1).unwrap();
        assert_eq!(run.report.jobs_arrived, 3);
        assert!(run.report.jobs_scheduled > 0);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let bad = EngineConfig {
            cycles: 0,
            ..EngineConfig::default()
        };
        assert!(Engine::new(bad, Amp::new()).is_err());
    }

    #[test]
    fn stepwise_run_matches_one_shot_run() {
        let engine = Engine::new(small_config(), Amp::new()).unwrap();
        let oneshot = engine.run(7).unwrap();
        let mut state = engine.start(7);
        let mut logged = Vec::new();
        while let Some(entry) = engine.step(&mut state).unwrap() {
            logged.push(entry);
        }
        let stepped = engine.finish(state);
        assert_eq!(stepped, oneshot);
        assert_eq!(logged, oneshot.log.entries);
    }

    #[test]
    fn checkpoint_resume_converges_mid_run() {
        let config = EngineConfig {
            revocation: RevocationConfig::per_slot(0.05),
            ..small_config()
        };
        let engine = Engine::new(config, Amp::new()).unwrap();
        let baseline = engine.run(5).unwrap();

        // Checkpoint after every event; resume from a spread of points.
        for cut in [1usize, 3, 10, 25, 60] {
            let mut state = engine.start(5);
            for _ in 0..cut {
                if engine.step(&mut state).unwrap().is_none() {
                    break;
                }
            }
            let checkpoint = engine.checkpoint(&state);
            let mut resumed = engine.resume(&checkpoint).unwrap();
            while engine.step(&mut resumed).unwrap().is_some() {}
            let run = engine.finish(resumed);
            assert_eq!(run, baseline, "divergence after resume at event {cut}");
        }
    }

    #[test]
    fn checkpoint_resume_converges_without_optimizer_cache() {
        let config = EngineConfig {
            optimizer_cache: false,
            ..small_config()
        };
        let engine = Engine::new(config, Amp::new()).unwrap();
        let baseline = engine.run(9).unwrap();
        let mut state = engine.start(9);
        for _ in 0..20 {
            engine.step(&mut state).unwrap();
        }
        let checkpoint = engine.checkpoint(&state);
        assert!(checkpoint.optimizer.is_none(), "cache off must stay cold");
        let mut resumed = engine.resume(&checkpoint).unwrap();
        while engine.step(&mut resumed).unwrap().is_some() {}
        assert_eq!(engine.finish(resumed), baseline);
    }

    #[test]
    fn resume_rejects_foreign_config() {
        let engine = Engine::new(small_config(), Amp::new()).unwrap();
        let mut state = engine.start(7);
        for _ in 0..5 {
            engine.step(&mut state).unwrap();
        }
        let checkpoint = engine.checkpoint(&state);

        let other_config = Engine::new(
            EngineConfig {
                cycles: 5,
                ..small_config()
            },
            Amp::new(),
        )
        .unwrap();
        assert!(matches!(
            other_config.resume(&checkpoint),
            Err(EngineError::CheckpointMismatch { .. })
        ));
        let other_selector = Engine::new(small_config(), Alp::new()).unwrap();
        assert!(matches!(
            other_selector.resume(&checkpoint),
            Err(EngineError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn resume_rejects_malformed_rng_state() {
        let engine = Engine::new(small_config(), Amp::new()).unwrap();
        let state = engine.start(7);
        let good = engine.checkpoint(&state);

        let mut short_key = good.clone();
        short_key.rng.key.pop();
        assert!(matches!(
            engine.resume(&short_key),
            Err(EngineError::MalformedCheckpoint { .. })
        ));

        let mut bad_cursor = good;
        bad_cursor.rng.cursor = 17;
        assert!(matches!(
            engine.resume(&bad_cursor),
            Err(EngineError::MalformedCheckpoint { .. })
        ));
    }

    #[test]
    fn coalescing_reduces_market_fragmentation() {
        let on = Engine::new(small_config(), Amp::new()).unwrap();
        let off = Engine::new(
            EngineConfig {
                coalesce: false,
                ..small_config()
            },
            Amp::new(),
        )
        .unwrap();
        let run_on = on.run(7).unwrap();
        let run_off = off.run(7).unwrap();
        assert!(run_on.report.slots_coalesced > 0, "nothing coalesced");
        assert_eq!(run_off.report.slots_coalesced, 0);
        // Same arrivals either way; coalescing only changes the market's
        // granularity.
        assert_eq!(run_on.report.jobs_arrived, run_off.report.jobs_arrived);
    }

    // -- two-phase reservations --------------------------------------

    use ecosched_core::{Perf, Price};

    /// Steps until the market is populated, then probes a one-node
    /// window launchable at the current time.
    fn probed_window<S: SlotSelector + Copy>(
        engine: &Engine<S>,
        state: &mut RunState,
    ) -> (ResourceRequest, Window) {
        while state.vacant.is_empty() {
            engine
                .step(state)
                .unwrap()
                .expect("run drained before any publication");
        }
        let request = ResourceRequest::new(
            1,
            TimeDelta::new(20),
            Perf::from_f64(0.5),
            Price::from_credits(60),
        )
        .unwrap();
        let mut scan = ScanStats::new();
        let window = repair_search(
            &Amp::new(),
            &request,
            state.last_time(),
            &state.vacant,
            &mut scan,
        )
        .expect("a fresh market hosts a one-node window");
        (request, window)
    }

    /// Total vacant node-ticks — the capacity invariant reserve/release
    /// must conserve.
    fn vacant_ticks(state: &RunState) -> i64 {
        state.vacant.iter().map(|s| s.span().length().ticks()).sum()
    }

    #[test]
    fn reserve_commit_books_a_lease_that_completes() {
        let engine = Engine::new(small_config(), Amp::new()).unwrap();
        let mut state = engine.start(5);
        let (request, window) = probed_window(&engine, &mut state);
        let id = engine.reserve(&mut state, &window).unwrap();
        assert_eq!(state.reservations_held(), 1);
        assert!(!state.reservation(id).unwrap().is_broken());

        let arrived = state.report.jobs_arrived;
        let leases = state.leases.len();
        let at = state.last_time();
        let (job, lease) = engine
            .commit_reservation(&mut state, id, request, at)
            .unwrap();
        assert_eq!(state.reservations_held(), 0);
        assert_eq!(state.leases.len(), leases + 1);
        assert!(state.leases.contains_key(&lease));
        assert_eq!(state.leases[&lease].job, job);
        assert_eq!(state.report.jobs_arrived, arrived + 1);

        while engine.step(&mut state).unwrap().is_some() {}
        let run = engine.finish(state);
        assert!(run.report.jobs_completed >= 1, "the lease never completed");
    }

    #[test]
    fn release_conserves_market_capacity() {
        let engine = Engine::new(small_config(), Amp::new()).unwrap();
        let mut state = engine.start(5);
        let (_, window) = probed_window(&engine, &mut state);
        let before = vacant_ticks(&state);
        let id = engine.reserve(&mut state, &window).unwrap();
        assert!(vacant_ticks(&state) < before, "reserve must carve capacity");
        engine.release_reservation(&mut state, id).unwrap();
        assert_eq!(vacant_ticks(&state), before, "release must restore it");
        assert_eq!(state.reservations_held(), 0);
        assert!(matches!(
            engine.release_reservation(&mut state, id),
            Err(ReserveError::Unknown { .. })
        ));
    }

    #[test]
    fn stale_windows_are_refused_without_side_effects() {
        let engine = Engine::new(small_config(), Amp::new()).unwrap();
        let mut state = engine.start(5);
        let (_, window) = probed_window(&engine, &mut state);
        engine.reserve(&mut state, &window).unwrap();
        let held = vacant_ticks(&state);
        // The same window cannot be carved twice.
        assert!(matches!(
            engine.reserve(&mut state, &window),
            Err(ReserveError::Stale(_))
        ));
        assert_eq!(vacant_ticks(&state), held);
        assert_eq!(state.reservations_held(), 1);
    }

    #[test]
    fn strike_between_reserve_and_commit_breaks_the_reservation() {
        let engine = Engine::new(
            EngineConfig {
                cycles: 2,
                revocation: RevocationConfig::per_slot(1.0),
                arrivals: ArrivalConfig::Poisson {
                    mean_interarrival: 10.0,
                    jobs: 1,
                    job_gen: ecosched_sim::JobGenConfig::default(),
                },
                ..EngineConfig::default()
            },
            Amp::new(),
        )
        .unwrap();
        let mut state = engine.start(9);
        let (request, window) = probed_window(&engine, &mut state);
        let id = engine.reserve(&mut state, &window).unwrap();

        // Step across the mid-cycle strike; per-slot probability 1.0
        // revokes the entire live surface, the reservation included.
        while state.reservations_broken() == 0 {
            engine
                .step(&mut state)
                .unwrap()
                .expect("strike never fired");
        }
        assert!(state.reservation(id).unwrap().is_broken());

        // Phase two must refuse; the reservation is consumed either way.
        let at = state.last_time();
        assert!(matches!(
            engine.commit_reservation(&mut state, id, request, at),
            Err(ReserveError::Broken { .. })
        ));
        assert_eq!(state.reservations_held(), 0);

        // The run continues to completion untroubled.
        while engine.step(&mut state).unwrap().is_some() {}
    }
}
