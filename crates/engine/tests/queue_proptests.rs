//! Property tests for the event queue's ordering contract and the
//! engine's end-to-end determinism.

use ecosched_core::TimePoint;
use ecosched_engine::{ArrivalConfig, Engine, EngineConfig, Event, EventQueue};
use ecosched_select::Amp;
use ecosched_sim::{JobGenConfig, RevocationConfig};
use proptest::prelude::*;

proptest! {
    /// Pop times are monotonically non-decreasing regardless of push
    /// order.
    #[test]
    fn pop_times_are_monotone(times in prop::collection::vec(0i64..1000, 1..64)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(TimePoint::new(*t), Event::JobArrival { job: i as u32 });
        }
        let mut last = i64::MIN;
        while let Some((t, _, _)) = q.pop() {
            prop_assert!(t.ticks() >= last, "time went backwards");
            last = t.ticks();
        }
    }

    /// Events pushed at the same time pop in insertion order: their
    /// sequence numbers come back strictly increasing within each time.
    #[test]
    fn equal_times_pop_in_insertion_order(times in prop::collection::vec(0i64..8, 2..64)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(TimePoint::new(*t), Event::JobArrival { job: i as u32 });
        }
        let mut last: Option<(i64, u64)> = None;
        while let Some((t, seq, _)) = q.pop() {
            if let Some((lt, ls)) = last {
                prop_assert!(
                    (lt, ls) < (t.ticks(), seq),
                    "(time, seq) must be strictly increasing"
                );
            }
            last = Some((t.ticks(), seq));
        }
    }

}

proptest! {
    // Each case is two full engine runs; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two engines built from the same config and seed produce identical
    /// event-log hashes — the determinism contract, across random seeds
    /// and load levels.
    #[test]
    fn seeded_runs_are_reproducible(
        seed in 0u64..1_000_000,
        jobs in 4u32..16,
        churn in any::<bool>(),
    ) {
        let config = EngineConfig {
            cycles: 3,
            revocation: if churn {
                RevocationConfig::per_slot(0.04)
            } else {
                RevocationConfig::none()
            },
            arrivals: ArrivalConfig::Poisson {
                mean_interarrival: 10.0,
                jobs,
                job_gen: JobGenConfig::default(),
            },
            ..EngineConfig::default()
        };
        let engine = Engine::new(config, Amp::new()).unwrap();
        let a = engine.run(seed).unwrap();
        let b = engine.run(seed).unwrap();
        prop_assert_eq!(a.log.fnv1a_hash(), b.log.fnv1a_hash());
        prop_assert_eq!(a.report.to_json(), b.report.to_json());
    }
}
