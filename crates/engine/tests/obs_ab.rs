//! The observability A/B contract: attaching a live recorder must be
//! invisible to the run — byte-identical event logs and reports across
//! calm, churn, coscheduled, and threaded configurations — while the
//! registry itself fills with counters that agree with the report.

use ecosched_engine::{ArrivalConfig, Engine, EngineConfig, EngineIds, EngineObs};
use ecosched_obs::{Recorder, RegistryBuilder};
use ecosched_select::Amp;
use ecosched_sim::{IterationConfig, JobGenConfig, RevocationConfig, SearchMode};

fn base_config() -> EngineConfig {
    EngineConfig {
        cycles: 5,
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: 8.0,
            jobs: 20,
            job_gen: JobGenConfig::default(),
        },
        ..EngineConfig::default()
    }
}

fn churn_config() -> EngineConfig {
    EngineConfig {
        revocation: RevocationConfig::per_slot(0.05),
        ..base_config()
    }
}

fn observed_engine(config: EngineConfig) -> Engine<Amp> {
    let mut b = RegistryBuilder::new();
    let ids = EngineIds::register(&mut b, None);
    let rec = Recorder::new(b.build());
    Engine::new(config, Amp::new())
        .expect("valid config")
        .with_obs(EngineObs::new(rec, ids))
}

/// Runs the same `(config, seed)` with the recorder off and on, asserts
/// byte-identity, and returns the observed engine for registry checks.
fn assert_recorder_invisible(config: EngineConfig, seed: u64) -> Engine<Amp> {
    let plain = Engine::new(config.clone(), Amp::new()).expect("valid config");
    let observed = observed_engine(config);
    assert_eq!(
        plain.config_fingerprint(),
        observed.config_fingerprint(),
        "the fingerprint must not see the recorder"
    );
    let a = plain.run(seed).expect("plain run");
    let b = observed.run(seed).expect("observed run");
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.log.fnv1a_hash(), b.log.fnv1a_hash());
    assert_eq!(a.report.to_json(), b.report.to_json());
    observed
}

#[test]
fn recorder_is_outcome_invisible_calm() {
    let engine = assert_recorder_invisible(base_config(), 42);
    let run = engine.run(42).expect("observed run");
    let reg = engine
        .obs()
        .recorder()
        .expect("recorder attached")
        .registry()
        .expect("recorder on");
    // Two observed runs happened on this registry; counters are their sum.
    let arrived = reg
        .find_counter("ecosched_engine_jobs_arrived_total", &[])
        .expect("registered");
    assert_eq!(reg.counter_value(arrived), 2 * run.report.jobs_arrived);
    let events = reg
        .find_counter("ecosched_engine_events_total", &[])
        .expect("registered");
    assert_eq!(reg.counter_value(events), 2 * run.report.event_count);
    let scheduled = reg
        .find_counter("ecosched_engine_jobs_scheduled_total", &[])
        .expect("registered");
    assert_eq!(reg.counter_value(scheduled), 2 * run.report.jobs_scheduled);
    let solves = reg
        .find_counter("ecosched_engine_opt_solves_total", &[])
        .expect("registered");
    assert_eq!(reg.counter_value(solves), 2 * run.report.opt.solves);
    let examined = reg
        .find_counter("ecosched_engine_scan_slots_examined_total", &[])
        .expect("registered");
    assert!(
        reg.counter_value(examined) > 0,
        "cycles must feed scan stats into the registry"
    );
}

#[test]
fn recorder_is_outcome_invisible_churn() {
    let engine = assert_recorder_invisible(churn_config(), 42);
    let reg = engine
        .obs()
        .recorder()
        .expect("recorder attached")
        .registry()
        .expect("recorder on");
    let revocations = reg
        .find_counter("ecosched_engine_revocations_total", &[])
        .expect("registered");
    assert!(
        reg.counter_value(revocations) > 0,
        "churn must record revocations"
    );
    let tracer = engine
        .obs()
        .recorder()
        .expect("recorder attached")
        .tracer()
        .expect("recorder on");
    let spans = tracer.spans();
    assert!(spans.iter().any(|s| s.kind == "cycle"));
    assert!(spans.iter().any(|s| s.kind == "scan"));
    assert!(spans.iter().any(|s| s.kind == "optimize"));
    assert!(spans.iter().any(|s| s.kind == "commit"));
    assert!(spans.iter().any(|s| s.kind == "repair"));
    // Child spans link back to their cycle parent.
    let cycle_ids: Vec<u64> = spans
        .iter()
        .filter(|s| s.kind == "cycle")
        .map(|s| s.id)
        .collect();
    assert!(spans
        .iter()
        .filter(|s| s.kind == "scan")
        .all(|s| s.parent.is_some_and(|p| cycle_ids.contains(&p))));
}

#[test]
fn recorder_is_outcome_invisible_coscheduled() {
    let config = EngineConfig {
        iteration: IterationConfig {
            search_mode: SearchMode::Coscheduled,
            ..IterationConfig::default()
        },
        ..base_config()
    };
    assert_recorder_invisible(config, 42);
}

#[test]
fn recorder_is_outcome_invisible_threaded() {
    let config = EngineConfig {
        threads: 4,
        ..churn_config()
    };
    assert_recorder_invisible(config, 42);
}

#[test]
fn recorder_survives_checkpoint_resume_untouched() {
    // Checkpoints must not carry (or require) the recorder: a checkpoint
    // taken on an observed run resumes on an unobserved engine and
    // converges to the same log.
    let observed = observed_engine(churn_config());
    let plain = Engine::new(churn_config(), Amp::new()).expect("valid config");
    let mut state = observed.start(42);
    for _ in 0..40 {
        if observed.step(&mut state).expect("step").is_none() {
            break;
        }
    }
    let checkpoint = observed.checkpoint(&state);
    let mut resumed = plain.resume(&checkpoint).expect("resume without recorder");
    while observed.step(&mut state).expect("step").is_some() {}
    while plain.step(&mut resumed).expect("step").is_some() {}
    let a = observed.finish(state);
    let b = plain.finish(resumed);
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.report.to_json(), b.report.to_json());
}
