//! The determinism contract: an engine run is a pure function of
//! `(config, seed)`, so identically seeded runs must produce
//! byte-identical serialized event logs and reports.

use ecosched_engine::{ArrivalConfig, Engine, EngineConfig, Event};
use ecosched_select::{Alp, Amp};
use ecosched_sim::swf::{parse_swf, SwfImportConfig};
use ecosched_sim::{JobGenConfig, RevocationConfig};

fn base_config() -> EngineConfig {
    EngineConfig {
        cycles: 5,
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: 8.0,
            jobs: 20,
            job_gen: JobGenConfig::default(),
        },
        ..EngineConfig::default()
    }
}

fn churn_config() -> EngineConfig {
    EngineConfig {
        revocation: RevocationConfig::per_slot(0.05),
        ..base_config()
    }
}

#[test]
fn same_seed_same_log_and_report() {
    let engine = Engine::new(base_config(), Amp::new()).unwrap();
    let a = engine.run(42).unwrap();
    let b = engine.run(42).unwrap();
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.log.fnv1a_hash(), b.log.fnv1a_hash());
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn same_seed_same_log_under_churn() {
    let engine = Engine::new(churn_config(), Amp::new()).unwrap();
    let a = engine.run(42).unwrap();
    let b = engine.run(42).unwrap();
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert!(a.report.revocations > 0, "churn config must inject faults");
}

#[test]
fn same_seed_same_log_for_alp() {
    let engine = Engine::new(churn_config(), Alp::new()).unwrap();
    let a = engine.run(17).unwrap();
    let b = engine.run(17).unwrap();
    assert_eq!(a.log.fnv1a_hash(), b.log.fnv1a_hash());
    assert_eq!(a.report, b.report);
}

#[test]
fn different_seeds_diverge() {
    let engine = Engine::new(base_config(), Amp::new()).unwrap();
    let a = engine.run(1).unwrap();
    let b = engine.run(2).unwrap();
    assert_ne!(
        a.log.fnv1a_hash(),
        b.log.fnv1a_hash(),
        "different seeds must produce different event streams"
    );
}

#[test]
fn trace_replay_is_deterministic() {
    let trace = parse_swf(
        "; mini trace\r\n\
         1 0 5 3600 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1\r\n\
         2 30 5 1800 2 -1 -1 2 2400 -1 1 1 1 1 1 1 -1 -1\r\n\
         3 90 5 1200 1 -1 -1 1 1200 -1 1 1 1 1 1 1 -1 -1\r\n\
         4 150 5 2400 2 -1 -1 2 3000 -1 1 1 1 1 1 1 -1 -1\r\n",
    )
    .unwrap();
    let config = EngineConfig {
        cycles: 4,
        arrivals: ArrivalConfig::Trace {
            trace,
            import: SwfImportConfig::default(),
        },
        ..EngineConfig::default()
    };
    let engine = Engine::new(config, Amp::new()).unwrap();
    let a = engine.run(9).unwrap();
    let b = engine.run(9).unwrap();
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.report.jobs_arrived, 4);
    assert!(a.report.jobs_scheduled > 0);
}

#[test]
fn log_covers_the_full_event_taxonomy() {
    let engine = Engine::new(churn_config(), Amp::new()).unwrap();
    let run = engine.run(42).unwrap();
    let has = |pred: fn(&Event) -> bool| run.log.entries.iter().any(|e| pred(&e.event));
    assert!(has(|e| matches!(e, Event::JobArrival { .. })));
    assert!(has(|e| matches!(e, Event::SlotPublished { .. })));
    assert!(has(|e| matches!(e, Event::SlotExpired { .. })));
    assert!(has(|e| matches!(e, Event::CycleTick { .. })));
    assert!(has(|e| matches!(e, Event::RevocationStrike { .. })));
    assert!(has(|e| matches!(e, Event::LeaseCompleted { .. })));
}

#[test]
fn log_times_and_ties_are_ordered() {
    let engine = Engine::new(churn_config(), Amp::new()).unwrap();
    let run = engine.run(23).unwrap();
    for pair in run.log.entries.windows(2) {
        assert!(
            (pair[0].time, pair[0].seq) < (pair[1].time, pair[1].seq),
            "log must be strictly ordered by (time, seq)"
        );
    }
}
