//! The determinism contract: an engine run is a pure function of
//! `(config, seed)`, so identically seeded runs must produce
//! byte-identical serialized event logs and reports.

use ecosched_engine::{ArrivalConfig, Engine, EngineConfig, Event};
use ecosched_optimize::OptStats;
use ecosched_select::{Alp, Amp};
use ecosched_sim::swf::{parse_swf, SwfImportConfig};
use ecosched_sim::{IterationConfig, JobGenConfig, RevocationConfig, SearchMode};

fn base_config() -> EngineConfig {
    EngineConfig {
        cycles: 5,
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: 8.0,
            jobs: 20,
            job_gen: JobGenConfig::default(),
        },
        ..EngineConfig::default()
    }
}

fn churn_config() -> EngineConfig {
    EngineConfig {
        revocation: RevocationConfig::per_slot(0.05),
        ..base_config()
    }
}

#[test]
fn same_seed_same_log_and_report() {
    let engine = Engine::new(base_config(), Amp::new()).unwrap();
    let a = engine.run(42).unwrap();
    let b = engine.run(42).unwrap();
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.log.fnv1a_hash(), b.log.fnv1a_hash());
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn same_seed_same_log_under_churn() {
    let engine = Engine::new(churn_config(), Amp::new()).unwrap();
    let a = engine.run(42).unwrap();
    let b = engine.run(42).unwrap();
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert!(a.report.revocations > 0, "churn config must inject faults");
}

#[test]
fn same_seed_same_log_for_alp() {
    let engine = Engine::new(churn_config(), Alp::new()).unwrap();
    let a = engine.run(17).unwrap();
    let b = engine.run(17).unwrap();
    assert_eq!(a.log.fnv1a_hash(), b.log.fnv1a_hash());
    assert_eq!(a.report, b.report);
}

#[test]
fn different_seeds_diverge() {
    let engine = Engine::new(base_config(), Amp::new()).unwrap();
    let a = engine.run(1).unwrap();
    let b = engine.run(2).unwrap();
    assert_ne!(
        a.log.fnv1a_hash(),
        b.log.fnv1a_hash(),
        "different seeds must produce different event streams"
    );
}

#[test]
fn trace_replay_is_deterministic() {
    let trace = parse_swf(
        "; mini trace\r\n\
         1 0 5 3600 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1\r\n\
         2 30 5 1800 2 -1 -1 2 2400 -1 1 1 1 1 1 1 -1 -1\r\n\
         3 90 5 1200 1 -1 -1 1 1200 -1 1 1 1 1 1 1 -1 -1\r\n\
         4 150 5 2400 2 -1 -1 2 3000 -1 1 1 1 1 1 1 -1 -1\r\n",
    )
    .unwrap();
    let config = EngineConfig {
        cycles: 4,
        arrivals: ArrivalConfig::Trace {
            trace,
            import: SwfImportConfig::default(),
        },
        ..EngineConfig::default()
    };
    let engine = Engine::new(config, Amp::new()).unwrap();
    let a = engine.run(9).unwrap();
    let b = engine.run(9).unwrap();
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.report.to_json(), b.report.to_json());
    assert_eq!(a.report.jobs_arrived, 4);
    assert!(a.report.jobs_scheduled > 0);
}

/// Runs the same seed with and without the incremental-optimizer cache
/// and asserts the scheduling outcome is byte-identical: same event log,
/// same report once the (legitimately differing) work counters are
/// zeroed out.
fn assert_cache_invisible(config: EngineConfig, seed: u64) -> (OptStats, OptStats) {
    let cached = Engine::new(config.clone(), Amp::new()).unwrap();
    let uncached = Engine::new(
        EngineConfig {
            optimizer_cache: false,
            ..config
        },
        Amp::new(),
    )
    .unwrap();
    let a = cached.run(seed).unwrap();
    let b = uncached.run(seed).unwrap();
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.log.fnv1a_hash(), b.log.fnv1a_hash());
    let mut ra = a.report.clone();
    let mut rb = b.report.clone();
    let (opt_on, opt_off) = (ra.opt, rb.opt);
    ra.opt = OptStats::default();
    rb.opt = OptStats::default();
    assert_eq!(ra.to_json(), rb.to_json());
    (opt_on, opt_off)
}

#[test]
fn optimizer_cache_is_outcome_invisible() {
    let (opt_on, opt_off) = assert_cache_invisible(base_config(), 42);
    assert!(opt_on.solves > 0, "cycles must exercise the optimizer");
    assert_eq!(
        opt_on.solves, opt_off.solves,
        "both modes answer the same solve sequence"
    );
}

#[test]
fn optimizer_cache_is_outcome_invisible_under_churn() {
    let (opt_on, opt_off) = assert_cache_invisible(churn_config(), 42);
    assert_eq!(opt_on.solves, opt_off.solves);
    assert!(
        opt_on.rows_rebuilt <= opt_off.rows_rebuilt,
        "the shared cache must never rebuild more rows than from-scratch \
         solving ({} > {})",
        opt_on.rows_rebuilt,
        opt_off.rows_rebuilt
    );
}

/// Runs the same seed at `threads = 1` and `threads = n` and asserts the
/// outcome is byte-identical — event log, hash, and the *full* report,
/// including the [`OptStats`] work counters (the parallel reduction must
/// count the same rows the sequential run counts, not just commit the
/// same leases).
fn assert_threads_invisible(config: EngineConfig, seed: u64, n: usize) {
    let sequential = Engine::new(config.clone(), Amp::new()).unwrap();
    let parallel = Engine::new(
        EngineConfig {
            threads: n,
            ..config
        },
        Amp::new(),
    )
    .unwrap();
    assert_eq!(
        sequential.config_fingerprint(),
        parallel.config_fingerprint(),
        "the fingerprint must normalize the thread count away"
    );
    let a = sequential.run(seed).unwrap();
    let b = parallel.run(seed).unwrap();
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.log.fnv1a_hash(), b.log.fnv1a_hash());
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn thread_count_is_outcome_invisible() {
    for n in [2, 4, 7] {
        assert_threads_invisible(base_config(), 42, n);
    }
}

#[test]
fn thread_count_is_outcome_invisible_under_churn() {
    assert_threads_invisible(churn_config(), 42, 4);
}

#[test]
fn thread_count_is_outcome_invisible_coscheduled() {
    let config = EngineConfig {
        iteration: IterationConfig {
            search_mode: SearchMode::Coscheduled,
            ..IterationConfig::default()
        },
        ..base_config()
    };
    assert_threads_invisible(config, 42, 4);
}

#[test]
fn thread_count_is_outcome_invisible_without_cache() {
    let config = EngineConfig {
        optimizer_cache: false,
        ..base_config()
    };
    assert_threads_invisible(config, 42, 3);
}

/// Runs the same seed under both market representations and asserts the
/// outcome is byte-identical: same event log, same hash, same *full*
/// report — the interval timeline must walk, carve, and return exactly
/// the slots the flat list does, work counters included.
fn assert_interval_market_invisible(config: EngineConfig, seed: u64) {
    let interval = Engine::new(
        EngineConfig {
            interval_market: true,
            ..config.clone()
        },
        Amp::new(),
    )
    .unwrap();
    let flat = Engine::new(
        EngineConfig {
            interval_market: false,
            ..config
        },
        Amp::new(),
    )
    .unwrap();
    assert_eq!(
        interval.config_fingerprint(),
        flat.config_fingerprint(),
        "the fingerprint must not see the market representation"
    );
    let a = interval.run(seed).unwrap();
    let b = flat.run(seed).unwrap();
    assert_eq!(a.log.to_json(), b.log.to_json());
    assert_eq!(a.log.fnv1a_hash(), b.log.fnv1a_hash());
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn interval_market_is_outcome_invisible() {
    assert_interval_market_invisible(base_config(), 42);
}

#[test]
fn interval_market_is_outcome_invisible_under_churn() {
    assert_interval_market_invisible(churn_config(), 42);
}

#[test]
fn interval_market_is_outcome_invisible_coscheduled() {
    let config = EngineConfig {
        iteration: IterationConfig {
            search_mode: SearchMode::Coscheduled,
            ..IterationConfig::default()
        },
        ..base_config()
    };
    assert_interval_market_invisible(config, 42);
}

#[test]
fn interval_market_is_outcome_invisible_without_coalesce() {
    // Coalescing is where the interval form's merge logic does real work;
    // the uncoalesced run exercises pure fragmentation instead.
    let config = EngineConfig {
        coalesce: false,
        ..churn_config()
    };
    assert_interval_market_invisible(config, 42);
}

#[test]
fn interval_market_is_outcome_invisible_threaded() {
    for config in [base_config(), churn_config()] {
        assert_interval_market_invisible(
            EngineConfig {
                threads: 4,
                ..config
            },
            42,
        );
    }
}

#[test]
fn interval_market_is_outcome_invisible_on_trace_replay() {
    // The E16-style path: trace-driven arrivals instead of Poisson.
    let trace = parse_swf(
        "; mini trace\r\n\
         1 0 5 3600 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1\r\n\
         2 30 5 1800 2 -1 -1 2 2400 -1 1 1 1 1 1 1 -1 -1\r\n\
         3 90 5 1200 1 -1 -1 1 1200 -1 1 1 1 1 1 1 -1 -1\r\n\
         4 150 5 2400 2 -1 -1 2 3000 -1 1 1 1 1 1 1 -1 -1\r\n",
    )
    .unwrap();
    let config = EngineConfig {
        cycles: 4,
        arrivals: ArrivalConfig::Trace {
            trace,
            import: SwfImportConfig::default(),
        },
        ..EngineConfig::default()
    };
    assert_interval_market_invisible(config, 9);
}

#[test]
fn interval_market_flag_is_absent_from_the_wire() {
    // The representation is an execution knob: serializing a flat-market
    // config and decoding it must yield the default (interval) — the
    // wire format, and with it every fingerprint and old checkpoint,
    // never sees the flag.
    let config = EngineConfig {
        interval_market: false,
        ..base_config()
    };
    let value = serde::Serialize::to_value(&config);
    let decoded: EngineConfig = serde::Deserialize::from_value(&value).unwrap();
    assert!(decoded.interval_market, "decode must yield the default");
    assert_eq!(
        decoded,
        EngineConfig {
            interval_market: true,
            ..config
        }
    );
}

#[test]
fn log_covers_the_full_event_taxonomy() {
    let engine = Engine::new(churn_config(), Amp::new()).unwrap();
    let run = engine.run(42).unwrap();
    let has = |pred: fn(&Event) -> bool| run.log.entries.iter().any(|e| pred(&e.event));
    assert!(has(|e| matches!(e, Event::JobArrival { .. })));
    assert!(has(|e| matches!(e, Event::SlotPublished { .. })));
    assert!(has(|e| matches!(e, Event::SlotExpired { .. })));
    assert!(has(|e| matches!(e, Event::CycleTick { .. })));
    assert!(has(|e| matches!(e, Event::RevocationStrike { .. })));
    assert!(has(|e| matches!(e, Event::LeaseCompleted { .. })));
}

#[test]
fn log_times_and_ties_are_ordered() {
    let engine = Engine::new(churn_config(), Amp::new()).unwrap();
    let run = engine.run(23).unwrap();
    for pair in run.log.entries.windows(2) {
        assert!(
            (pair[0].time, pair[0].seq) < (pair[1].time, pair[1].seq),
            "log must be strictly ordered by (time, seq)"
        );
    }
}
