//! Fragmentation regression: a long churned run shreds the vacant market
//! with window carves, revocation strikes, and tail returns every cycle —
//! the coalescing commit pass must keep the live slot count bounded
//! instead of letting remnants accumulate without limit.
//!
//! This is the scenario the interval-timeline representation exists for:
//! each carve is an `O(log n)` split and each merge an `O(log n)` join,
//! so the bound below is also what keeps the per-cycle market work flat
//! over arbitrarily long runs. The test drives both representations and
//! pins (a) the bound, (b) that they agree on every sampled market, and
//! (c) that coalescing is genuinely load-bearing — the uncoalesced run
//! must fragment measurably worse, else the regression test is vacuous.

use ecosched_engine::{ArrivalConfig, Engine, EngineConfig};
use ecosched_select::Amp;
use ecosched_sim::{JobGenConfig, RevocationConfig};

/// A long, dense, churned scenario: 40 cycles, a steady arrival stream,
/// and per-slot revocation pressure.
fn churn_config(interval_market: bool, coalesce: bool) -> EngineConfig {
    EngineConfig {
        cycles: 40,
        revocation: RevocationConfig::per_slot(0.05),
        coalesce,
        interval_market,
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: 6.0,
            jobs: 120,
            job_gen: JobGenConfig::default(),
        },
        ..EngineConfig::default()
    }
}

/// Steps a run to completion, sampling the vacant-market size after
/// every logged event. Returns (per-sample sizes, final report json).
fn market_sizes(config: EngineConfig) -> (Vec<usize>, String) {
    let engine = Engine::new(config, Amp::new()).unwrap();
    let mut state = engine.start(42);
    let mut sizes = Vec::new();
    while engine.step(&mut state).unwrap().is_some() {
        sizes.push(engine.checkpoint(&state).vacant.len());
    }
    let run = engine.finish(state);
    (sizes, run.report.to_json())
}

#[test]
fn coalesced_market_size_stays_bounded_under_churn() {
    let (interval_sizes, interval_report) = market_sizes(churn_config(true, true));
    let (flat_sizes, flat_report) = market_sizes(churn_config(false, true));

    // Identical trajectories: the representations agree at every sample.
    assert_eq!(interval_sizes, flat_sizes, "market sizes diverge per repr");
    assert_eq!(interval_report, flat_report, "reports diverge per repr");

    // The regression bound. The scenario plateaus around 950 live slots
    // mid-run (carve remnants balanced by expiry and coalescing) and
    // drains at the end; 1.5× headroom separates "dense market" from
    // "leak". A remnant leak (coalesce or expiry regression) grows
    // linearly in committed windows and blows past this within a few of
    // the 40 cycles.
    let peak = interval_sizes.iter().copied().max().unwrap();
    assert!(
        peak <= 1_500,
        "vacant market fragmented to {peak} slots — remnants are leaking"
    );

    // And the run was actually hostile: churn fired, slots were carved.
    assert!(
        interval_sizes.len() > 1_000,
        "scenario too small to regress fragmentation"
    );
}

#[test]
fn coalescing_is_load_bearing() {
    // Without the merge pass the same scenario must fragment measurably
    // worse — otherwise the bound above tests nothing.
    let (coalesced, _) = market_sizes(churn_config(true, true));
    let (shredded, _) = market_sizes(churn_config(true, false));

    let peak_coalesced = coalesced.iter().copied().max().unwrap();
    let peak_shredded = shredded.iter().copied().max().unwrap();
    assert!(
        peak_shredded > peak_coalesced,
        "uncoalesced run ({peak_shredded}) did not fragment past the \
         coalesced run ({peak_coalesced}) — the scenario has gone stale"
    );

    // The uncoalesced run must still match its flat twin — fragmentation
    // changes the partitioning, never the representation contract.
    let (shredded_flat, _) = market_sizes(churn_config(false, false));
    assert_eq!(shredded, shredded_flat);
}
