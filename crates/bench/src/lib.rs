//! Shared fixtures for the ecosched criterion benches.

use ecosched_core::{Batch, Perf, Price, ResourceRequest, SlotList, TimeDelta};
use ecosched_sim::{JobGenConfig, JobGenerator, SlotGenConfig, SlotGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generates a slot list with exactly `m` slots under the paper's
/// distributions, deterministically.
#[must_use]
pub fn slot_list(m: usize, seed: u64) -> SlotList {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SlotGenerator::new(SlotGenConfig::default()).generate_exact(&mut rng, m)
}

/// Generates a batch with exactly `jobs` jobs, deterministically.
#[must_use]
pub fn batch(jobs: usize, seed: u64) -> Batch {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    JobGenerator::new(JobGenConfig::default()).generate_exact(&mut rng, jobs)
}

/// A satisfiable mid-sized request for window-search benches.
#[must_use]
pub fn typical_request() -> ResourceRequest {
    ResourceRequest::new(4, TimeDelta::new(100), Perf::UNIT, Price::from_credits(4))
        .expect("request parameters are valid")
}

/// An unsatisfiable request that forces a full worst-case scan.
#[must_use]
pub fn worst_case_request() -> ResourceRequest {
    ResourceRequest::new(
        500,
        TimeDelta::new(100),
        Perf::UNIT,
        Price::from_credits(1_000_000),
    )
    .expect("request parameters are valid")
}
