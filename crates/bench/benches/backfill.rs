//! Bench: the backfill-style quadratic window search and the classic
//! queue schedulers — the comparison side of the Sec. 3 complexity claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecosched_baseline::{conservative_backfill, easy_backfill, fcfs, BackfillWindow, QueuedJob};
use ecosched_bench::{slot_list, worst_case_request};
use ecosched_core::{JobId, TimeDelta};
use ecosched_select::{ScanStats, SlotSelector};
use std::hint::black_box;

fn bench_backfill_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("backfill_window_worst_case");
    // Smaller sweep: quadratic cost makes 16k slots impractical per-iter.
    for m in [250usize, 1_000, 4_000] {
        let list = slot_list(m, 42);
        let request = worst_case_request();
        group.bench_with_input(BenchmarkId::new("backfill", m), &m, |b, _| {
            b.iter(|| {
                let mut stats = ScanStats::new();
                black_box(BackfillWindow::new().find_window(black_box(&list), &request, &mut stats))
            });
        });
    }
    group.finish();
}

fn bench_queue_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_schedulers");
    let jobs: Vec<QueuedJob> = (0..64u32)
        .map(|i| {
            QueuedJob::new(
                JobId::new(i),
                1 + (i as usize * 7) % 8,
                TimeDelta::new(10 + i64::from(i * 13) % 90),
            )
        })
        .collect();
    group.bench_function("fcfs", |b| {
        b.iter(|| black_box(fcfs(black_box(&jobs), 8)));
    });
    group.bench_function("conservative", |b| {
        b.iter(|| black_box(conservative_backfill(black_box(&jobs), 8)));
    });
    group.bench_function("easy", |b| {
        b.iter(|| black_box(easy_backfill(black_box(&jobs), 8)));
    });
    group.finish();
}

criterion_group!(benches, bench_backfill_window, bench_queue_schedulers);
criterion_main!(benches);
