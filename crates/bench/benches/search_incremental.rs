//! Bench: checkpointed incremental alternatives search vs the
//! restart-per-window reference driver.
//!
//! The instance is built so the number of committed alternatives is
//! bounded (~100) independent of the list size `m`: only a fixed-size band
//! of *cheap* slots at the **end** of the horizon can form windows, while
//! the long expensive prefix merely has to be scanned past. The naive
//! driver re-walks that prefix for every window (`O(A·m)` slot visits);
//! the incremental driver resumes each job at its last acceptance anchor
//! and walks the list once per job (`O(m)` amortized). The gap therefore
//! widens with `m` — that is the measured claim, recorded in
//! `BENCH_select.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecosched_core::{
    Batch, Job, JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span,
    TimeDelta, TimePoint, Window,
};
use ecosched_select::{
    find_alternatives, find_alternatives_naive, Alp, Amp, ScanStats, SlotSelector,
};
use std::hint::black_box;

const NODES: u64 = 64;
const CHEAP_PRICE: i64 = 2;
const DEAR_PRICE: i64 = 50;

/// `m` slots over 64 nodes, sequential per node (no same-node overlap),
/// with only the last `min(192, m/2)` slots priced within reach of the
/// jobs. Windows can only form in that cheap tail band.
fn banded_list(m: usize) -> SlotList {
    let cheap_from = m - (m / 2).min(192);
    let slots: Vec<Slot> = (0..m as u64)
        .map(|i| {
            let node = i % NODES;
            let cycle = (i / NODES) as i64;
            let start = cycle * 140 + (i % 7) as i64 * 3;
            let price = if i as usize >= cheap_from {
                CHEAP_PRICE
            } else {
                DEAR_PRICE
            };
            Slot::new(
                SlotId::new(i),
                NodeId::new(node as u32),
                Perf::UNIT,
                Price::from_credits(price),
                Span::new(TimePoint::new(start), TimePoint::new(start + 120)).unwrap(),
            )
            .unwrap()
        })
        .collect();
    SlotList::from_slots(slots).unwrap()
}

/// Four identical 4-node jobs. Budget `S = 4·60·4 = 960` admits four cheap
/// members (4·120 = 480) but no expensive one (50·60 = 3000 alone busts
/// it), and ALP's cap 4 rejects expensive slots outright.
fn banded_batch() -> Batch {
    let jobs: Vec<Job> = (0..4)
        .map(|i| {
            Job::new(
                JobId::new(i),
                ResourceRequest::new(4, TimeDelta::new(60), Perf::UNIT, Price::from_credits(4))
                    .unwrap(),
            )
        })
        .collect();
    Batch::from_jobs(jobs).unwrap()
}

struct NaiveAlp(Alp);

impl SlotSelector for NaiveAlp {
    fn name(&self) -> &'static str {
        "ALP-naive"
    }

    fn find_window(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window> {
        self.0.find_window_naive(list, request, stats)
    }
}

struct NaiveAmp(Amp);

impl SlotSelector for NaiveAmp {
    fn name(&self) -> &'static str {
        "AMP-naive"
    }

    fn find_window(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window> {
        self.0.find_window_naive(list, request, stats)
    }
}

fn bench_search_amp(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_incremental_amp");
    let batch = banded_batch();
    for m in [135usize, 1_000, 16_000] {
        let list = banded_list(m);
        // Sanity: the instance really commits a bounded, non-trivial
        // number of alternatives and the incremental driver resumes.
        let outcome = find_alternatives(Amp::new(), &list, &batch).unwrap();
        assert!(outcome.alternatives.total_found() >= 8);
        assert!(outcome.stats.scan.checkpoint_hits > 0);
        let reference = find_alternatives_naive(NaiveAmp(Amp::new()), &list, &batch).unwrap();
        assert_eq!(outcome.alternatives, reference.alternatives);

        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    find_alternatives_naive(NaiveAmp(Amp::new()), black_box(&list), &batch)
                        .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("incremental", m), &m, |b, _| {
            b.iter(|| black_box(find_alternatives(Amp::new(), black_box(&list), &batch).unwrap()));
        });
    }
    group.finish();
}

fn bench_search_alp(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_incremental_alp");
    let batch = banded_batch();
    for m in [135usize, 1_000, 16_000] {
        let list = banded_list(m);
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    find_alternatives_naive(NaiveAlp(Alp::new()), black_box(&list), &batch)
                        .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("incremental", m), &m, |b, _| {
            b.iter(|| black_box(find_alternatives(Alp::new(), black_box(&list), &batch).unwrap()));
        });
    }
    group.finish();
}

fn bench_single_window_amp(c: &mut Criterion) {
    // Single-shot window search: same forward scan on both sides; the
    // delta isolates the cost-ordered pool against the per-group sort.
    // With the small (~64-member) pools of the banded instance the sort
    // is cheaper; the pool pays off when the candidate pool grows with
    // the list, which is what the unsatisfiable wide request provokes
    // (every slot admitted, nothing ever expires fast enough).
    let mut group = c.benchmark_group("find_window_amp");
    // The 135-slot point sits below the adaptive pool's Vec/BTreeSet
    // switch-over, pinning the small-market case the paper's Sec. 5
    // environment (m ≈ 130) actually exercises.
    let request =
        ResourceRequest::new(4, TimeDelta::new(60), Perf::UNIT, Price::from_credits(4)).unwrap();
    for m in [135usize, 1_000, 16_000] {
        let list = banded_list(m);
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| {
                let mut stats = ScanStats::new();
                black_box(Amp::new().find_window_naive(black_box(&list), &request, &mut stats))
            });
        });
        group.bench_with_input(BenchmarkId::new("incremental", m), &m, |b, _| {
            b.iter(|| {
                let mut stats = ScanStats::new();
                black_box(Amp::new().find_window(black_box(&list), &request, &mut stats))
            });
        });
    }
    // Wide request on long slots: the pool holds O(m) members and the
    // naive path re-sorts it at every same-start group. The 1-credit cap
    // keeps the budget unreachable, so the acceptance test fails at every
    // group and the sort repeats all the way down the list.
    let wide =
        ResourceRequest::new(600, TimeDelta::new(60), Perf::UNIT, Price::from_credits(1)).unwrap();
    for m in [1_000usize, 4_000] {
        let slots: Vec<Slot> = (0..m as u64)
            .map(|i| {
                Slot::new(
                    SlotId::new(i),
                    NodeId::new(i as u32),
                    Perf::UNIT,
                    Price::from_credits(1 + (i % 13) as i64),
                    Span::new(TimePoint::new(i as i64), TimePoint::new(m as i64 + 10_000)).unwrap(),
                )
                .unwrap()
            })
            .collect();
        let list = SlotList::from_slots(slots).unwrap();
        group.bench_with_input(BenchmarkId::new("naive_wide_pool", m), &m, |b, _| {
            b.iter(|| {
                let mut stats = ScanStats::new();
                black_box(Amp::new().find_window_naive(black_box(&list), &wide, &mut stats))
            });
        });
        group.bench_with_input(BenchmarkId::new("incremental_wide_pool", m), &m, |b, _| {
            b.iter(|| {
                let mut stats = ScanStats::new();
                black_box(Amp::new().find_window(black_box(&list), &wide, &mut stats))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_search_amp,
    bench_search_alp,
    bench_single_window_amp
);
criterion_main!(benches);
