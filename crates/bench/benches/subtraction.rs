//! Bench: slot-list maintenance — the Fig. 1 (b) subtraction, insertion,
//! and construction costs that every alternatives-search pass pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecosched_bench::{slot_list, typical_request};
use ecosched_core::{Span, TimePoint};
use ecosched_select::{Amp, ScanStats, SlotSelector};
use std::hint::black_box;

fn bench_subtract_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("subtract_window");
    // 64,000 stresses the indexed path: validation and splice stay
    // O(k log m) while a naive rescan of the list would be linear.
    for m in [135usize, 1_000, 4_000, 64_000] {
        let list = slot_list(m, 11);
        let request = typical_request();
        let mut stats = ScanStats::new();
        let window = Amp::new()
            .find_window(&list, &request, &mut stats)
            .expect("typical request is satisfiable");
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let mut copy = list.clone();
                copy.subtract_window(black_box(&window)).unwrap();
                black_box(copy)
            });
        });
    }
    group.finish();
}

fn bench_single_subtract(c: &mut Criterion) {
    let list = slot_list(1_000, 11);
    let victim = *list.iter().nth(500).unwrap();
    let cut = Span::new(victim.start(), victim.start() + (victim.length() / 2)).unwrap();
    c.bench_function("subtract_single_cut_m1000", |b| {
        b.iter(|| {
            let mut copy = list.clone();
            copy.subtract(black_box(victim.id()), black_box(cut))
                .unwrap();
            black_box(copy)
        });
    });
}

fn bench_from_slots(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_list_from_slots");
    for m in [135usize, 1_000, 4_000] {
        let slots: Vec<_> = slot_list(m, 13).into_iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                black_box(ecosched_core::SlotList::from_slots(black_box(slots.clone())).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_from_sorted_slots(c: &mut Criterion) {
    // The generators and the vacancy k-way merge hand over pre-sorted
    // input; the O(m) validating constructor should beat the general
    // sort-based one at every size.
    let mut group = c.benchmark_group("slot_list_from_sorted_slots");
    for m in [135usize, 1_000, 4_000] {
        let slots: Vec<_> = slot_list(m, 13).into_iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    ecosched_core::SlotList::from_sorted_slots(black_box(slots.clone())).unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_earliest_queries(c: &mut Criterion) {
    let list = slot_list(4_000, 17);
    c.bench_function("total_vacant_time_m4000", |b| {
        b.iter(|| black_box(list.total_vacant_time()));
    });
    c.bench_function("earliest_start_m4000", |b| {
        b.iter(|| black_box(list.earliest_start()));
    });
    let _ = TimePoint::ZERO; // keep the import obviously used
}

criterion_group!(
    benches,
    bench_subtract_window,
    bench_single_subtract,
    bench_from_slots,
    bench_from_sorted_slots,
    bench_earliest_queries
);
criterion_main!(benches);
