//! Bench: ALP/AMP window search and the full alternatives search, scaling
//! with the slot-list size m. Supports the paper's O(m) claim (compare
//! with the `backfill` bench's quadratic growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecosched_bench::{batch, slot_list, typical_request, worst_case_request};
use ecosched_select::{find_alternatives, Alp, Amp, ScanStats, SlotSelector};
use std::hint::black_box;

fn bench_find_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_window_worst_case");
    for m in [250usize, 1_000, 4_000, 16_000] {
        let list = slot_list(m, 42);
        let request = worst_case_request();
        group.bench_with_input(BenchmarkId::new("alp", m), &m, |b, _| {
            b.iter(|| {
                let mut stats = ScanStats::new();
                black_box(Alp::new().find_window(black_box(&list), &request, &mut stats))
            });
        });
        group.bench_with_input(BenchmarkId::new("amp", m), &m, |b, _| {
            b.iter(|| {
                let mut stats = ScanStats::new();
                black_box(Amp::new().find_window(black_box(&list), &request, &mut stats))
            });
        });
    }
    group.finish();
}

fn bench_find_window_satisfiable(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_window_satisfiable");
    let list = slot_list(135, 42); // the paper's typical list size
    let request = typical_request();
    group.bench_function("alp", |b| {
        b.iter(|| {
            let mut stats = ScanStats::new();
            black_box(Alp::new().find_window(black_box(&list), &request, &mut stats))
        });
    });
    group.bench_function("amp", |b| {
        b.iter(|| {
            let mut stats = ScanStats::new();
            black_box(Amp::new().find_window(black_box(&list), &request, &mut stats))
        });
    });
    group.finish();
}

fn bench_alternatives_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("alternatives_search");
    let list = slot_list(135, 7);
    let jobs = batch(5, 7);
    group.bench_function("alp", |b| {
        b.iter(|| black_box(find_alternatives(Alp::new(), &list, &jobs).unwrap()));
    });
    group.bench_function("amp", |b| {
        b.iter(|| black_box(find_alternatives(Amp::new(), &list, &jobs).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_find_window,
    bench_find_window_satisfiable,
    bench_alternatives_search
);
criterion_main!(benches);
