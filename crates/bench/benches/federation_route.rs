//! Bench: superscheduler routing cost versus shard count.
//!
//! One claim, recorded in `BENCH_federation.json`: the cheapest-probe
//! routing decision scans every shard's vacant market, so its cost grows
//! with the shard count while the *per-shard* market shrinks when the
//! same total capacity is partitioned. `federation_route/probe/{1,4,16}`
//! measures [`Federation::probe_cheapest`] — the read-only core of
//! `RoutePolicy::CheapestProbe` — against a federation advanced to the
//! middle of a seeded run, so every shard's market carries realistic
//! mid-run fragmentation (carved leases, returned tails), not a fresh
//! publication.
//!
//! Run with `ECOSCHED_BENCH_REPORT=BENCH_federation.json cargo bench
//! -p ecosched-bench --bench federation_route`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecosched_core::{Perf, Price, ResourceRequest, TimeDelta, TimePoint};
use ecosched_engine::{ArrivalConfig, EngineConfig};
use ecosched_federation::{Federation, FederationConfig, FederationState, RoutePolicy};
use ecosched_select::Amp;
use ecosched_sim::{IntRange, JobGenConfig, SlotGenConfig};
use std::hint::black_box;

/// A fixed total market of ~135 slots per cycle split evenly over the
/// shard count, with a Poisson stream busy enough to fragment it.
fn fed_config(shards: u32) -> FederationConfig {
    let split = i64::from(shards);
    let base = EngineConfig {
        slot_gen: SlotGenConfig {
            slot_count: IntRange::new((120 / split).max(1), (150 / split).max(1)),
            ..SlotGenConfig::default()
        },
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: 5.0,
            jobs: 96,
            job_gen: JobGenConfig::default(),
        },
        cycles: 12,
        ..EngineConfig::default()
    };
    FederationConfig {
        route: RoutePolicy::CheapestProbe,
        ..FederationConfig::new(base, shards)
    }
}

/// Drives the federation to the middle of its run so the markets carry
/// mid-run fragmentation, and returns the live state.
fn mid_run(fed: &Federation<Amp>, seed: u64) -> FederationState {
    let mut state = fed.start(seed);
    for _ in 0..600 {
        if fed
            .step(&mut state)
            .expect("seeded run must not fail")
            .is_none()
        {
            break;
        }
    }
    state
}

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("federation_route");
    let request = ResourceRequest::new(3, TimeDelta::new(100), Perf::UNIT, Price::from_credits(8))
        .expect("static request is valid");
    for shards in [1u32, 4, 16] {
        let fed = Federation::new(fed_config(shards), Amp::new()).expect("config is valid");
        let state = mid_run(&fed, 42);
        let at = TimePoint::new(state.last_time().ticks().max(0));
        group.bench_with_input(BenchmarkId::new("probe", shards), &shards, |b, _| {
            b.iter(|| black_box(fed.probe_cheapest(black_box(&state), &request, at)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);
