//! Bench: the incremental combination optimizer against the retained
//! from-scratch oracle — cold first solves, warm re-queries at shifted
//! limits, warm re-solves after a front-of-batch mutation, and Pareto
//! re-queries at a shifted `B*`.
//!
//! Committed medians live in `BENCH_optimize.json`; refresh them with
//!
//! ```sh
//! ECOSCHED_BENCH_REPORT=BENCH_optimize.json \
//!     cargo bench -p ecosched-bench --bench optimize_incremental
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecosched_core::{
    Alternative, JobAlternatives, JobId, Money, NodeId, Perf, Price, Slot, SlotId, Span, TimeDelta,
    TimePoint, Window, WindowSlot,
};
use ecosched_optimize::{min_cost_under_time_naive, IncrementalOptimizer, ParetoFrontier};
use std::hint::black_box;

/// Deterministic splitmix64 — the bench needs repeatable tables, not
/// statistical quality.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An alternative with exact integer-credit cost and tick time (a
/// zero-price slot fixes the length, a unit-tick slot fixes the cost).
fn alternative(job: u32, cost_credits: i64, time: i64) -> Alternative {
    let length_slot = Slot::new(
        SlotId::new(0),
        NodeId::new(0),
        Perf::UNIT,
        Price::ZERO,
        Span::new(TimePoint::ZERO, TimePoint::new(1_000_000)).unwrap(),
    )
    .unwrap();
    let cost_slot = Slot::new(
        SlotId::new(1),
        NodeId::new(1),
        Perf::UNIT,
        Price::from_credits(cost_credits),
        Span::new(TimePoint::ZERO, TimePoint::new(1_000_000)).unwrap(),
    )
    .unwrap();
    let window = Window::new(
        TimePoint::ZERO,
        vec![
            WindowSlot::from_slot(&length_slot, TimeDelta::new(time)).unwrap(),
            WindowSlot::from_slot(&cost_slot, TimeDelta::new(1)).unwrap(),
        ],
    )
    .unwrap();
    Alternative::new(JobId::new(job), window)
}

/// A synthetic batch: `jobs` jobs with 4 alternatives each, costs in
/// `1..=30` credits and times in `1..=12` ticks (small times keep the DP
/// width proportional to the batch, as the paper's quotas do).
fn synth_table(jobs: usize, seed: u64) -> Vec<JobAlternatives> {
    let mut state = seed;
    (0..jobs)
        .map(|i| {
            let mut ja = JobAlternatives::new(JobId::new(i as u32));
            for _ in 0..4 {
                let cost = 1 + (splitmix(&mut state) % 30) as i64;
                let time = 1 + (splitmix(&mut state) % 12) as i64;
                ja.push(alternative(i as u32, cost, time));
            }
            ja
        })
        .collect()
}

/// A feasible `T*`: the sum of per-job fastest times plus one tick of
/// slack per job, so limit-shift variants stay feasible too.
fn quota_for(table: &[JobAlternatives]) -> TimeDelta {
    let floor: i64 = table
        .iter()
        .map(|ja| {
            ja.alternatives()
                .iter()
                .map(|a| a.window().length().ticks())
                .min()
                .unwrap()
        })
        .sum();
    TimeDelta::new(floor + table.len() as i64)
}

/// Swaps job 0's alternatives for a fresh draw: the front-of-batch
/// mutation that forces a one-row prefix patch while the whole suffix
/// stays reusable.
fn mutate_front(table: &[JobAlternatives], seed: u64) -> Vec<JobAlternatives> {
    let mut mutated = table.to_vec();
    let mut state = seed;
    let mut ja = JobAlternatives::new(JobId::new(0));
    for _ in 0..4 {
        let cost = 1 + (splitmix(&mut state) % 30) as i64;
        let time = 1 + (splitmix(&mut state) % 12) as i64;
        ja.push(alternative(0, cost, time));
    }
    mutated[0] = ja;
    mutated
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_incremental");
    for jobs in [50usize, 200, 800] {
        let table = synth_table(jobs, jobs as u64);
        let patched = mutate_front(&table, 0x5eed + jobs as u64);
        let quota = quota_for(&table);
        let shifted = TimeDelta::new(quota.ticks() - 1);

        group.bench_with_input(BenchmarkId::new("naive_rebuild", jobs), &jobs, |b, _| {
            b.iter(|| black_box(min_cost_under_time_naive(black_box(&table), quota)));
        });

        group.bench_with_input(BenchmarkId::new("cold_first_solve", jobs), &jobs, |b, _| {
            b.iter(|| {
                let mut optimizer = IncrementalOptimizer::new();
                black_box(optimizer.min_cost_under_time(black_box(&table), quota))
            });
        });

        // Warm re-query: the rows are resident, only the capacity read
        // point moves — the case every `ParetoFrontier`-style limit sweep
        // and repeated VO-limit evaluation hits.
        group.bench_with_input(BenchmarkId::new("warm_limit_shift", jobs), &jobs, |b, _| {
            let mut optimizer = IncrementalOptimizer::new();
            optimizer.min_cost_under_time(&table, quota).unwrap();
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let q = if flip { shifted } else { quota };
                black_box(optimizer.min_cost_under_time(black_box(&table), q))
            });
        });

        // Warm re-solve after a front-of-batch mutation: one row rebuilt,
        // `jobs - 1` suffix rows reused — the engine's cycle-to-cycle
        // shape when one job leaves or changes.
        group.bench_with_input(BenchmarkId::new("warm_front_patch", jobs), &jobs, |b, _| {
            let mut optimizer = IncrementalOptimizer::new();
            optimizer.min_cost_under_time(&table, quota).unwrap();
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let t = if flip { &patched } else { &table };
                black_box(optimizer.min_cost_under_time(black_box(t), quota))
            });
        });
    }
    group.finish();
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_incremental_pareto");
    let jobs = 50usize;
    let table = synth_table(jobs, jobs as u64);
    // The cheapest feasible spend, so every shifted budget stays feasible.
    let floor = min_cost_under_time_naive(&table, quota_for(&table))
        .unwrap()
        .total_cost();
    let budgets: Vec<Money> = (0..8)
        .map(|i| Money::from_credits(floor.to_f64() as i64 + 1 + i))
        .collect();

    group.bench_function("fresh_requery_shifted_budget", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let budget = budgets[i % budgets.len()];
            let frontier = ParetoFrontier::new(black_box(&table)).unwrap();
            black_box(frontier.min_time_under_budget(budget))
        });
    });

    group.bench_function("warm_requery_shifted_budget", |b| {
        let mut optimizer = IncrementalOptimizer::new();
        optimizer
            .pareto_min_time_under_budget(&table, budgets[0])
            .unwrap();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let budget = budgets[i % budgets.len()];
            black_box(optimizer.pareto_min_time_under_budget(black_box(&table), budget))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dp, bench_pareto);
criterion_main!(benches);
