//! Bench: observability overhead on the hot engine path.
//!
//! One claim, recorded in `BENCH_select.json` and gated in CI: attaching
//! a live metrics recorder to the engine must cost less than 2% of
//! cycle time. Two medians land in the report —
//! `obs_overhead/recorder_off` runs a churned five-cycle engine with the
//! default no-op [`EngineObs::off`] handle, and
//! `obs_overhead/recorder_on` runs the identical `(config, seed)` with a
//! full registry + tracer attached, so the ratio isolates exactly the
//! instrumentation cost (atomic counter adds, gauge stores, ring-buffer
//! span pushes). The A/B tests in `crates/engine/tests/obs_ab.rs` pin
//! the two runs byte-identical; this bench pins them time-identical to
//! within the gate.

use criterion::{criterion_group, criterion_main, Criterion};
use ecosched_engine::{ArrivalConfig, Engine, EngineConfig, EngineIds, EngineObs};
use ecosched_obs::{Recorder, RegistryBuilder};
use ecosched_select::Amp;
use ecosched_sim::{JobGenConfig, RevocationConfig};
use std::hint::black_box;

const SEED: u64 = 42;

/// The churned configuration from the obs A/B suite: Poisson arrivals
/// plus per-slot revocations, so every instrumented path (cycle, scan,
/// optimize, commit, repair) runs each iteration.
fn churn_config() -> EngineConfig {
    EngineConfig {
        cycles: 5,
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: 8.0,
            jobs: 20,
            job_gen: JobGenConfig::default(),
        },
        revocation: RevocationConfig::per_slot(0.05),
        ..EngineConfig::default()
    }
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    let plain = Engine::new(churn_config(), Amp::new()).expect("valid config");

    let mut b = RegistryBuilder::new();
    let ids = EngineIds::register(&mut b, None);
    let recorder = Recorder::new(b.build());
    let observed = Engine::new(churn_config(), Amp::new())
        .expect("valid config")
        .with_obs(EngineObs::new(recorder, ids));

    // Sanity: the recorder must be outcome-invisible on this instance
    // before we time it — a divergence here means the bench would be
    // comparing different work.
    let a = plain.run(SEED).expect("plain run");
    let o = observed.run(SEED).expect("observed run");
    assert_eq!(a.log.fnv1a_hash(), o.log.fnv1a_hash());
    assert_eq!(a.report.to_json(), o.report.to_json());

    group.bench_function("recorder_off", |b| {
        b.iter(|| black_box(plain.run(black_box(SEED)).expect("plain run")));
    });
    group.bench_function("recorder_on", |b| {
        b.iter(|| black_box(observed.run(black_box(SEED)).expect("observed run")));
    });

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
