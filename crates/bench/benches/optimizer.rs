//! Bench: the combination optimizers — the backward-run DP of Eq. (1)
//! (both criteria), the exact Pareto sweep, and the VO-limit computation,
//! on alternatives tables produced by the real search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecosched_bench::{batch, slot_list};
use ecosched_core::{JobAlternatives, Money};
use ecosched_optimize::{
    min_cost_under_time, min_time_under_budget, time_quota, vo_budget, ParetoFrontier,
};
use ecosched_select::{find_alternatives, Amp};
use std::hint::black_box;

/// A realistic alternatives table: run AMP's search over generated inputs.
fn table(jobs: usize, seed: u64) -> Vec<JobAlternatives> {
    let list = slot_list(135, seed);
    let jobs = batch(jobs, seed);
    let outcome = find_alternatives(Amp::new(), &list, &jobs).unwrap();
    outcome
        .alternatives
        .per_job()
        .iter()
        .filter(|ja| !ja.is_empty())
        .cloned()
        .collect()
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("backward_run_dp");
    for jobs in [3usize, 5, 7] {
        let t = table(jobs, jobs as u64);
        if t.is_empty() {
            continue;
        }
        let quota = time_quota(&t).max(ecosched_core::TimeDelta::new(1));
        let budget = vo_budget(&t).unwrap_or(Money::from_credits(10_000));
        let resolution = Money::from_micro((budget.micro() / 1_500).max(1));
        group.bench_with_input(
            BenchmarkId::new("min_cost_under_time", jobs),
            &jobs,
            |b, _| {
                b.iter(|| black_box(min_cost_under_time(black_box(&t), quota)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("min_time_under_budget", jobs),
            &jobs,
            |b, _| {
                b.iter(|| black_box(min_time_under_budget(black_box(&t), budget, resolution)));
            },
        );
    }
    group.finish();
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_frontier");
    for jobs in [3usize, 5, 7] {
        let t = table(jobs, jobs as u64);
        if t.is_empty() {
            continue;
        }
        let budget = vo_budget(&t).unwrap_or(Money::from_credits(10_000));
        group.bench_with_input(BenchmarkId::new("build_and_solve", jobs), &jobs, |b, _| {
            b.iter(|| {
                let frontier = ParetoFrontier::new(black_box(&t)).unwrap();
                black_box(frontier.min_time_under_budget(budget))
            });
        });
    }
    group.finish();
}

fn bench_vo_limits(c: &mut Criterion) {
    let t = table(5, 5);
    c.bench_function("vo_limits_eq2_eq3", |b| {
        b.iter(|| {
            let quota = time_quota(black_box(&t));
            black_box((quota, vo_budget(&t)))
        });
    });
}

criterion_group!(benches, bench_dp, bench_pareto, bench_vo_limits);
criterion_main!(benches);
