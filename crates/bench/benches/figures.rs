//! Bench: scaled-down regenerations of the paper's figures — how long
//! each experiment costs per iteration — plus the E8 length-rule ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use ecosched_bench::{batch, slot_list};
use ecosched_experiments::paper_example;
use ecosched_experiments::runner::{run_seed, ExperimentConfig};
use ecosched_select::{find_alternatives, Amp, LengthRule};
use ecosched_sim::Criterion as VoCriterion;
use std::hint::black_box;

fn bench_fig2_3(c: &mut Criterion) {
    c.bench_function("fig2_3_worked_example", |b| {
        b.iter(|| black_box(paper_example::run().unwrap()));
    });
}

fn bench_fig4_iteration(c: &mut Criterion) {
    let config = ExperimentConfig {
        criterion: VoCriterion::MinTimeUnderBudget,
        ..ExperimentConfig::default()
    };
    let mut seed = 0u64;
    c.bench_function("fig4_paired_iteration", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(run_seed(black_box(&config), seed % 1_000))
        });
    });
}

fn bench_fig6_iteration(c: &mut Criterion) {
    let config = ExperimentConfig {
        criterion: VoCriterion::MinCostUnderTime,
        ..ExperimentConfig::default()
    };
    let mut seed = 0u64;
    c.bench_function("fig6_paired_iteration", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(run_seed(black_box(&config), seed % 1_000))
        });
    });
}

fn bench_length_rule_ablation(c: &mut Criterion) {
    // E8: the R1 ablation — the literal inequality admits different slots,
    // so both correctness (tested elsewhere) and cost differ.
    let list = slot_list(135, 3);
    let jobs = batch(5, 3);
    let mut group = c.benchmark_group("length_rule_ablation");
    group.bench_function("corrected", |b| {
        b.iter(|| {
            black_box(
                find_alternatives(Amp::with_length_rule(LengthRule::Corrected), &list, &jobs)
                    .unwrap(),
            )
        });
    });
    group.bench_function("paper_literal", |b| {
        b.iter(|| {
            black_box(
                find_alternatives(
                    Amp::with_length_rule(LengthRule::PaperLiteral),
                    &list,
                    &jobs,
                )
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2_3,
    bench_fig4_iteration,
    bench_fig6_iteration,
    bench_length_rule_ablation
);
criterion_main!(benches);
