//! Bench: deterministic parallel cycle execution.
//!
//! Two claims, recorded in `BENCH_select.json`:
//!
//! * **`coscheduled_round`** — the lazy-revalidated priority-queue driver
//!   behind [`find_alternatives_coscheduled`] against the retained
//!   full-rescan driver ([`find_alternatives_coscheduled_rescan`]) at
//!   batch 50/200/800. The rescan driver re-evaluates every live scan
//!   after every commit (`O(batch²)` scan runs per pass); the queue
//!   driver re-stamps stale heap keys via the monotone-window-start
//!   survivability check and re-runs only invalidated scans
//!   (`O(batch log batch)` heap traffic in the common case). The ratio
//!   therefore widens with the batch size.
//! * **`cycle_threads`** — one full [`run_iteration_cached_with`] cycle
//!   over a thread-count × batch-size grid. On a single-core host the
//!   `threads > 1` points measure the deterministic-reduction machinery's
//!   overhead (outcome identity is asserted by the engine A/B tests); on
//!   a many-core host they measure the speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecosched_core::{
    Batch, Job, JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span,
    TimeDelta, TimePoint,
};
use ecosched_optimize::IncrementalOptimizer;
use ecosched_select::{find_alternatives_coscheduled, find_alternatives_coscheduled_rescan, Amp};
use ecosched_sim::{run_iteration_cached_with, IterationConfig, Parallelism, SearchMode};
use std::hint::black_box;

const NODES: u64 = 64;

/// `gens` consecutive 110-tick slots on each of 64 nodes — enough
/// capacity that a batch of `n` two-node jobs commits most of its windows
/// in the first pass and drains the list in the second.
fn dense_list(gens: u64) -> SlotList {
    let slots: Vec<Slot> = (0..NODES * gens)
        .map(|i| {
            let node = (i % NODES) as u32;
            let gen = (i / NODES) as i64;
            let start = gen * 120 + (i % 5) as i64;
            Slot::new(
                SlotId::new(i),
                NodeId::new(node),
                Perf::UNIT,
                Price::from_credits(1 + (i % 3) as i64),
                Span::new(TimePoint::new(start), TimePoint::new(start + 110)).unwrap(),
            )
            .unwrap()
        })
        .collect();
    SlotList::from_slots(slots).unwrap()
}

/// `n` identical two-node jobs with a budget that admits any slot pair.
fn two_node_batch(n: u32) -> Batch {
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            Job::new(
                JobId::new(i),
                ResourceRequest::new(2, TimeDelta::new(60), Perf::UNIT, Price::from_credits(6))
                    .unwrap(),
            )
        })
        .collect();
    Batch::from_jobs(jobs).unwrap()
}

/// Capacity sized to the batch: ~2 windows' worth of slots per job.
fn gens_for(batch: u32) -> u64 {
    (u64::from(batch) * 4).div_ceil(NODES).max(2)
}

fn bench_coscheduled_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("coscheduled_round");
    for n in [50u32, 200, 800] {
        let list = dense_list(gens_for(n));
        let batch = two_node_batch(n);
        // Sanity: both drivers agree and the instance is non-trivial.
        let queue = find_alternatives_coscheduled(Amp::new(), &list, &batch).unwrap();
        let rescan = find_alternatives_coscheduled_rescan(Amp::new(), &list, &batch).unwrap();
        assert_eq!(queue.alternatives, rescan.alternatives);
        assert!(queue.alternatives.total_found() >= n as usize);

        group.bench_with_input(BenchmarkId::new("queue", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    find_alternatives_coscheduled(Amp::new(), black_box(&list), &batch).unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("rescan", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    find_alternatives_coscheduled_rescan(Amp::new(), black_box(&list), &batch)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_cycle_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_threads");
    for n in [10u32, 100] {
        let list = dense_list(gens_for(n));
        let batch = two_node_batch(n);
        for mode in [SearchMode::Sequential, SearchMode::Coscheduled] {
            let config = IterationConfig {
                search_mode: mode,
                ..IterationConfig::default()
            };
            let label = match mode {
                SearchMode::Sequential => "seq",
                SearchMode::Coscheduled => "cos",
            };
            for threads in [1usize, 2, 4] {
                let name = format!("{label}_t{threads}");
                let id = BenchmarkId::new(&name, n);
                group.bench_with_input(id, &n, |b, _| {
                    b.iter(|| {
                        let mut optimizer = IncrementalOptimizer::new();
                        black_box(
                            run_iteration_cached_with(
                                Amp::new(),
                                black_box(&list),
                                &batch,
                                &config,
                                &mut optimizer,
                                Parallelism::new(threads),
                            )
                            .unwrap(),
                        )
                    });
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_coscheduled_round, bench_cycle_threads);
criterion_main!(benches);
