//! Bench: interval-timeline market maintenance vs the flat oracle —
//! the carve/merge/scan costs the representation switch is paid for.
//!
//! Three claims, recorded in `BENCH_select.json`:
//!
//! * a single carve (`subtract`) on the interval form is `O(log n)` tree
//!   surgery where the flat form pays an `O(n)` vector splice. The
//!   mutation benches clone the list every iteration (the carve itself
//!   must start from pristine state), and an `O(n)` clone dominates both
//!   sides — so the `clone` group below records that baseline, and the
//!   carve cost proper is the carve median *minus* the same-size clone
//!   median;
//! * the coalescing merge pass is cheaper on the interval form at every
//!   size (the per-node timelines are already adjacency-ordered; the
//!   flat form re-sorts and rebuilds its auxiliary index);
//! * the ALP/AMP window scan at 10⁵ slots is representation-blind in
//!   cost as well as outcome: iteration dominates, and both forms hand
//!   the scan the same `(start, id)`-ordered stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecosched_bench::{slot_list, typical_request};
use ecosched_core::{MarketRepr, NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
use ecosched_select::{Alp, Amp, ScanStats, SlotSelector};
use std::hint::black_box;

const REPRS: [(MarketRepr, &str); 2] = [
    (MarketRepr::Flat, "flat"),
    (MarketRepr::Interval, "interval"),
];

/// A deterministic market of `m` slots in the requested representation.
fn market(m: usize, repr: MarketRepr) -> SlotList {
    slot_list(m, 11).with_repr(repr)
}

/// A maximally fragmented market: `m` slots in runs of ten touching
/// same-price same-perf fragments per node, so a coalesce pass absorbs
/// 90% of the list.
fn shredded(m: usize, repr: MarketRepr) -> SlotList {
    let mut slots = Vec::with_capacity(m);
    for id in 0..m as u64 {
        let node = id / 10;
        let step = (id % 10) as i64;
        let start = step * 50;
        slots.push(
            Slot::new(
                SlotId::new(id),
                NodeId::new(node as u32),
                Perf::UNIT,
                Price::from_credits(3),
                Span::new(TimePoint::new(start), TimePoint::new(start + 50)).unwrap(),
            )
            .unwrap(),
        );
    }
    SlotList::from_slots_with_repr(slots, repr).unwrap()
}

fn bench_clone(c: &mut Criterion) {
    // The baseline every mutation bench pays per iteration: subtract it
    // from the carve/coalesce medians to read the operation cost proper.
    let mut group = c.benchmark_group("interval_ops/clone");
    for m in [1_000usize, 10_000, 100_000, 1_000_000] {
        for (repr, name) in REPRS {
            let list = market(m, repr);
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                b.iter(|| black_box(list.clone()));
            });
        }
    }
    group.finish();
}

fn bench_carve(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_ops/carve");
    for m in [1_000usize, 10_000, 100_000, 1_000_000] {
        for (repr, name) in REPRS {
            let list = market(m, repr);
            let victim = *list.iter().nth(m / 2).unwrap();
            let cut = Span::new(victim.start(), victim.start() + (victim.length() / 2)).unwrap();
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                b.iter(|| {
                    let mut copy = list.clone();
                    copy.subtract(black_box(victim.id()), black_box(cut))
                        .unwrap();
                    black_box(copy)
                });
            });
        }
    }
    group.finish();
}

fn bench_subtract_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_ops/subtract_window");
    for (repr, name) in REPRS {
        let list = market(100_000, repr);
        let request = typical_request();
        let mut stats = ScanStats::new();
        let window = Amp::new()
            .find_window(&list, &request, &mut stats)
            .expect("typical request is satisfiable");
        group.bench_with_input(BenchmarkId::new(name, 100_000), &(), |b, ()| {
            b.iter(|| {
                let mut copy = list.clone();
                copy.subtract_window(black_box(&window)).unwrap();
                black_box(copy)
            });
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_ops/coalesce");
    for m in [1_000usize, 10_000, 100_000, 1_000_000] {
        for (repr, name) in REPRS {
            let list = shredded(m, repr);
            group.bench_with_input(BenchmarkId::new(name, m), &m, |b, &m| {
                b.iter(|| {
                    let mut copy = list.clone();
                    let absorbed = copy.coalesce();
                    assert_eq!(absorbed, m - m / 10, "shredded list must fully merge");
                    black_box(copy)
                });
            });
        }
    }
    group.finish();
}

fn bench_window_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_ops/window_scan");
    let request = typical_request();
    for (repr, name) in REPRS {
        let list = market(100_000, repr);
        group.bench_with_input(
            BenchmarkId::new(&format!("alp_{name}"), 100_000),
            &(),
            |b, ()| {
                let alp = Alp::new();
                b.iter(|| {
                    let mut stats = ScanStats::new();
                    black_box(alp.find_window(black_box(&list), &request, &mut stats))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(&format!("amp_{name}"), 100_000),
            &(),
            |b, ()| {
                let amp = Amp::new();
                b.iter(|| {
                    let mut stats = ScanStats::new();
                    black_box(amp.find_window(black_box(&list), &request, &mut stats))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_clone,
    bench_carve,
    bench_subtract_window,
    bench_merge,
    bench_window_scan
);
criterion_main!(benches);
