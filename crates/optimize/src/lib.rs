//! Batch combination optimization for economic co-allocation.
//!
//! Implements the second stage of the scheduling scheme in Toporkov et al.
//! (PaCT 2011): given the disjoint alternatives found per job, choose one
//! alternative per job optimizing a VO-level criterion:
//!
//! * [`min_time_under_budget`] — `min T(s̄)` s.t. `C(s̄) ≤ B*` (Sec. 5,
//!   Fig. 4–5 experiment);
//! * [`min_cost_under_time`] — `min C(s̄)` s.t. `T(s̄) ≤ T*` (Sec. 5,
//!   Fig. 6 experiment);
//! * [`max_cost_under_time`] — owners' income maximization, the inner
//!   optimization of Eq. (3).
//!
//! The VO limits come from [`time_quota`] (Eq. (2)) and [`vo_budget`]
//! (Eq. (3)). All three solvers use the backward-run dynamic program of
//! Eq. (1), served by an incremental row cache: the free functions above
//! are one-shot conveniences over [`IncrementalOptimizer`], which reuses
//! unchanged suffix rows (and Pareto prefix layers) across repeated solves
//! on mutating batches and shifting `B*`/`T*` limits, reporting its work
//! in [`OptStats`]. Three reference implementations cross-check it: the
//! retained from-scratch `*_naive` drivers, an exhaustive [`brute`]
//! oracle, and the exact [`ParetoFrontier`] sweep.
//!
//! # Example
//!
//! ```
//! use ecosched_core::{
//!     Batch, Job, JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span,
//!     TimeDelta, TimePoint,
//! };
//! use ecosched_optimize::{min_time_under_budget, time_quota, vo_budget};
//! use ecosched_select::{find_alternatives, Amp};
//!
//! // Alternatives from a tiny 4-node environment.
//! let slots = (0..4)
//!     .map(|i| {
//!         Slot::new(
//!             SlotId::new(i),
//!             NodeId::new(i as u32),
//!             Perf::from_f64(1.0 + (i % 2) as f64),
//!             Price::from_credits(2 + i as i64),
//!             Span::new(TimePoint::new(0), TimePoint::new(500)).unwrap(),
//!         )
//!     })
//!     .collect::<Result<Vec<_>, _>>()?;
//! let list = SlotList::from_slots(slots)?;
//! let batch = Batch::from_jobs(vec![Job::new(
//!     JobId::new(0),
//!     ResourceRequest::new(2, TimeDelta::new(100), Perf::UNIT, Price::from_credits(4))?,
//! )])?;
//! let outcome = find_alternatives(&Amp::new(), &list, &batch)?;
//!
//! // VO limits by Eq. (2) / Eq. (3), then the time-minimal combination.
//! let quota = time_quota(outcome.alternatives.per_job());
//! let budget = vo_budget(outcome.alternatives.per_job())?;
//! let best = min_time_under_budget(
//!     outcome.alternatives.per_job(),
//!     budget,
//!     ecosched_core::Money::from_micro(10_000),
//! )?;
//! assert!(best.total_cost() <= budget);
//! assert!(quota.is_positive());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
// Library code must propagate or document failures; bare `unwrap()` is
// reserved for tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod assignment;
pub mod brute;
mod dp;
mod error;
mod incremental;
mod limits;
mod pareto;
#[cfg(test)]
mod test_support;
mod vector;

pub use assignment::{Assignment, Choice};
pub use dp::{max_cost_under_time_naive, min_cost_under_time_naive, min_time_under_budget_naive};
pub use error::OptimizeError;
pub use incremental::{
    max_cost_under_time, min_cost_under_time, min_time_under_budget, DpCacheSnapshot,
    FrontierLayerSnapshot, FrontierPointSnapshot, IncrementalOptimizer, OptStats,
    OptimizerSnapshot, RowSnapshot,
};
pub use limits::{time_quota, vo_budget, vo_budget_with_quota};
pub use pareto::{ParetoFrontier, DEFAULT_FRONTIER_CAP};
pub use vector::{efficient_menu, pareto_optimal, VectorCriteria};
