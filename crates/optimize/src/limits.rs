//! The VO-level limits: the time quota `T*` (Eq. (2)) and the budget `B*`
//! (Eq. (3)).
//!
//! `T*` balances the global (user) and local (owner) job flows; `B*` is the
//! maximal owners' income achievable within `T*`, which the VO then grants
//! to the batch as its spending cap.

use ecosched_core::{JobAlternatives, Money, TimeDelta};

use crate::error::OptimizeError;
use crate::incremental::max_cost_under_time;

/// Computes the total slot-occupancy quota `T*` by Eq. (2):
///
/// ```text
/// T* = Σ_i Σ_{s̄_i} ⌊ t_i(s̄_i) / l_i ⌋
/// ```
///
/// where `l_i` is the number of alternatives of job `i` — i.e. roughly the
/// sum over jobs of their *mean* alternative execution time.
///
/// Jobs without alternatives contribute nothing (they are postponed before
/// optimization).
///
/// # Examples
///
/// ```
/// use ecosched_optimize::time_quota;
/// // With no alternatives at all the quota is zero.
/// assert_eq!(time_quota(&[]).ticks(), 0);
/// ```
#[must_use]
pub fn time_quota(alternatives: &[JobAlternatives]) -> TimeDelta {
    let mut total = 0i64;
    for ja in alternatives {
        let l = ja.len() as i64;
        if l == 0 {
            continue;
        }
        for alt in ja {
            total += alt.time().ticks() / l;
        }
    }
    TimeDelta::new(total)
}

/// Computes the VO budget `B*` by Eq. (3): the maximal total cost (owners'
/// income) of any combination whose total time fits `T*` from Eq. (2).
///
/// # Errors
///
/// * [`OptimizeError::EmptyBatch`] / [`OptimizeError::NoAlternatives`] on a
///   malformed table;
/// * [`OptimizeError::Infeasible`] if no combination fits `T*` — possible
///   because Eq. (2) floors each term, making the quota slightly tighter
///   than the true mean.
pub fn vo_budget(alternatives: &[JobAlternatives]) -> Result<Money, OptimizeError> {
    let quota = time_quota(alternatives);
    let assignment = max_cost_under_time(alternatives, quota)?;
    Ok(assignment.total_cost())
}

/// Computes `B*` against an explicit quota instead of Eq. (2)'s.
///
/// # Errors
///
/// See [`vo_budget`].
pub fn vo_budget_with_quota(
    alternatives: &[JobAlternatives],
    quota: TimeDelta,
) -> Result<Money, OptimizeError> {
    let assignment = max_cost_under_time(alternatives, quota)?;
    Ok(assignment.total_cost())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::alts;

    #[test]
    fn quota_is_sum_of_floored_means() {
        // Job 0: times 10, 20, 31 → l=3 → ⌊10/3⌋+⌊20/3⌋+⌊31/3⌋ = 3+6+10 = 19.
        // Job 1: times 40 → 40.
        let table = vec![alts(0, &[(1, 10), (1, 20), (1, 31)]), alts(1, &[(1, 40)])];
        assert_eq!(time_quota(&table), TimeDelta::new(59));
    }

    #[test]
    fn quota_skips_uncovered_jobs() {
        let table = vec![alts(0, &[]), alts(1, &[(1, 30)])];
        assert_eq!(time_quota(&table), TimeDelta::new(30));
    }

    #[test]
    fn budget_is_max_income_within_quota() {
        // Job 0: (cost 10, time 10), (cost 2, time 30) → quota term 20.
        // Job 1: (cost 8, time 10), (cost 3, time 30) → quota term 20.
        // T* = 40; the richest combination within 40 is 10 + 8 = 18.
        let table = vec![alts(0, &[(10, 10), (2, 30)]), alts(1, &[(8, 10), (3, 30)])];
        assert_eq!(time_quota(&table), TimeDelta::new(40));
        assert_eq!(vo_budget(&table).unwrap(), Money::from_credits(18));
    }

    #[test]
    fn explicit_quota_variant() {
        let table = vec![alts(0, &[(10, 10), (2, 30)])];
        assert_eq!(
            vo_budget_with_quota(&table, TimeDelta::new(30)).unwrap(),
            Money::from_credits(10)
        );
        assert_eq!(
            vo_budget_with_quota(&table, TimeDelta::new(29)).unwrap(),
            Money::from_credits(10)
        );
        assert_eq!(
            vo_budget_with_quota(&table, TimeDelta::new(10)).unwrap(),
            Money::from_credits(10)
        );
        assert!(vo_budget_with_quota(&table, TimeDelta::new(9)).is_err());
    }

    #[test]
    fn budget_on_malformed_table_errors() {
        assert!(vo_budget(&[]).is_err());
    }
}
