//! The vector criterion ⟨C(s̄), D(s̄), T(s̄), I(s̄)⟩ from Sec. 2.
//!
//! `D(s̄) = B* − C(s̄)` is the unspent budget and `I(s̄) = T* − T(s̄)` the
//! unspent time quota; the VO administration prefers assignments that spend
//! less of both.

use std::cmp::Ordering;
use std::fmt;

use ecosched_core::{Money, TimeDelta};
use serde::{Deserialize, Serialize};

use crate::assignment::Assignment;

/// The four components of the paper's vector criterion for one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorCriteria {
    /// Total execution cost `C(s̄)`.
    pub cost: Money,
    /// Unspent budget `D(s̄) = B* − C(s̄)` (negative when over budget).
    pub spare_budget: Money,
    /// Total execution time `T(s̄)`.
    pub time: TimeDelta,
    /// Unspent time quota `I(s̄) = T* − T(s̄)` (negative when over quota).
    pub spare_time: TimeDelta,
}

impl VectorCriteria {
    /// Evaluates the vector criterion for `assignment` under the VO limits
    /// `budget` (`B*`) and `quota` (`T*`).
    #[must_use]
    pub fn evaluate(assignment: &Assignment, budget: Money, quota: TimeDelta) -> Self {
        let cost = assignment.total_cost();
        let time = assignment.total_time();
        VectorCriteria {
            cost,
            spare_budget: budget - cost,
            time,
            spare_time: quota - time,
        }
    }

    /// Returns `true` if the assignment respects both limits.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.spare_budget >= Money::ZERO && self.spare_time >= TimeDelta::ZERO
    }

    /// Pareto dominance: `self` dominates `other` when it is no worse on
    /// both cost and time and strictly better on at least one. (With fixed
    /// `B*`/`T*`, the spare components order identically, so the 4-vector
    /// comparison collapses to this 2-vector one.)
    #[must_use]
    pub fn dominates(&self, other: &VectorCriteria) -> bool {
        let cost = self.cost.cmp(&other.cost);
        let time = self.time.cmp(&other.time);
        cost != Ordering::Greater
            && time != Ordering::Greater
            && (cost == Ordering::Less || time == Ordering::Less)
    }
}

impl fmt::Display for VectorCriteria {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨C={}, D={}, T={}, I={}⟩",
            self.cost, self.spare_budget, self.time, self.spare_time
        )
    }
}

/// The VO's decision menu for the paper's general vector-criteria case:
/// every Pareto-efficient combination that respects both limits, paired
/// with its ⟨C, D, T, I⟩ evaluation and sorted by increasing cost.
///
/// # Errors
///
/// Propagates [`crate::OptimizeError`] from frontier construction
/// (malformed table); an empty menu (nothing feasible) is `Ok(vec![])`.
///
/// # Examples
///
/// ```
/// # use ecosched_core::{Alternative, JobAlternatives, JobId, Money, NodeId, Perf, Price,
/// #     Slot, SlotId, Span, TimeDelta, TimePoint, Window, WindowSlot};
/// use ecosched_optimize::{efficient_menu, time_quota, vo_budget};
/// # fn alt(job: u32, price: i64, time: i64) -> Alternative {
/// #     let slot = Slot::new(SlotId::new(0), NodeId::new(0), Perf::UNIT,
/// #         Price::from_credits(price),
/// #         Span::new(TimePoint::ZERO, TimePoint::new(100_000)).unwrap()).unwrap();
/// #     let ws = WindowSlot::from_slot(&slot, TimeDelta::new(time)).unwrap();
/// #     Alternative::new(JobId::new(job), Window::new(TimePoint::ZERO, vec![ws]).unwrap())
/// # }
/// let mut ja = JobAlternatives::new(JobId::new(0));
/// ja.push(alt(0, 5, 10)); // fast, pricey
/// ja.push(alt(0, 1, 40)); // slow, cheap
/// let table = vec![ja];
///
/// let quota = TimeDelta::new(40);
/// let budget = Money::from_credits(200);
/// let menu = efficient_menu(&table, budget, quota)?;
/// assert_eq!(menu.len(), 2); // both trade-offs are feasible and efficient
/// assert!(menu[0].1.feasible());
/// # Ok::<(), ecosched_optimize::OptimizeError>(())
/// ```
pub fn efficient_menu(
    alternatives: &[ecosched_core::JobAlternatives],
    budget: Money,
    quota: TimeDelta,
) -> Result<Vec<(Assignment, VectorCriteria)>, crate::OptimizeError> {
    let frontier = crate::ParetoFrontier::new(alternatives)?;
    Ok(frontier
        .assignments()
        .into_iter()
        .filter_map(|assignment| {
            let criteria = VectorCriteria::evaluate(&assignment, budget, quota);
            criteria.feasible().then_some((assignment, criteria))
        })
        .collect())
}

/// Filters a set of criteria down to its Pareto-optimal subset (indices
/// into the input, in input order).
#[must_use]
pub fn pareto_optimal(criteria: &[VectorCriteria]) -> Vec<usize> {
    (0..criteria.len())
        .filter(|&i| {
            !criteria
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.dominates(&criteria[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::alts;
    use crate::Assignment as A;

    fn vc(cost: i64, time: i64) -> VectorCriteria {
        VectorCriteria {
            cost: Money::from_credits(cost),
            spare_budget: Money::from_credits(100 - cost),
            time: TimeDelta::new(time),
            spare_time: TimeDelta::new(100 - time),
        }
    }

    #[test]
    fn evaluate_computes_spares() {
        let table = vec![alts(0, &[(10, 20)])];
        let a = A::from_indices(&table, &[0]);
        let v = VectorCriteria::evaluate(&a, Money::from_credits(25), TimeDelta::new(30));
        assert_eq!(v.cost, Money::from_credits(10));
        assert_eq!(v.spare_budget, Money::from_credits(15));
        assert_eq!(v.time, TimeDelta::new(20));
        assert_eq!(v.spare_time, TimeDelta::new(10));
        assert!(v.feasible());
    }

    #[test]
    fn infeasible_when_over_limits() {
        let table = vec![alts(0, &[(10, 20)])];
        let a = A::from_indices(&table, &[0]);
        assert!(
            !VectorCriteria::evaluate(&a, Money::from_credits(9), TimeDelta::new(30)).feasible()
        );
        assert!(
            !VectorCriteria::evaluate(&a, Money::from_credits(25), TimeDelta::new(19)).feasible()
        );
    }

    #[test]
    fn dominance_is_strict_and_partial() {
        assert!(vc(5, 5).dominates(&vc(6, 6)));
        assert!(vc(5, 5).dominates(&vc(5, 6)));
        assert!(!vc(5, 5).dominates(&vc(5, 5)));
        assert!(!vc(4, 7).dominates(&vc(7, 4)));
        assert!(!vc(7, 4).dominates(&vc(4, 7)));
    }

    #[test]
    fn pareto_filter_keeps_the_frontier() {
        let set = vec![vc(5, 9), vc(6, 6), vc(9, 5), vc(7, 7), vc(5, 9)];
        let keep = pareto_optimal(&set);
        // vc(7,7) dominated by vc(6,6); duplicates of vc(5,9) both survive
        // (neither strictly dominates the other).
        assert_eq!(keep, vec![0, 1, 2, 4]);
    }

    #[test]
    fn display_has_all_components() {
        let text = format!("{}", vc(5, 9));
        assert!(text.contains("C="));
        assert!(text.contains("I="));
    }
}

#[cfg(test)]
mod menu_tests {
    use super::*;
    use crate::test_support::alts;

    #[test]
    fn menu_contains_only_feasible_efficient_points() {
        let table = vec![
            alts(0, &[(10, 10), (2, 40), (6, 20)]),
            alts(1, &[(8, 10), (3, 30)]),
        ];
        let budget = Money::from_credits(15);
        let quota = TimeDelta::new(60);
        let menu = efficient_menu(&table, budget, quota).unwrap();
        assert!(!menu.is_empty());
        for (assignment, criteria) in &menu {
            assert!(criteria.feasible());
            assert!(assignment.total_cost() <= budget);
            assert!(assignment.total_time() <= quota);
        }
        // Sorted by increasing cost, strictly decreasing time.
        for pair in menu.windows(2) {
            assert!(pair[0].0.total_cost() < pair[1].0.total_cost());
            assert!(pair[0].0.total_time() > pair[1].0.total_time());
        }
    }

    #[test]
    fn impossible_limits_yield_an_empty_menu() {
        let table = vec![alts(0, &[(10, 10)])];
        let menu = efficient_menu(&table, Money::from_credits(1), TimeDelta::new(1)).unwrap();
        assert!(menu.is_empty());
    }

    #[test]
    fn malformed_table_is_an_error() {
        assert!(efficient_menu(&[], Money::MAX, TimeDelta::MAX).is_err());
    }
}
