//! The backward-run dynamic program (Eq. (1) of the paper).
//!
//! The scheme of ref. [2], as summarized in Sec. 2: for jobs `i = n…1` and
//! admissible resource totals `Z_i`, compute
//!
//! ```text
//! f_i(Z_i) = extr { g_i(s̄_i) + f_{i+1}(Z_i − z_i(s̄_i)) },   f_{n+1} ≡ 0
//! ```
//!
//! where `g` is the optimized measure (time or cost) and `z` the
//! constrained one. Time is naturally integral (ticks); money is quantized
//! to a caller-chosen resolution, rounding each alternative's cost *up* so
//! a DP-feasible combination is always truly within budget.
//!
//! This module holds the *from-scratch* drivers, retained as `*_naive`
//! oracles (mirroring `select`'s pattern), plus the row-level primitives
//! shared with [`crate::incremental`]. Because both paths build rows with
//! the same [`compute_row`]/[`extend_row_threads`] code and reconstruct with the
//! same [`reconstruct_choices`], the incremental solvers are byte-identical
//! to the naive ones by construction — the differential harness in
//! `tests/equivalence.rs` checks exactly that.

use ecosched_core::{JobAlternatives, Money, TimeDelta};

use crate::assignment::Assignment;
use crate::error::OptimizeError;

/// One alternative reduced to DP terms: a constrained-resource weight and
/// an objective value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Item {
    pub(crate) weight: i64,
    pub(crate) value: i64,
}

/// Sense of the extremum in Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Sense {
    Minimize,
    Maximize,
}

/// Extends `row` (row `i` of the table) in place up to column `width`,
/// computing each new column from the *already extended* next row
/// (`f[i+1]`). Starting from an empty `row` this builds the whole row.
///
/// Soundness of extension: `f[i][w]` reads `next` only at columns `≤ w`,
/// and each cell is a pure function of `items` and `next` — so appending
/// columns to an existing row yields exactly the row a from-scratch build
/// at the wider capacity would produce. Callers must extend rows back to
/// front so `next` is always at full width first.
#[cfg(test)]
pub(crate) fn extend_row(
    items: &[Item],
    next: &[Option<i64>],
    row: &mut Vec<Option<i64>>,
    width: usize,
    sense: Sense,
) {
    extend_row_threads(items, next, row, width, sense, 1);
}

/// One cell of Eq. (1): the extremum over this job's alternatives of
/// `value + f[i+1][w - weight]`. A pure function of its arguments, which
/// is what makes both row extension and column-parallel row construction
/// sound.
fn row_cell(items: &[Item], next: &[Option<i64>], w: usize, sense: Sense) -> Option<i64> {
    let mut best: Option<i64> = None;
    for item in items {
        if item.weight > w as i64 {
            continue;
        }
        let Some(rest) = next[w - item.weight as usize] else {
            continue;
        };
        let candidate = item.value + rest;
        best = Some(match (best, sense) {
            (None, _) => candidate,
            (Some(b), Sense::Minimize) => b.min(candidate),
            (Some(b), Sense::Maximize) => b.max(candidate),
        });
    }
    best
}

/// Columns below which [`extend_row_threads`] stays single-threaded: the
/// per-thread spawn/join cost (~10µs) must be amortized over enough pure
/// cell evaluations to win.
const PARALLEL_COLUMN_MIN: usize = 2048;

/// [`extend_row`] with the new columns fanned out over at most `threads`
/// scoped workers in contiguous chunks, appended in column order.
///
/// Every cell is a pure function of `(items, next, w, sense)` — workers
/// share the read-only inputs and never see each other's output — so the
/// extended row is byte-identical to the sequential build at any thread
/// count. Small extensions (fewer than [`PARALLEL_COLUMN_MIN`] new
/// columns) skip the fan-out entirely.
pub(crate) fn extend_row_threads(
    items: &[Item],
    next: &[Option<i64>],
    row: &mut Vec<Option<i64>>,
    width: usize,
    sense: Sense,
    threads: usize,
) {
    debug_assert!(next.len() > width, "next row must already span the width");
    if width < row.len() {
        return;
    }
    let first = row.len();
    let columns = width + 1 - first;
    row.reserve(columns);
    if threads <= 1 || columns < PARALLEL_COLUMN_MIN {
        for w in first..=width {
            row.push(row_cell(items, next, w, sense));
        }
        return;
    }
    let workers = threads.min(columns);
    let chunk = columns.div_ceil(workers);
    let starts: Vec<usize> = (0..workers).map(|k| first + k * chunk).collect();
    let joined = crossbeam::scope(|scope| {
        let handles: Vec<_> = starts
            .iter()
            .map(|&lo| {
                let hi = (lo + chunk).min(width + 1);
                scope.spawn(move |_| {
                    (lo..hi)
                        .map(|w| row_cell(items, next, w, sense))
                        .collect::<Vec<Option<i64>>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect::<Vec<_>>()
    });
    let parts = match joined {
        Ok(parts) => parts,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    for part in parts {
        row.extend(part);
    }
}

/// Builds row `i` of the table (columns `0..=width`) from the next row.
pub(crate) fn compute_row(
    items: &[Item],
    next: &[Option<i64>],
    width: usize,
    sense: Sense,
) -> Vec<Option<i64>> {
    compute_row_threads(items, next, width, sense, 1)
}

/// [`compute_row`] with column-parallel construction (see
/// [`extend_row_threads`]).
pub(crate) fn compute_row_threads(
    items: &[Item],
    next: &[Option<i64>],
    width: usize,
    sense: Sense,
    threads: usize,
) -> Vec<Option<i64>> {
    let mut row = Vec::with_capacity(width + 1);
    extend_row_threads(items, next, &mut row, width, sense, threads);
    row
}

/// Forward reconstruction over a full set of rows (`rows[n]` is the base
/// `f_{n+1} ≡ 0` row): at each job pick the first alternative achieving the
/// table optimum (first hit → deterministic). Returns `None` when
/// `rows[0][cap]` is infeasible.
pub(crate) fn reconstruct_choices(
    items: &[Vec<Item>],
    rows: &[&[Option<i64>]],
    cap: usize,
) -> Option<Vec<usize>> {
    rows[0][cap]?;
    let n = items.len();
    let mut choices = Vec::with_capacity(n);
    let mut w = cap;
    for i in 0..n {
        let target = rows[i][w].expect("reconstruction follows feasible states");
        let mut picked = None;
        for (j, item) in items[i].iter().enumerate() {
            if item.weight > w as i64 {
                continue;
            }
            if let Some(rest) = rows[i + 1][w - item.weight as usize] {
                if item.value + rest == target {
                    picked = Some((j, item.weight as usize));
                    break;
                }
            }
        }
        let (j, used) = picked.expect("feasible table states have a witness");
        choices.push(j);
        w -= used;
    }
    Some(choices)
}

/// Solves the backward run over `items` with total weight ≤ `capacity`.
/// Returns the chosen per-job indices, or `None` when infeasible.
fn backward_run(items: &[Vec<Item>], capacity: i64, sense: Sense) -> Option<Vec<usize>> {
    if capacity < 0 {
        return None;
    }
    let n = items.len();
    let cap = capacity as usize;
    let base: Vec<Option<i64>> = vec![Some(0); cap + 1];
    // Rows built back to front; `computed` holds them in reverse order.
    let mut computed: Vec<Vec<Option<i64>>> = Vec::with_capacity(n);
    for i in (0..n).rev() {
        let next = computed.last().unwrap_or(&base);
        let row = compute_row(&items[i], next, cap, sense);
        computed.push(row);
    }
    computed.reverse();
    let mut rows: Vec<&[Option<i64>]> = computed.iter().map(Vec::as_slice).collect();
    rows.push(&base);
    reconstruct_choices(items, &rows, cap)
}

/// Validates the alternatives table: non-empty, and every job covered.
pub(crate) fn validate(alternatives: &[JobAlternatives]) -> Result<(), OptimizeError> {
    if alternatives.is_empty() {
        return Err(OptimizeError::EmptyBatch);
    }
    for ja in alternatives {
        if ja.is_empty() {
            return Err(OptimizeError::NoAlternatives { job: ja.job() });
        }
    }
    Ok(())
}

/// Rounds `cost` up to `resolution` units.
pub(crate) fn quantize_up(cost: Money, resolution: Money) -> i64 {
    let r = resolution.micro();
    (cost.micro() + r - 1) / r
}

/// Reduces a table to time-axis DP terms: weight = execution time (ticks),
/// value = cost (micro-credits). Used by both cost-extremum solvers.
pub(crate) fn time_axis_items(alternatives: &[JobAlternatives]) -> Vec<Vec<Item>> {
    alternatives
        .iter()
        .map(|ja| {
            ja.iter()
                .map(|alt| Item {
                    weight: alt.time().ticks(),
                    value: alt.cost().micro(),
                })
                .collect()
        })
        .collect()
}

/// Reduces a table to cost-axis DP terms: weight = cost quantized *up* to
/// `resolution` units, value = execution time (ticks). Used by the
/// time-minimization solver.
pub(crate) fn cost_axis_items(
    alternatives: &[JobAlternatives],
    resolution: Money,
) -> Vec<Vec<Item>> {
    alternatives
        .iter()
        .map(|ja| {
            ja.iter()
                .map(|alt| Item {
                    weight: quantize_up(alt.cost(), resolution),
                    value: alt.time().ticks(),
                })
                .collect()
        })
        .collect()
}

/// Checks the `resolution` parameter of the time-minimization task.
pub(crate) fn validate_resolution(resolution: Money) -> Result<(), OptimizeError> {
    if resolution <= Money::ZERO {
        return Err(OptimizeError::InvalidParameter {
            reason: format!("resolution must be positive, got {resolution}"),
        });
    }
    Ok(())
}

/// Checks the `quota` parameter of the cost-extremum tasks.
pub(crate) fn validate_quota(quota: TimeDelta) -> Result<(), OptimizeError> {
    if !quota.is_positive() {
        return Err(OptimizeError::InvalidParameter {
            reason: format!("time quota must be positive, got {quota}"),
        });
    }
    Ok(())
}

/// From-scratch oracle for [`crate::min_time_under_budget`]: minimizes
/// total batch time `T(s̄)` subject to the budget `C(s̄) ≤ B*` (the paper's
/// Sec. 5 *time-minimization* task), rebuilding the full DP table.
///
/// Money is quantized to `resolution`; each alternative's cost rounds up,
/// so the returned assignment always truly satisfies the budget, at the
/// price of possibly missing combinations within `n · resolution` of it.
///
/// # Errors
///
/// * [`OptimizeError::EmptyBatch`] / [`OptimizeError::NoAlternatives`] on a
///   malformed table;
/// * [`OptimizeError::InvalidParameter`] if `resolution` is not positive;
/// * [`OptimizeError::Infeasible`] if no combination fits the budget.
pub fn min_time_under_budget_naive(
    alternatives: &[JobAlternatives],
    budget: Money,
    resolution: Money,
) -> Result<Assignment, OptimizeError> {
    validate(alternatives)?;
    validate_resolution(resolution)?;
    let items = cost_axis_items(alternatives, resolution);
    let capacity = budget.micro() / resolution.micro();
    let choices =
        backward_run(&items, capacity, Sense::Minimize).ok_or(OptimizeError::Infeasible)?;
    Ok(Assignment::from_indices(alternatives, &choices))
}

/// From-scratch oracle for [`crate::min_cost_under_time`]: minimizes total
/// batch cost `C(s̄)` subject to the time quota `T(s̄) ≤ T*` (the paper's
/// Sec. 5 *cost-minimization* task). Exact: time is already integral.
///
/// # Errors
///
/// See [`min_time_under_budget_naive`]; there is no resolution parameter.
pub fn min_cost_under_time_naive(
    alternatives: &[JobAlternatives],
    quota: TimeDelta,
) -> Result<Assignment, OptimizeError> {
    cost_under_time_naive(alternatives, quota, Sense::Minimize)
}

/// From-scratch oracle for [`crate::max_cost_under_time`]: maximizes the
/// total batch cost (the resource owners' income) subject to the time quota
/// — Eq. (3)'s inner optimization, used to derive the VO budget `B*`.
///
/// # Errors
///
/// See [`min_time_under_budget_naive`].
pub fn max_cost_under_time_naive(
    alternatives: &[JobAlternatives],
    quota: TimeDelta,
) -> Result<Assignment, OptimizeError> {
    cost_under_time_naive(alternatives, quota, Sense::Maximize)
}

fn cost_under_time_naive(
    alternatives: &[JobAlternatives],
    quota: TimeDelta,
    sense: Sense,
) -> Result<Assignment, OptimizeError> {
    validate(alternatives)?;
    validate_quota(quota)?;
    let items = time_axis_items(alternatives);
    let choices = backward_run(&items, quota.ticks(), sense).ok_or(OptimizeError::Infeasible)?;
    Ok(Assignment::from_indices(alternatives, &choices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::alts;

    #[test]
    fn min_cost_prefers_cheap_within_quota() {
        // Job 0: (cost 10, time 10) or (cost 2, time 40).
        // Job 1: (cost 8, time 10) or (cost 3, time 30).
        let table = vec![alts(0, &[(10, 10), (2, 40)]), alts(1, &[(8, 10), (3, 30)])];
        // Loose quota: take both cheap ones.
        let a = min_cost_under_time_naive(&table, TimeDelta::new(100)).unwrap();
        assert_eq!(a.total_cost(), Money::from_credits(5));
        // Tight quota 50: cheap+cheap needs 70 → must mix; the cheapest
        // feasible mix is (2,40)+(8,10) = cost 10 at exactly 50 ticks.
        let a = min_cost_under_time_naive(&table, TimeDelta::new(50)).unwrap();
        assert_eq!(a.total_time().ticks(), 50);
        assert_eq!(a.total_cost(), Money::from_credits(2 + 8));
        // Quota 45 rules that out; best becomes (10,10)+(3,30) = 13.
        let a = min_cost_under_time_naive(&table, TimeDelta::new(45)).unwrap();
        assert_eq!(a.total_cost(), Money::from_credits(10 + 3));
    }

    #[test]
    fn min_time_spends_budget_for_speed() {
        let table = vec![alts(0, &[(10, 10), (2, 40)]), alts(1, &[(8, 10), (3, 30)])];
        let res = Money::from_credits(1);
        // Rich budget: both fast.
        let a = min_time_under_budget_naive(&table, Money::from_credits(18), res).unwrap();
        assert_eq!(a.total_time(), TimeDelta::new(20));
        // Budget 13: fast+cheap (10+3) time 40, or cheap+fast (2+8) time 50.
        let a = min_time_under_budget_naive(&table, Money::from_credits(13), res).unwrap();
        assert_eq!(a.total_time(), TimeDelta::new(40));
        assert_eq!(a.total_cost(), Money::from_credits(13));
    }

    #[test]
    fn max_cost_maximizes_owner_income() {
        let table = vec![alts(0, &[(10, 10), (2, 40)]), alts(1, &[(8, 10), (3, 30)])];
        let a = max_cost_under_time_naive(&table, TimeDelta::new(100)).unwrap();
        assert_eq!(a.total_cost(), Money::from_credits(18));
        // Tight quota forces a cheaper mix even when maximizing.
        let a = max_cost_under_time_naive(&table, TimeDelta::new(40)).unwrap();
        assert_eq!(a.total_cost(), Money::from_credits(18));
        let a = max_cost_under_time_naive(&table, TimeDelta::new(25)).unwrap();
        assert_eq!(a.total_time().ticks(), 20);
    }

    #[test]
    fn infeasible_quota_reports_error() {
        let table = vec![alts(0, &[(1, 50)])];
        assert_eq!(
            min_cost_under_time_naive(&table, TimeDelta::new(49)).unwrap_err(),
            OptimizeError::Infeasible
        );
    }

    #[test]
    fn infeasible_budget_reports_error() {
        let table = vec![alts(0, &[(10, 10)])];
        assert_eq!(
            min_time_under_budget_naive(&table, Money::from_credits(9), Money::from_credits(1))
                .unwrap_err(),
            OptimizeError::Infeasible
        );
    }

    #[test]
    fn empty_and_uncovered_tables_rejected() {
        assert_eq!(
            min_cost_under_time_naive(&[], TimeDelta::new(10)).unwrap_err(),
            OptimizeError::EmptyBatch
        );
        let table = vec![alts(0, &[]), alts(1, &[(1, 1)])];
        assert!(matches!(
            min_cost_under_time_naive(&table, TimeDelta::new(10)).unwrap_err(),
            OptimizeError::NoAlternatives { .. }
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let table = vec![alts(0, &[(1, 1)])];
        assert!(matches!(
            min_time_under_budget_naive(&table, Money::from_credits(1), Money::ZERO).unwrap_err(),
            OptimizeError::InvalidParameter { .. }
        ));
        assert!(matches!(
            min_cost_under_time_naive(&table, TimeDelta::ZERO).unwrap_err(),
            OptimizeError::InvalidParameter { .. }
        ));
    }

    #[test]
    fn quantization_never_violates_budget() {
        // Costs 3.4 and 3.4, budget 7, coarse resolution 2 credits:
        // each quantizes up to 2 units (4 credits), capacity 3 units →
        // together 4 units > 3 → infeasible under quantization even though
        // 6.8 ≤ 7. Conservative, never over budget.
        let table = vec![
            alts_micro(0, &[(3_400_000, 10)]),
            alts_micro(1, &[(3_400_000, 10)]),
        ];
        let result =
            min_time_under_budget_naive(&table, Money::from_credits(7), Money::from_credits(2));
        assert_eq!(result.unwrap_err(), OptimizeError::Infeasible);
        // Fine resolution finds it.
        let a =
            min_time_under_budget_naive(&table, Money::from_credits(7), Money::from_micro(100_000))
                .unwrap();
        assert!(a.total_cost() <= Money::from_credits(7));
    }

    #[test]
    fn single_job_single_alternative() {
        let table = vec![alts(0, &[(5, 20)])];
        let a = min_cost_under_time_naive(&table, TimeDelta::new(20)).unwrap();
        assert_eq!(a.choices()[0].alternative, 0);
        assert_eq!(a.total_time(), TimeDelta::new(20));
    }

    #[test]
    fn extended_row_matches_from_scratch_build() {
        let items = vec![
            Item {
                weight: 3,
                value: 7,
            },
            Item {
                weight: 5,
                value: 2,
            },
        ];
        let base_small: Vec<Option<i64>> = vec![Some(0); 9];
        let base_big: Vec<Option<i64>> = vec![Some(0); 21];
        for sense in [Sense::Minimize, Sense::Maximize] {
            let mut grown = compute_row(&items, &base_small, 8, sense);
            extend_row(&items, &base_big, &mut grown, 20, sense);
            let scratch = compute_row(&items, &base_big, 20, sense);
            assert_eq!(grown, scratch);
        }
    }

    #[test]
    fn column_parallel_rows_match_sequential() {
        // Wide enough to clear PARALLEL_COLUMN_MIN so the fan-out path
        // genuinely runs, with weights that leave unreachable (None)
        // columns to exercise the infeasible-cell merge.
        let items = vec![
            Item {
                weight: 3,
                value: 7,
            },
            Item {
                weight: 5,
                value: 2,
            },
            Item {
                weight: 11,
                value: 4,
            },
        ];
        let width = PARALLEL_COLUMN_MIN + 513;
        let base: Vec<Option<i64>> = vec![Some(0); width + 1];
        for sense in [Sense::Minimize, Sense::Maximize] {
            let sequential = compute_row(&items, &base, width, sense);
            for threads in [2, 3, 8] {
                let parallel = compute_row_threads(&items, &base, width, sense, threads);
                assert_eq!(parallel, sequential, "threads={threads}");
            }
            // Widening an existing prefix in parallel must land on the
            // same row as a from-scratch parallel build.
            let mut grown = compute_row(&items, &base, 100, sense);
            extend_row_threads(&items, &base, &mut grown, width, sense, 4);
            assert_eq!(grown, sequential);
        }
    }

    /// Like `alts` but with micro-credit cost precision.
    fn alts_micro(job: u32, specs: &[(i64, i64)]) -> ecosched_core::JobAlternatives {
        crate::test_support::alts_with(job, specs, Money::from_micro)
    }
}
