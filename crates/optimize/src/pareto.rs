//! Exact Pareto-frontier solver — an extension beyond the paper's
//! discretized backward run.
//!
//! Instead of quantizing money, this solver sweeps the jobs once, keeping
//! for every suffix the Pareto frontier of achievable `(total cost, total
//! time)` pairs with backpointers. Both constrained problems can then be
//! answered *exactly* from the final frontier. Frontier size is bounded in
//! practice by the number of distinct cost sums; a configurable cap guards
//! against pathological blow-up.

use ecosched_core::{JobAlternatives, Money, TimeDelta};

use crate::assignment::Assignment;
use crate::error::OptimizeError;

/// One frontier point: cumulative measures plus backpointers for
/// reconstruction. Shared with the [`crate::incremental`] frontier cache so
/// cached layers are built by exactly the same code as from-scratch ones.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Point {
    pub(crate) cost: Money,
    pub(crate) time: TimeDelta,
    /// Alternative index chosen for the layer's job.
    pub(crate) alt: usize,
    /// Index of the predecessor point in the previous layer.
    pub(crate) parent: usize,
}

/// The virtual layer before the first job: one zero point.
pub(crate) fn seed_layer() -> Vec<Point> {
    vec![Point {
        cost: Money::ZERO,
        time: TimeDelta::ZERO,
        alt: usize::MAX,
        parent: usize::MAX,
    }]
}

/// Builds the next frontier layer: every (previous point × alternative)
/// candidate, pruned down to the Pareto-optimal set.
pub(crate) fn next_layer(previous: &[Point], ja: &JobAlternatives) -> Vec<Point> {
    let mut candidates: Vec<Point> = Vec::with_capacity(previous.len() * ja.len());
    for (parent, prev) in previous.iter().enumerate() {
        for (alt, a) in ja.iter().enumerate() {
            candidates.push(Point {
                cost: prev.cost + a.cost(),
                time: prev.time + a.time(),
                alt,
                parent,
            });
        }
    }
    prune(candidates)
}

/// Index of the time-minimal point within `budget`, if any.
pub(crate) fn best_under_budget(last: &[Point], budget: Money) -> Option<usize> {
    last.iter()
        .enumerate()
        .filter(|(_, p)| p.cost <= budget)
        .min_by_key(|(_, p)| (p.time, p.cost))
        .map(|(i, _)| i)
}

/// Index of the cost-minimal point within `quota`, if any.
pub(crate) fn best_under_quota(last: &[Point], quota: TimeDelta) -> Option<usize> {
    last.iter()
        .enumerate()
        .filter(|(_, p)| p.time <= quota)
        .min_by_key(|(_, p)| (p.cost, p.time))
        .map(|(i, _)| i)
}

/// Walks backpointers from `index` in the last layer down to the first,
/// yielding one alternative index per job.
pub(crate) fn reconstruct_indices(layers: &[&[Point]], mut index: usize) -> Vec<usize> {
    let mut indices = vec![0usize; layers.len()];
    for (i, layer) in layers.iter().enumerate().rev() {
        let point = layer[index];
        indices[i] = point.alt;
        index = point.parent;
    }
    indices
}

/// The layered Pareto frontier over a batch's alternatives.
#[derive(Debug)]
pub struct ParetoFrontier<'a> {
    alternatives: &'a [JobAlternatives],
    layers: Vec<Vec<Point>>,
}

/// Default cap on any single layer's frontier size.
pub const DEFAULT_FRONTIER_CAP: usize = 200_000;

impl<'a> ParetoFrontier<'a> {
    /// Builds the frontier over `alternatives` with the default size cap.
    ///
    /// # Errors
    ///
    /// See [`ParetoFrontier::with_cap`].
    pub fn new(alternatives: &'a [JobAlternatives]) -> Result<Self, OptimizeError> {
        Self::with_cap(alternatives, DEFAULT_FRONTIER_CAP)
    }

    /// Builds the frontier with an explicit per-layer size cap.
    ///
    /// # Errors
    ///
    /// * [`OptimizeError::EmptyBatch`] / [`OptimizeError::NoAlternatives`]
    ///   on a malformed table;
    /// * [`OptimizeError::InvalidParameter`] if a layer exceeds `cap`.
    pub fn with_cap(
        alternatives: &'a [JobAlternatives],
        cap: usize,
    ) -> Result<Self, OptimizeError> {
        crate::dp::validate(alternatives)?;
        let mut layers: Vec<Vec<Point>> = Vec::with_capacity(alternatives.len());
        let mut previous: Vec<Point> = seed_layer();
        for ja in alternatives {
            let frontier = next_layer(&previous, ja);
            check_cap(frontier.len(), cap)?;
            layers.push(frontier.clone());
            previous = frontier;
        }
        Ok(ParetoFrontier {
            alternatives,
            layers,
        })
    }

    /// The final frontier as `(total cost, total time)` pairs, sorted by
    /// increasing cost (and therefore decreasing time).
    #[must_use]
    pub fn points(&self) -> Vec<(Money, TimeDelta)> {
        self.layers
            .last()
            .map(|layer| layer.iter().map(|p| (p.cost, p.time)).collect())
            .unwrap_or_default()
    }

    /// Exact `min T(s̄)` s.t. `C(s̄) ≤ budget`.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::Infeasible`] when no point fits the budget.
    pub fn min_time_under_budget(&self, budget: Money) -> Result<Assignment, OptimizeError> {
        let last = self.layers.last().expect("layers are non-empty");
        let best = best_under_budget(last, budget).ok_or(OptimizeError::Infeasible)?;
        Ok(self.reconstruct(best))
    }

    /// Exact `min C(s̄)` s.t. `T(s̄) ≤ quota`.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::Infeasible`] when no point fits the quota.
    pub fn min_cost_under_time(&self, quota: TimeDelta) -> Result<Assignment, OptimizeError> {
        let last = self.layers.last().expect("layers are non-empty");
        let best = best_under_quota(last, quota).ok_or(OptimizeError::Infeasible)?;
        Ok(self.reconstruct(best))
    }

    /// Materializes every frontier point as a full [`Assignment`], sorted
    /// by increasing cost (and therefore decreasing time) — the menu of
    /// efficient combinations the VO administration chooses from.
    #[must_use]
    pub fn assignments(&self) -> Vec<Assignment> {
        let last = self.layers.last().expect("layers are non-empty");
        (0..last.len()).map(|i| self.reconstruct(i)).collect()
    }

    fn reconstruct(&self, index: usize) -> Assignment {
        let layers: Vec<&[Point]> = self.layers.iter().map(Vec::as_slice).collect();
        let indices = reconstruct_indices(&layers, index);
        Assignment::from_indices(self.alternatives, &indices)
    }
}

/// Errors when a layer exceeds the configured frontier size cap.
pub(crate) fn check_cap(layer_len: usize, cap: usize) -> Result<(), OptimizeError> {
    if layer_len > cap {
        return Err(OptimizeError::InvalidParameter {
            reason: format!("Pareto frontier exceeded cap ({layer_len} > {cap})"),
        });
    }
    Ok(())
}

/// Keeps only Pareto-optimal points: minimal time among any cost level,
/// strictly improving as cost grows.
fn prune(mut points: Vec<Point>) -> Vec<Point> {
    points.sort_by_key(|p| (p.cost, p.time));
    let mut frontier: Vec<Point> = Vec::new();
    for p in points {
        match frontier.last() {
            Some(last) if p.time >= last.time => {} // dominated
            _ => frontier.push(p),
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{min_cost_under_time_brute, min_time_under_budget_brute};
    use crate::test_support::alts;

    fn table() -> Vec<JobAlternatives> {
        vec![
            alts(0, &[(10, 10), (2, 40), (5, 20)]),
            alts(1, &[(8, 10), (3, 30)]),
            alts(2, &[(6, 15), (1, 60), (4, 25)]),
        ]
    }

    #[test]
    fn frontier_points_are_strictly_improving() {
        let t = table();
        let f = ParetoFrontier::new(&t).unwrap();
        let pts = f.points();
        assert!(!pts.is_empty());
        for pair in pts.windows(2) {
            assert!(pair[0].0 < pair[1].0, "costs strictly increase");
            assert!(pair[0].1 > pair[1].1, "times strictly decrease");
        }
    }

    #[test]
    fn matches_brute_force_min_time() {
        let t = table();
        let f = ParetoFrontier::new(&t).unwrap();
        for budget in [10, 13, 15, 18, 20, 24] {
            let budget = Money::from_credits(budget);
            match (
                f.min_time_under_budget(budget),
                min_time_under_budget_brute(&t, budget),
            ) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.total_time(), b.total_time(), "budget {budget}");
                    assert!(a.total_cost() <= budget);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                (a, b) => panic!("feasibility disagrees: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn matches_brute_force_min_cost() {
        let t = table();
        let f = ParetoFrontier::new(&t).unwrap();
        for quota in [35, 50, 70, 90, 130] {
            let quota = TimeDelta::new(quota);
            match (
                f.min_cost_under_time(quota),
                min_cost_under_time_brute(&t, quota),
            ) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.total_cost(), b.total_cost(), "quota {quota}");
                    assert!(a.total_time() <= quota);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                (a, b) => panic!("feasibility disagrees: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn infeasible_constraints_error() {
        let t = table();
        let f = ParetoFrontier::new(&t).unwrap();
        assert_eq!(
            f.min_time_under_budget(Money::from_credits(5)).unwrap_err(),
            OptimizeError::Infeasible
        );
        assert_eq!(
            f.min_cost_under_time(TimeDelta::new(30)).unwrap_err(),
            OptimizeError::Infeasible
        );
    }

    #[test]
    fn cap_is_enforced() {
        let t = table();
        assert!(matches!(
            ParetoFrontier::with_cap(&t, 1).unwrap_err(),
            OptimizeError::InvalidParameter { .. }
        ));
    }

    #[test]
    fn malformed_tables_rejected() {
        assert!(ParetoFrontier::new(&[]).is_err());
        let t = vec![alts(0, &[])];
        assert!(ParetoFrontier::new(&t).is_err());
    }
}
