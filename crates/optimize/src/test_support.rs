//! Shared helpers for the optimizer's unit tests.
//!
//! Builds [`JobAlternatives`] tables with exact `(cost, time)` measures by
//! composing each synthetic window from a zero-price "length" member plus a
//! one-tick "cost" member.

use ecosched_core::{
    Alternative, JobAlternatives, JobId, Money, NodeId, Perf, Price, Slot, SlotId, Span, TimeDelta,
    TimePoint, Window, WindowSlot,
};

/// Builds a job's alternatives from `(cost, time)` specs, converting the
/// first element through `money`.
pub(crate) fn alts_with(
    job: u32,
    specs: &[(i64, i64)],
    money: fn(i64) -> Money,
) -> JobAlternatives {
    let mut ja = JobAlternatives::new(JobId::new(job));
    for &(cost_raw, time) in specs {
        assert!(time >= 1, "synthetic alternatives need time ≥ 1");
        let cost = money(cost_raw);
        let length_slot = Slot::new(
            SlotId::new(0),
            NodeId::new(0),
            Perf::UNIT,
            Price::ZERO,
            Span::new(TimePoint::ZERO, TimePoint::new(1_000_000)).unwrap(),
        )
        .unwrap();
        let cost_slot = Slot::new(
            SlotId::new(1),
            NodeId::new(1),
            Perf::UNIT,
            Price::from_micro(cost.micro()),
            Span::new(TimePoint::ZERO, TimePoint::new(1_000_000)).unwrap(),
        )
        .unwrap();
        let window = Window::new(
            TimePoint::ZERO,
            vec![
                WindowSlot::from_slot(&length_slot, TimeDelta::new(time)).unwrap(),
                WindowSlot::from_slot(&cost_slot, TimeDelta::new(1)).unwrap(),
            ],
        )
        .unwrap();
        debug_assert_eq!(window.total_cost(), cost);
        debug_assert_eq!(window.length(), TimeDelta::new(time.max(1)));
        ja.push(Alternative::new(JobId::new(job), window));
    }
    ja
}

/// Builds a job's alternatives from `(whole credits, ticks)` specs.
pub(crate) fn alts(job: u32, specs: &[(i64, i64)]) -> JobAlternatives {
    alts_with(job, specs, Money::from_credits)
}
