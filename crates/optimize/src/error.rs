//! Error types for the combination optimizer.

use std::error::Error;
use std::fmt;

use ecosched_core::JobId;

/// Errors raised by the batch combination optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OptimizeError {
    /// The batch has no jobs to optimize.
    EmptyBatch,
    /// A job has no alternatives; the paper postpones such jobs *before*
    /// optimization, so reaching the optimizer with one is a caller bug.
    NoAlternatives {
        /// The job with an empty alternative set.
        job: JobId,
    },
    /// No combination of alternatives satisfies the constraint.
    Infeasible,
    /// A non-positive constraint or resolution was supplied.
    InvalidParameter {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::EmptyBatch => write!(f, "no jobs to optimize"),
            OptimizeError::NoAlternatives { job } => {
                write!(
                    f,
                    "{job} has no alternatives; postpone it before optimizing"
                )
            }
            OptimizeError::Infeasible => {
                write!(f, "no combination of alternatives satisfies the constraint")
            }
            OptimizeError::InvalidParameter { reason } => {
                write!(f, "invalid optimizer parameter: {reason}")
            }
        }
    }
}

impl Error for OptimizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_never_empty() {
        let errors = vec![
            OptimizeError::EmptyBatch,
            OptimizeError::NoAlternatives { job: JobId::new(1) },
            OptimizeError::Infeasible,
            OptimizeError::InvalidParameter { reason: "x".into() },
        ];
        for e in errors {
            assert!(!format!("{e}").is_empty());
        }
    }
}
