//! Exhaustive enumeration — the test oracle for the DP solvers.
//!
//! Walks every combination of alternatives, so it is only usable on small
//! tables; [`enumerate`] refuses tables with more than a configurable
//! number of combinations.

use ecosched_core::{JobAlternatives, Money, TimeDelta};

use crate::assignment::Assignment;
use crate::error::OptimizeError;

/// Hard cap on the number of combinations [`enumerate`] will visit.
pub const MAX_COMBINATIONS: u64 = 5_000_000;

/// Calls `visit` with every complete choice-index vector of the table.
///
/// # Errors
///
/// * [`OptimizeError::EmptyBatch`] / [`OptimizeError::NoAlternatives`] on a
///   malformed table;
/// * [`OptimizeError::InvalidParameter`] if the combination count exceeds
///   [`MAX_COMBINATIONS`].
pub fn enumerate(
    alternatives: &[JobAlternatives],
    mut visit: impl FnMut(&[usize]),
) -> Result<(), OptimizeError> {
    if alternatives.is_empty() {
        return Err(OptimizeError::EmptyBatch);
    }
    let mut combos: u64 = 1;
    for ja in alternatives {
        if ja.is_empty() {
            return Err(OptimizeError::NoAlternatives { job: ja.job() });
        }
        combos = combos.saturating_mul(ja.len() as u64);
    }
    if combos > MAX_COMBINATIONS {
        return Err(OptimizeError::InvalidParameter {
            reason: format!("{combos} combinations exceed the brute-force cap"),
        });
    }
    let mut indices = vec![0usize; alternatives.len()];
    loop {
        visit(&indices);
        // Odometer increment.
        let mut pos = alternatives.len();
        loop {
            if pos == 0 {
                return Ok(());
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < alternatives[pos].len() {
                break;
            }
            indices[pos] = 0;
        }
    }
}

/// Brute-force `min T(s̄)` s.t. `C(s̄) ≤ budget`. Exact (no quantization).
///
/// # Errors
///
/// See [`enumerate`]; additionally [`OptimizeError::Infeasible`] when no
/// combination fits the budget.
pub fn min_time_under_budget_brute(
    alternatives: &[JobAlternatives],
    budget: Money,
) -> Result<Assignment, OptimizeError> {
    let mut best: Option<(TimeDelta, Vec<usize>)> = None;
    enumerate(alternatives, |indices| {
        let a = Assignment::from_indices(alternatives, indices);
        if a.total_cost() <= budget {
            let t = a.total_time();
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, indices.to_vec()));
            }
        }
    })?;
    let (_, indices) = best.ok_or(OptimizeError::Infeasible)?;
    Ok(Assignment::from_indices(alternatives, &indices))
}

/// Brute-force `min C(s̄)` s.t. `T(s̄) ≤ quota`.
///
/// # Errors
///
/// See [`min_time_under_budget_brute`].
pub fn min_cost_under_time_brute(
    alternatives: &[JobAlternatives],
    quota: TimeDelta,
) -> Result<Assignment, OptimizeError> {
    extremal_cost_under_time(alternatives, quota, false)
}

/// Brute-force `max C(s̄)` s.t. `T(s̄) ≤ quota` (owners' income).
///
/// # Errors
///
/// See [`min_time_under_budget_brute`].
pub fn max_cost_under_time_brute(
    alternatives: &[JobAlternatives],
    quota: TimeDelta,
) -> Result<Assignment, OptimizeError> {
    extremal_cost_under_time(alternatives, quota, true)
}

fn extremal_cost_under_time(
    alternatives: &[JobAlternatives],
    quota: TimeDelta,
    maximize: bool,
) -> Result<Assignment, OptimizeError> {
    let mut best: Option<(Money, Vec<usize>)> = None;
    enumerate(alternatives, |indices| {
        let a = Assignment::from_indices(alternatives, indices);
        if a.total_time() <= quota {
            let c = a.total_cost();
            let better = best
                .as_ref()
                .is_none_or(|(bc, _)| if maximize { c > *bc } else { c < *bc });
            if better {
                best = Some((c, indices.to_vec()));
            }
        }
    })?;
    let (_, indices) = best.ok_or(OptimizeError::Infeasible)?;
    Ok(Assignment::from_indices(alternatives, &indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::alts;

    #[test]
    fn enumerate_visits_every_combination() {
        let table = vec![
            alts(0, &[(1, 1), (2, 2)]),
            alts(1, &[(1, 1), (2, 2), (3, 3)]),
        ];
        let mut seen = Vec::new();
        enumerate(&table, |idx| seen.push(idx.to_vec())).unwrap();
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&vec![1, 2]));
        assert!(seen.contains(&vec![0, 0]));
    }

    #[test]
    fn brute_agrees_with_small_hand_checked_case() {
        let table = vec![alts(0, &[(10, 10), (2, 40)]), alts(1, &[(8, 10), (3, 30)])];
        let a = min_time_under_budget_brute(&table, Money::from_credits(13)).unwrap();
        assert_eq!(a.total_time(), TimeDelta::new(40));
        let a = min_cost_under_time_brute(&table, TimeDelta::new(50)).unwrap();
        assert_eq!(a.total_cost(), Money::from_credits(10));
        let a = min_cost_under_time_brute(&table, TimeDelta::new(45)).unwrap();
        assert_eq!(a.total_cost(), Money::from_credits(13));
        let a = max_cost_under_time_brute(&table, TimeDelta::new(100)).unwrap();
        assert_eq!(a.total_cost(), Money::from_credits(18));
    }

    #[test]
    fn infeasible_and_malformed_cases() {
        let table = vec![alts(0, &[(10, 10)])];
        assert_eq!(
            min_time_under_budget_brute(&table, Money::from_credits(1)).unwrap_err(),
            OptimizeError::Infeasible
        );
        assert!(enumerate(&[], |_| {}).is_err());
    }
}
