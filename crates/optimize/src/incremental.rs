//! Incremental combination optimization: cached backward-run DP rows and
//! Pareto layers, revalidated by fingerprint instead of rebuilt per call.
//!
//! # Why suffix rows are reusable
//!
//! Row `i` of the Eq. (1) table (`f_i`) is a pure function of job `i`'s
//! alternative set and row `i+1`; the base row `f_{n+1} ≡ 0` depends on
//! nothing. By induction, row `i` is fully determined by the alternative
//! sets of jobs `i..n` — the *suffix* — and is independent of the query
//! capacity beyond its width (`f[i][w]` never reads a column `> w`). Two
//! consequences drive the cache design:
//!
//! * A mutation at job `k` (add/drop/repair/revoke) invalidates only rows
//!   `0..=k`; rows `k+1..n` are byte-identical and are reused.
//! * Tightening or loosening the limit (`B*`/`T*`) invalidates *nothing*:
//!   a smaller capacity reads a prefix of each cached row; a larger one
//!   appends columns in place, back to front ([`dp::extend_row_threads`]).
//!
//! # Cache keying and invalidation
//!
//! Each cached row stores a *suffix fingerprint*: an FNV-1a hash of its
//! job's alternative set (weight/value pairs, in order) chained with the
//! next row's fingerprint. Matching one fingerprint therefore certifies
//! the whole suffix in O(1). Cache entries are aligned to the **end** of
//! the job list, so a batch that grew or shrank at the front still reuses
//! its common tail; the first position whose diagonal fingerprint matches
//! marks the reusable suffix. Job identity is deliberately *not* part of
//! the key — row values depend only on the items, so two jobs with equal
//! alternative sets may share rows, and the engine's positional re-keying
//! of batches does not defeat the cache. In debug builds every reused row
//! is additionally checked structurally against the live alternative set,
//! so a fingerprint collision (or a stale-reuse bug) aborts loudly.
//!
//! The time-minimization cache is additionally keyed by the money
//! `resolution` (it changes the quantized weights), and the Pareto cache
//! by the layer-size cap; a mismatch clears them.
//!
//! The Pareto frontier is the mirror image: layer `i` depends on layers
//! `< i`, so it caches the longest matching *prefix* (chained front-to-
//! back) and rebuilds only the layers after the first mutated job.
//!
//! Equivalence with the `*_naive` oracles is by construction — both paths
//! share [`dp::compute_row`]/[`dp::extend_row_threads`]/[`dp::reconstruct_choices`]
//! and the layer builders in [`crate::pareto`] — and is enforced
//! byte-for-byte by the differential harness in `tests/equivalence.rs`.

use ecosched_core::{JobAlternatives, Money, TimeDelta};
use serde::{Deserialize, Serialize};

use crate::assignment::Assignment;
use crate::dp::{self, Item, Sense};
use crate::error::OptimizeError;
use crate::pareto::{self, Point, DEFAULT_FRONTIER_CAP};

/// Work counters for the incremental optimizer: how much cached state was
/// reused versus recomputed. Deltas are surfaced per cycle through
/// `CycleSummary`/`EngineReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptStats {
    /// DP + frontier solver invocations answered.
    pub solves: u64,
    /// Cached DP rows revalidated and reused unchanged.
    pub rows_reused: u64,
    /// DP rows recomputed because their suffix changed.
    pub rows_rebuilt: u64,
    /// Cached rows widened in place after a capacity increase.
    pub rows_extended: u64,
    /// Cached Pareto layers reused.
    pub frontier_reused: u64,
    /// Pareto layers rebuilt.
    pub frontier_rebuilt: u64,
    /// Peak resident cache size (DP rows + frontier layers).
    pub cache_high_water: u64,
}

impl OptStats {
    /// Accumulates `other` into `self` (counters add, high-water maxes).
    pub fn merge(&mut self, other: &OptStats) {
        self.solves += other.solves;
        self.rows_reused += other.rows_reused;
        self.rows_rebuilt += other.rows_rebuilt;
        self.rows_extended += other.rows_extended;
        self.frontier_reused += other.frontier_reused;
        self.frontier_rebuilt += other.frontier_rebuilt;
        self.cache_high_water = self.cache_high_water.max(other.cache_high_water);
    }

    /// The work done since an earlier snapshot (counters subtract; the
    /// high-water mark carries the current peak).
    #[must_use]
    pub fn delta_since(&self, earlier: &OptStats) -> OptStats {
        OptStats {
            solves: self.solves - earlier.solves,
            rows_reused: self.rows_reused - earlier.rows_reused,
            rows_rebuilt: self.rows_rebuilt - earlier.rows_rebuilt,
            rows_extended: self.rows_extended - earlier.rows_extended,
            frontier_reused: self.frontier_reused - earlier.frontier_reused,
            frontier_rebuilt: self.frontier_rebuilt - earlier.frontier_rebuilt,
            cache_high_water: self.cache_high_water,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fingerprint of one job's alternative set in DP terms.
fn fp_items(items: &[Item]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(items.len() as u64).to_le_bytes());
    for item in items {
        h = fnv1a(h, &item.weight.to_le_bytes());
        h = fnv1a(h, &item.value.to_le_bytes());
    }
    h
}

/// Chains a job fingerprint with an adjacent (suffix or prefix) chain value.
fn chain(job_fp: u64, neighbor: u64) -> u64 {
    fnv1a(job_fp, &neighbor.to_le_bytes())
}

/// One cached DP row, keyed by the fingerprint of the job suffix it heads.
#[derive(Debug)]
struct RowEntry {
    suffix_fp: u64,
    row: Vec<Option<i64>>,
    /// Structural copy of the items the row was built from. Debug builds
    /// check it against the live alternative set to catch fingerprint
    /// collisions / stale reuse outright; snapshot export carries it so a
    /// restored cache can keep making the same check.
    items: Vec<Item>,
}

/// A backward-run row cache for one (sense, weight-axis) combination.
#[derive(Debug)]
struct DpCache {
    sense: Sense,
    /// Rows for the most recent job list, aligned to its *end*.
    entries: Vec<RowEntry>,
    /// Number of columns − 1 every cached row currently spans.
    width: usize,
}

impl DpCache {
    fn new(sense: Sense) -> Self {
        DpCache {
            sense,
            entries: Vec::new(),
            width: 0,
        }
    }

    fn invalidate(&mut self) {
        self.entries.clear();
        self.width = 0;
    }

    fn resident_rows(&self) -> usize {
        self.entries.len()
    }

    /// Solves the backward run at `capacity`, reusing every cached row
    /// whose job suffix is unchanged. Returns per-job choices, or `None`
    /// when infeasible — byte-identical to `dp::backward_run`.
    ///
    /// `threads > 1` fans row construction/widening out column-wise (each
    /// cell is a pure function of the already-complete next row, see
    /// [`dp::extend_row_threads`]); rows are still built back to front and
    /// committed to the cache one at a time on the caller's thread, in
    /// order, so the cache contents — and every [`OptStats`] counter,
    /// which counts rows, not cells — are identical at any thread count.
    fn solve(
        &mut self,
        items: &[Vec<Item>],
        capacity: i64,
        threads: usize,
        stats: &mut OptStats,
    ) -> Option<Vec<usize>> {
        if capacity < 0 {
            return None;
        }
        let n = items.len();
        let cap = capacity as usize;
        stats.solves += 1;

        let job_fps: Vec<u64> = items.iter().map(|row| fp_items(row)).collect();
        let mut suffix_fps = vec![0u64; n];
        let mut acc = FNV_OFFSET;
        for i in (0..n).rev() {
            acc = chain(job_fps[i], acc);
            suffix_fps[i] = acc;
        }

        // Entries are end-aligned: cached entry j describes new position
        // j - offset. The first diagonal fingerprint match certifies the
        // entire remaining suffix (the chain includes everything after it).
        let offset = self.entries.len() as i64 - n as i64;
        let mut reuse_from = n;
        for (i, fp) in suffix_fps.iter().enumerate() {
            let j = i as i64 + offset;
            if j >= 0 && (j as usize) < self.entries.len() {
                if self.entries[j as usize].suffix_fp == *fp {
                    reuse_from = i;
                    break;
                }
            } else if j >= self.entries.len() as i64 {
                break;
            }
        }

        if reuse_from == n {
            // Nothing survives: start a fresh cache sized to this query.
            self.entries.clear();
            self.width = cap;
        } else {
            let first_kept = (reuse_from as i64 + offset) as usize;
            self.entries.drain(..first_kept);
        }
        let kept = self.entries.len();
        debug_assert_eq!(kept, n - reuse_from);

        // Never shrink: wider rows answer narrower queries by prefix.
        let target = self.width.max(cap);
        let base: Vec<Option<i64>> = vec![Some(0); target + 1];

        // Stale-reuse guard: a reused row must describe exactly the live
        // alternative set at its position. The fingerprint chain implies
        // it; debug builds verify structurally.
        #[cfg(debug_assertions)]
        for (k, entry) in self.entries.iter().enumerate() {
            debug_assert_eq!(
                entry.items,
                items[reuse_from + k],
                "stale DP row reused at position {} (alternative set changed)",
                reuse_from + k
            );
        }

        // Widen surviving rows in place, back to front so each row's next
        // row is already at full width.
        if target > self.width && kept > 0 {
            for k in (0..kept).rev() {
                let (head, tail) = self.entries.split_at_mut(k + 1);
                let next: &[Option<i64>] = match tail.first() {
                    Some(entry) => &entry.row,
                    None => &base,
                };
                dp::extend_row_threads(
                    &items[reuse_from + k],
                    next,
                    &mut head[k].row,
                    target,
                    self.sense,
                    threads,
                );
            }
            stats.rows_extended += kept as u64;
        }
        self.width = target;
        stats.rows_reused += kept as u64;

        // Rebuild the invalidated prefix, back to front.
        let mut fresh: Vec<RowEntry> = Vec::with_capacity(reuse_from);
        for i in (0..reuse_from).rev() {
            let next: &[Option<i64>] = if i + 1 == n {
                &base
            } else if i + 1 == reuse_from {
                &self.entries[0].row
            } else {
                &fresh.last().expect("rows are built back to front").row
            };
            fresh.push(RowEntry {
                suffix_fp: suffix_fps[i],
                row: dp::compute_row_threads(&items[i], next, target, self.sense, threads),
                items: items[i].clone(),
            });
        }
        stats.rows_rebuilt += fresh.len() as u64;
        fresh.reverse();
        fresh.append(&mut self.entries);
        self.entries = fresh;

        let mut rows: Vec<&[Option<i64>]> = self.entries.iter().map(|e| e.row.as_slice()).collect();
        rows.push(&base);
        dp::reconstruct_choices(items, &rows, cap)
    }
}

/// A plain-data export of one cached DP row: the fingerprint, the row
/// values, and the (weight, value) items the row was built from, as
/// parallel vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowSnapshot {
    /// The chained suffix fingerprint keying the row.
    pub suffix_fp: u64,
    /// The row values (`None` marks an unreachable capacity).
    pub row: Vec<Option<i64>>,
    /// Item weights, parallel to `values`.
    pub weights: Vec<i64>,
    /// Item values, parallel to `weights`.
    pub values: Vec<i64>,
}

/// A plain-data export of one backward-run row cache.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpCacheSnapshot {
    /// Columns − 1 every cached row spans.
    pub width: u64,
    /// The cached rows, front (row 0) first.
    pub rows: Vec<RowSnapshot>,
}

/// A plain-data export of one cached Pareto point.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontierPointSnapshot {
    /// Total cost in micro-credits.
    pub cost_micro: i64,
    /// Total time in ticks.
    pub time_ticks: i64,
    /// Alternative index chosen for the layer's job.
    pub alt: u64,
    /// Index of the predecessor point in the previous layer.
    pub parent: u64,
}

/// A plain-data export of one cached Pareto layer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontierLayerSnapshot {
    /// The chained prefix fingerprint keying the layer.
    pub prefix_fp: u64,
    /// The layer's Pareto points, in frontier order.
    pub points: Vec<FrontierPointSnapshot>,
}

/// A resumable export of an [`IncrementalOptimizer`]'s full cached state —
/// DP rows per criterion, Pareto layers, and work counters. Restoring it
/// with [`IncrementalOptimizer::from_snapshot`] yields an optimizer whose
/// subsequent solves (results *and* [`OptStats`] deltas) are identical to
/// the captured one's.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizerSnapshot {
    /// The `min C(s̄) s.t. T ≤ T*` row cache.
    pub cost_min: DpCacheSnapshot,
    /// The `max C(s̄) s.t. T ≤ T*` row cache.
    pub cost_max: DpCacheSnapshot,
    /// The `min T(s̄) s.t. C ≤ B*` row cache.
    pub time_min: DpCacheSnapshot,
    /// The money resolution (micro-credits) the `time_min` rows were
    /// quantized at; zero when that cache is untouched.
    pub time_min_resolution: i64,
    /// The Pareto layer-size cap in force.
    pub frontier_cap: u64,
    /// The cached Pareto layers, front first.
    pub frontier_layers: Vec<FrontierLayerSnapshot>,
    /// Cumulative work counters at capture time.
    pub stats: OptStats,
}

impl DpCache {
    fn snapshot(&self) -> DpCacheSnapshot {
        DpCacheSnapshot {
            width: self.width as u64,
            rows: self
                .entries
                .iter()
                .map(|e| RowSnapshot {
                    suffix_fp: e.suffix_fp,
                    row: e.row.clone(),
                    weights: e.items.iter().map(|i| i.weight).collect(),
                    values: e.items.iter().map(|i| i.value).collect(),
                })
                .collect(),
        }
    }

    fn restore(sense: Sense, snapshot: &DpCacheSnapshot) -> Self {
        DpCache {
            sense,
            entries: snapshot
                .rows
                .iter()
                .map(|r| RowEntry {
                    suffix_fp: r.suffix_fp,
                    row: r.row.clone(),
                    items: r
                        .weights
                        .iter()
                        .zip(&r.values)
                        .map(|(&weight, &value)| Item { weight, value })
                        .collect(),
                })
                .collect(),
            width: snapshot.width as usize,
        }
    }
}

/// One cached Pareto layer, keyed by the fingerprint of the job prefix
/// that produced it.
#[derive(Debug)]
struct FrontierLayer {
    prefix_fp: u64,
    layer: Vec<Point>,
}

/// Prefix-cached Pareto frontier (layer `i` depends on layers `< i`).
#[derive(Debug)]
struct FrontierCache {
    cap: usize,
    layers: Vec<FrontierLayer>,
}

impl FrontierCache {
    fn new() -> Self {
        FrontierCache {
            cap: DEFAULT_FRONTIER_CAP,
            layers: Vec::new(),
        }
    }

    /// Brings the cached layers in sync with `alternatives`, rebuilding
    /// only the layers after the longest unchanged prefix.
    fn ensure(
        &mut self,
        alternatives: &[JobAlternatives],
        cap: usize,
        stats: &mut OptStats,
    ) -> Result<(), OptimizeError> {
        dp::validate(alternatives)?;
        stats.solves += 1;
        if cap != self.cap {
            self.layers.clear();
            self.cap = cap;
        }

        let n = alternatives.len();
        let mut prefix_fps = Vec::with_capacity(n);
        let mut acc = FNV_OFFSET;
        for ja in alternatives {
            let mut h = fnv1a(FNV_OFFSET, &(ja.len() as u64).to_le_bytes());
            for alt in ja {
                h = fnv1a(h, &alt.cost().micro().to_le_bytes());
                h = fnv1a(h, &alt.time().ticks().to_le_bytes());
            }
            acc = chain(h, acc);
            prefix_fps.push(acc);
        }

        let mut reuse_len = 0;
        while reuse_len < self.layers.len()
            && reuse_len < n
            && self.layers[reuse_len].prefix_fp == prefix_fps[reuse_len]
        {
            reuse_len += 1;
        }
        self.layers.truncate(reuse_len);
        stats.frontier_reused += reuse_len as u64;
        stats.frontier_rebuilt += (n - reuse_len) as u64;

        for i in reuse_len..n {
            let layer = match self.layers.last() {
                Some(previous) => pareto::next_layer(&previous.layer, &alternatives[i]),
                None => pareto::next_layer(&pareto::seed_layer(), &alternatives[i]),
            };
            pareto::check_cap(layer.len(), cap)?;
            self.layers.push(FrontierLayer {
                prefix_fp: prefix_fps[i],
                layer,
            });
        }
        Ok(())
    }

    fn reconstruct(&self, alternatives: &[JobAlternatives], index: usize) -> Assignment {
        let layers: Vec<&[Point]> = self.layers.iter().map(|l| l.layer.as_slice()).collect();
        let indices = pareto::reconstruct_indices(&layers, index);
        Assignment::from_indices(alternatives, &indices)
    }
}

/// A stateful combination optimizer caching backward-run DP rows (per
/// criterion) and Pareto layers across solves.
///
/// Drop-in equivalent to the free functions — every solve returns exactly
/// what the corresponding `*_naive` oracle returns — but a solver that is
/// re-run after small batch mutations, or re-queried at shifted `B*`/`T*`
/// limits, pays only for the rows whose job suffix actually changed.
/// Create one per scheduling loop and keep it across cycles.
#[derive(Debug)]
pub struct IncrementalOptimizer {
    /// min C(s̄) s.t. T ≤ T*: time-axis weights, minimize cost.
    cost_min: DpCache,
    /// max C(s̄) s.t. T ≤ T* (Eq. (3) inner task): time axis, maximize.
    cost_max: DpCache,
    /// min T(s̄) s.t. C ≤ B*: quantized-cost-axis weights, minimize time.
    time_min: DpCache,
    /// Resolution the `time_min` rows were quantized at (micro-credits);
    /// zero until first use. A different resolution re-weights every item,
    /// so it clears that cache.
    time_min_resolution: i64,
    frontier: FrontierCache,
    stats: OptStats,
    /// Worker-pool width for column-parallel row construction. Purely an
    /// execution knob: results, cache contents, and [`OptStats`] counters
    /// are identical at any value, so it is *not* part of
    /// [`OptimizerSnapshot`] — a restored optimizer starts at 1 and the
    /// run loop re-applies its configured width via
    /// [`Self::set_threads`].
    threads: usize,
}

impl Default for IncrementalOptimizer {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalOptimizer {
    /// Creates an empty optimizer (no cached state).
    #[must_use]
    pub fn new() -> Self {
        IncrementalOptimizer {
            cost_min: DpCache::new(Sense::Minimize),
            cost_max: DpCache::new(Sense::Maximize),
            time_min: DpCache::new(Sense::Minimize),
            time_min_resolution: 0,
            frontier: FrontierCache::new(),
            stats: OptStats::default(),
            threads: 1,
        }
    }

    /// Sets the worker-pool width for column-parallel DP row construction
    /// (clamped to ≥ 1). Outcome-invisible: solves return byte-identical
    /// assignments and count identical [`OptStats`] at any width.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Cumulative work counters since construction.
    #[must_use]
    pub fn stats(&self) -> OptStats {
        self.stats
    }

    /// Exports the full cached state as plain serializable data, for
    /// checkpointing. See [`OptimizerSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> OptimizerSnapshot {
        OptimizerSnapshot {
            cost_min: self.cost_min.snapshot(),
            cost_max: self.cost_max.snapshot(),
            time_min: self.time_min.snapshot(),
            time_min_resolution: self.time_min_resolution,
            frontier_cap: self.frontier.cap as u64,
            frontier_layers: self
                .frontier
                .layers
                .iter()
                .map(|l| FrontierLayerSnapshot {
                    prefix_fp: l.prefix_fp,
                    points: l
                        .layer
                        .iter()
                        .map(|p| FrontierPointSnapshot {
                            cost_micro: p.cost.micro(),
                            time_ticks: p.time.ticks(),
                            alt: p.alt as u64,
                            parent: p.parent as u64,
                        })
                        .collect(),
                })
                .collect(),
            stats: self.stats,
        }
    }

    /// Rebuilds an optimizer from a [`Self::snapshot`] export. The restored
    /// optimizer's subsequent solves produce the same results and the same
    /// [`OptStats`] deltas as the captured one's would have.
    #[must_use]
    pub fn from_snapshot(snapshot: &OptimizerSnapshot) -> Self {
        IncrementalOptimizer {
            cost_min: DpCache::restore(Sense::Minimize, &snapshot.cost_min),
            cost_max: DpCache::restore(Sense::Maximize, &snapshot.cost_max),
            time_min: DpCache::restore(Sense::Minimize, &snapshot.time_min),
            time_min_resolution: snapshot.time_min_resolution,
            frontier: FrontierCache {
                cap: snapshot.frontier_cap as usize,
                layers: snapshot
                    .frontier_layers
                    .iter()
                    .map(|l| FrontierLayer {
                        prefix_fp: l.prefix_fp,
                        layer: l
                            .points
                            .iter()
                            .map(|p| Point {
                                cost: Money::from_micro(p.cost_micro),
                                time: TimeDelta::new(p.time_ticks),
                                alt: p.alt as usize,
                                parent: p.parent as usize,
                            })
                            .collect(),
                    })
                    .collect(),
            },
            stats: snapshot.stats,
            threads: 1,
        }
    }

    /// Drops all cached rows and layers (counters are kept).
    pub fn clear(&mut self) {
        self.cost_min.invalidate();
        self.cost_max.invalidate();
        self.time_min.invalidate();
        self.time_min_resolution = 0;
        self.frontier.layers.clear();
    }

    fn note_high_water(&mut self) {
        let resident = self.cost_min.resident_rows()
            + self.cost_max.resident_rows()
            + self.time_min.resident_rows()
            + self.frontier.layers.len();
        self.stats.cache_high_water = self.stats.cache_high_water.max(resident as u64);
    }

    /// Incremental [`min_time_under_budget`]; see
    /// [`dp::min_time_under_budget_naive`] for semantics and errors.
    pub fn min_time_under_budget(
        &mut self,
        alternatives: &[JobAlternatives],
        budget: Money,
        resolution: Money,
    ) -> Result<Assignment, OptimizeError> {
        dp::validate(alternatives)?;
        dp::validate_resolution(resolution)?;
        if resolution.micro() != self.time_min_resolution {
            self.time_min.invalidate();
            self.time_min_resolution = resolution.micro();
        }
        let items = dp::cost_axis_items(alternatives, resolution);
        let capacity = budget.micro() / resolution.micro();
        let threads = self.threads;
        let choices = self
            .time_min
            .solve(&items, capacity, threads, &mut self.stats)
            .ok_or(OptimizeError::Infeasible);
        self.note_high_water();
        Ok(Assignment::from_indices(alternatives, &choices?))
    }

    /// Incremental [`min_cost_under_time`]; see
    /// [`dp::min_cost_under_time_naive`] for semantics and errors.
    pub fn min_cost_under_time(
        &mut self,
        alternatives: &[JobAlternatives],
        quota: TimeDelta,
    ) -> Result<Assignment, OptimizeError> {
        dp::validate(alternatives)?;
        dp::validate_quota(quota)?;
        let items = dp::time_axis_items(alternatives);
        let threads = self.threads;
        let choices = self
            .cost_min
            .solve(&items, quota.ticks(), threads, &mut self.stats)
            .ok_or(OptimizeError::Infeasible);
        self.note_high_water();
        Ok(Assignment::from_indices(alternatives, &choices?))
    }

    /// Incremental [`max_cost_under_time`]; see
    /// [`dp::max_cost_under_time_naive`] for semantics and errors.
    pub fn max_cost_under_time(
        &mut self,
        alternatives: &[JobAlternatives],
        quota: TimeDelta,
    ) -> Result<Assignment, OptimizeError> {
        dp::validate(alternatives)?;
        dp::validate_quota(quota)?;
        let items = dp::time_axis_items(alternatives);
        let threads = self.threads;
        let choices = self
            .cost_max
            .solve(&items, quota.ticks(), threads, &mut self.stats)
            .ok_or(OptimizeError::Infeasible);
        self.note_high_water();
        Ok(Assignment::from_indices(alternatives, &choices?))
    }

    /// Eq. (3)'s `B*` against an explicit quota, via the cached
    /// [`Self::max_cost_under_time`].
    ///
    /// # Errors
    ///
    /// See [`crate::vo_budget`].
    pub fn vo_budget_with_quota(
        &mut self,
        alternatives: &[JobAlternatives],
        quota: TimeDelta,
    ) -> Result<Money, OptimizeError> {
        let assignment = self.max_cost_under_time(alternatives, quota)?;
        Ok(assignment.total_cost())
    }

    /// Exact `min T(s̄)` s.t. `C(s̄) ≤ budget` from the cached Pareto
    /// frontier (equivalent to
    /// `ParetoFrontier::new(..)?.min_time_under_budget(..)`).
    ///
    /// # Errors
    ///
    /// See [`crate::ParetoFrontier::with_cap`] and
    /// [`crate::ParetoFrontier::min_time_under_budget`].
    pub fn pareto_min_time_under_budget(
        &mut self,
        alternatives: &[JobAlternatives],
        budget: Money,
    ) -> Result<Assignment, OptimizeError> {
        self.pareto_min_time_with_cap(alternatives, budget, DEFAULT_FRONTIER_CAP)
    }

    /// [`Self::pareto_min_time_under_budget`] with an explicit layer cap.
    ///
    /// # Errors
    ///
    /// See [`Self::pareto_min_time_under_budget`].
    pub fn pareto_min_time_with_cap(
        &mut self,
        alternatives: &[JobAlternatives],
        budget: Money,
        cap: usize,
    ) -> Result<Assignment, OptimizeError> {
        let ensured = self.frontier.ensure(alternatives, cap, &mut self.stats);
        self.note_high_water();
        ensured?;
        let last = &self
            .frontier
            .layers
            .last()
            .expect("batch is non-empty")
            .layer;
        let best = pareto::best_under_budget(last, budget).ok_or(OptimizeError::Infeasible)?;
        Ok(self.frontier.reconstruct(alternatives, best))
    }

    /// Exact `min C(s̄)` s.t. `T(s̄) ≤ quota` from the cached Pareto
    /// frontier (equivalent to
    /// `ParetoFrontier::new(..)?.min_cost_under_time(..)`).
    ///
    /// # Errors
    ///
    /// See [`Self::pareto_min_time_under_budget`].
    pub fn pareto_min_cost_under_time(
        &mut self,
        alternatives: &[JobAlternatives],
        quota: TimeDelta,
    ) -> Result<Assignment, OptimizeError> {
        let ensured = self
            .frontier
            .ensure(alternatives, DEFAULT_FRONTIER_CAP, &mut self.stats);
        self.note_high_water();
        ensured?;
        let last = &self
            .frontier
            .layers
            .last()
            .expect("batch is non-empty")
            .layer;
        let best = pareto::best_under_quota(last, quota).ok_or(OptimizeError::Infeasible)?;
        Ok(self.frontier.reconstruct(alternatives, best))
    }
}

/// Minimizes total batch time `T(s̄)` subject to the budget `C(s̄) ≤ B*`
/// (the paper's Sec. 5 *time-minimization* task), via a one-shot
/// [`IncrementalOptimizer`]. Hold an optimizer instead to reuse rows
/// across calls.
///
/// # Errors
///
/// See [`dp::min_time_under_budget_naive`], the from-scratch oracle this
/// is byte-identical to.
pub fn min_time_under_budget(
    alternatives: &[JobAlternatives],
    budget: Money,
    resolution: Money,
) -> Result<Assignment, OptimizeError> {
    IncrementalOptimizer::new().min_time_under_budget(alternatives, budget, resolution)
}

/// Minimizes total batch cost `C(s̄)` subject to the time quota
/// `T(s̄) ≤ T*` (the paper's Sec. 5 *cost-minimization* task), via a
/// one-shot [`IncrementalOptimizer`].
///
/// # Errors
///
/// See [`dp::min_cost_under_time_naive`], the from-scratch oracle this is
/// byte-identical to.
pub fn min_cost_under_time(
    alternatives: &[JobAlternatives],
    quota: TimeDelta,
) -> Result<Assignment, OptimizeError> {
    IncrementalOptimizer::new().min_cost_under_time(alternatives, quota)
}

/// Maximizes total batch cost (the resource owners' income) subject to
/// the time quota — Eq. (3)'s inner optimization, used to derive the VO
/// budget `B*` — via a one-shot [`IncrementalOptimizer`].
///
/// # Errors
///
/// See [`dp::max_cost_under_time_naive`], the from-scratch oracle this is
/// byte-identical to.
pub fn max_cost_under_time(
    alternatives: &[JobAlternatives],
    quota: TimeDelta,
) -> Result<Assignment, OptimizeError> {
    IncrementalOptimizer::new().max_cost_under_time(alternatives, quota)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{max_cost_under_time_naive, min_cost_under_time_naive};
    use crate::test_support::alts;

    fn table() -> Vec<JobAlternatives> {
        vec![
            alts(0, &[(10, 10), (2, 40), (5, 20)]),
            alts(1, &[(8, 10), (3, 30)]),
            alts(2, &[(6, 15), (1, 60), (4, 25)]),
        ]
    }

    #[test]
    fn quota_shift_reuses_every_row() {
        let t = table();
        let mut opt = IncrementalOptimizer::new();
        let wide = opt.min_cost_under_time(&t, TimeDelta::new(110)).unwrap();
        assert_eq!(opt.stats().rows_rebuilt, 3);
        // A tighter quota reads shorter row prefixes: zero rows rebuilt.
        let tight = opt.min_cost_under_time(&t, TimeDelta::new(60)).unwrap();
        let stats = opt.stats();
        assert_eq!(stats.rows_rebuilt, 3);
        assert_eq!(stats.rows_reused, 3);
        assert_eq!(
            tight,
            min_cost_under_time_naive(&t, TimeDelta::new(60)).unwrap()
        );
        assert_eq!(
            wide,
            min_cost_under_time_naive(&t, TimeDelta::new(110)).unwrap()
        );
    }

    #[test]
    fn quota_growth_extends_rows_in_place() {
        let t = table();
        let mut opt = IncrementalOptimizer::new();
        opt.min_cost_under_time(&t, TimeDelta::new(60)).unwrap();
        let wide = opt.min_cost_under_time(&t, TimeDelta::new(120)).unwrap();
        let stats = opt.stats();
        assert_eq!(stats.rows_rebuilt, 3, "widening must not rebuild");
        assert_eq!(stats.rows_extended, 3);
        assert_eq!(
            wide,
            min_cost_under_time_naive(&t, TimeDelta::new(120)).unwrap()
        );
    }

    #[test]
    fn front_mutation_keeps_suffix_rows() {
        let mut t = table();
        let mut opt = IncrementalOptimizer::new();
        opt.min_cost_under_time(&t, TimeDelta::new(110)).unwrap();
        // Change job 0's alternatives: rows 1..3 must survive.
        t[0] = alts(0, &[(7, 12), (2, 40)]);
        let a = opt.min_cost_under_time(&t, TimeDelta::new(110)).unwrap();
        let stats = opt.stats();
        assert_eq!(stats.rows_rebuilt, 4);
        assert_eq!(stats.rows_reused, 2);
        assert_eq!(
            a,
            min_cost_under_time_naive(&t, TimeDelta::new(110)).unwrap()
        );
    }

    #[test]
    fn job_add_and_drop_realign_the_tail() {
        let mut t = table();
        let mut opt = IncrementalOptimizer::new();
        opt.min_cost_under_time(&t, TimeDelta::new(140)).unwrap();
        // Drop the front job: both remaining rows reused.
        t.remove(0);
        opt.min_cost_under_time(&t, TimeDelta::new(140)).unwrap();
        assert_eq!(opt.stats().rows_reused, 2);
        assert_eq!(opt.stats().rows_rebuilt, 3);
        // Prepend a new job: the two old rows are still the tail.
        t.insert(0, alts(9, &[(4, 18), (1, 50)]));
        let a = opt.min_cost_under_time(&t, TimeDelta::new(140)).unwrap();
        assert_eq!(opt.stats().rows_reused, 4);
        assert_eq!(opt.stats().rows_rebuilt, 4);
        assert_eq!(
            a,
            min_cost_under_time_naive(&t, TimeDelta::new(140)).unwrap()
        );
    }

    #[test]
    fn caches_are_independent_per_criterion() {
        let t = table();
        let mut opt = IncrementalOptimizer::new();
        let min = opt.min_cost_under_time(&t, TimeDelta::new(80)).unwrap();
        let max = opt.max_cost_under_time(&t, TimeDelta::new(80)).unwrap();
        assert_eq!(
            min,
            min_cost_under_time_naive(&t, TimeDelta::new(80)).unwrap()
        );
        assert_eq!(
            max,
            max_cost_under_time_naive(&t, TimeDelta::new(80)).unwrap()
        );
        assert!(min.total_cost() <= max.total_cost());
    }

    #[test]
    fn resolution_change_invalidates_time_min_cache() {
        let t = table();
        let mut opt = IncrementalOptimizer::new();
        let budget = Money::from_credits(15);
        opt.min_time_under_budget(&t, budget, Money::from_credits(1))
            .unwrap();
        let rebuilt_before = opt.stats().rows_rebuilt;
        let a = opt
            .min_time_under_budget(&t, budget, Money::from_micro(500_000))
            .unwrap();
        assert_eq!(
            opt.stats().rows_rebuilt,
            rebuilt_before + 3,
            "new resolution re-weights every item"
        );
        assert_eq!(
            a,
            dp::min_time_under_budget_naive(&t, budget, Money::from_micro(500_000)).unwrap()
        );
    }

    #[test]
    fn pareto_prefix_reuse_after_tail_mutation() {
        let mut t = table();
        let mut opt = IncrementalOptimizer::new();
        let budget = Money::from_credits(20);
        let a = opt.pareto_min_time_under_budget(&t, budget).unwrap();
        let naive = crate::ParetoFrontier::new(&t).unwrap();
        assert_eq!(a, naive.min_time_under_budget(budget).unwrap());
        assert_eq!(opt.stats().frontier_rebuilt, 3);
        // Mutate the *last* job: layers 0..2 reused.
        t[2] = alts(2, &[(6, 15), (2, 45)]);
        let b = opt.pareto_min_time_under_budget(&t, budget).unwrap();
        assert_eq!(opt.stats().frontier_reused, 2);
        assert_eq!(opt.stats().frontier_rebuilt, 4);
        let naive = crate::ParetoFrontier::new(&t).unwrap();
        assert_eq!(b, naive.min_time_under_budget(budget).unwrap());
    }

    #[test]
    fn one_shot_wrappers_match_naive() {
        let t = table();
        assert_eq!(
            min_cost_under_time(&t, TimeDelta::new(70)).unwrap(),
            min_cost_under_time_naive(&t, TimeDelta::new(70)).unwrap()
        );
        assert_eq!(
            max_cost_under_time(&t, TimeDelta::new(70)).unwrap(),
            max_cost_under_time_naive(&t, TimeDelta::new(70)).unwrap()
        );
        assert_eq!(
            min_time_under_budget(&t, Money::from_credits(14), Money::from_credits(1)).unwrap(),
            dp::min_time_under_budget_naive(&t, Money::from_credits(14), Money::from_credits(1))
                .unwrap()
        );
    }

    #[test]
    fn errors_match_naive_semantics() {
        let mut opt = IncrementalOptimizer::new();
        assert_eq!(
            opt.min_cost_under_time(&[], TimeDelta::new(5)).unwrap_err(),
            OptimizeError::EmptyBatch
        );
        let t = vec![alts(0, &[(1, 50)])];
        assert_eq!(
            opt.min_cost_under_time(&t, TimeDelta::new(49)).unwrap_err(),
            OptimizeError::Infeasible
        );
        assert!(matches!(
            opt.min_cost_under_time(&t, TimeDelta::ZERO).unwrap_err(),
            OptimizeError::InvalidParameter { .. }
        ));
        // An infeasible solve must not poison the cache for the next one.
        let a = opt.min_cost_under_time(&t, TimeDelta::new(50)).unwrap();
        assert_eq!(
            a,
            min_cost_under_time_naive(&t, TimeDelta::new(50)).unwrap()
        );
    }

    /// Warms an optimizer across all three DP criteria plus the Pareto
    /// frontier so a snapshot carries non-trivial state everywhere.
    fn warmed() -> (Vec<JobAlternatives>, IncrementalOptimizer) {
        let t = table();
        let mut opt = IncrementalOptimizer::new();
        opt.min_cost_under_time(&t, TimeDelta::new(110)).unwrap();
        opt.max_cost_under_time(&t, TimeDelta::new(90)).unwrap();
        opt.min_time_under_budget(&t, Money::from_credits(15), Money::from_credits(1))
            .unwrap();
        opt.pareto_min_time_under_budget(&t, Money::from_credits(20))
            .unwrap();
        (t, opt)
    }

    #[test]
    fn snapshot_restore_is_behavior_identical() {
        let (mut t, mut original) = warmed();
        let mut restored = IncrementalOptimizer::from_snapshot(&original.snapshot());
        assert_eq!(restored.stats(), original.stats());

        // A front mutation followed by re-solves: both optimizers must do
        // the same work (stats) and return the same assignments.
        t[0] = alts(0, &[(7, 12), (2, 40)]);
        let a = original
            .min_cost_under_time(&t, TimeDelta::new(110))
            .unwrap();
        let b = restored
            .min_cost_under_time(&t, TimeDelta::new(110))
            .unwrap();
        assert_eq!(a, b);
        let a = original
            .pareto_min_time_under_budget(&t, Money::from_credits(18))
            .unwrap();
        let b = restored
            .pareto_min_time_under_budget(&t, Money::from_credits(18))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(
            restored.stats(),
            original.stats(),
            "a restored cache must reuse and rebuild exactly what the \
             original would"
        );
    }

    #[test]
    fn snapshot_serializes_round_trip() {
        let (_, opt) = warmed();
        let snapshot = opt.snapshot();
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: OptimizerSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
        // The restored optimizer re-exports the same snapshot.
        assert_eq!(
            IncrementalOptimizer::from_snapshot(&back).snapshot(),
            snapshot
        );
    }

    #[test]
    fn empty_snapshot_restores_a_cold_optimizer() {
        let cold = IncrementalOptimizer::new();
        let restored = IncrementalOptimizer::from_snapshot(&cold.snapshot());
        assert_eq!(restored.snapshot(), cold.snapshot());
    }

    #[test]
    fn stats_merge_and_delta() {
        let mut a = OptStats {
            solves: 2,
            rows_reused: 5,
            rows_rebuilt: 7,
            rows_extended: 1,
            frontier_reused: 0,
            frontier_rebuilt: 3,
            cache_high_water: 9,
        };
        let b = OptStats {
            solves: 1,
            rows_reused: 1,
            rows_rebuilt: 2,
            rows_extended: 0,
            frontier_reused: 2,
            frontier_rebuilt: 0,
            cache_high_water: 4,
        };
        let before = a;
        a.merge(&b);
        assert_eq!(a.solves, 3);
        assert_eq!(a.rows_reused, 6);
        assert_eq!(a.cache_high_water, 9);
        let delta = a.delta_since(&before);
        assert_eq!(delta.solves, 1);
        assert_eq!(delta.rows_rebuilt, 2);
        assert_eq!(delta.frontier_reused, 2);
    }
}
