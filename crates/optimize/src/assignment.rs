//! Assignments: the optimizer's output — one chosen alternative per job.

use std::fmt;

use ecosched_core::{JobAlternatives, JobId, Money, TimeDelta};
use serde::{Deserialize, Serialize};

/// One job's chosen alternative, with its measures denormalized for
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Choice {
    /// The job.
    pub job: JobId,
    /// Index into the job's [`JobAlternatives`] list.
    pub alternative: usize,
    /// The chosen alternative's execution cost `c_i(s̄_i)`.
    pub cost: Money,
    /// The chosen alternative's execution time `t_i(s̄_i)`.
    pub time: TimeDelta,
}

/// A complete slot combination `s̄ = (s̄_1, …, s̄_n)`: one alternative per
/// job, in batch order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Assignment {
    choices: Vec<Choice>,
}

impl Assignment {
    /// Builds an assignment from per-job choice indices.
    ///
    /// # Panics
    ///
    /// Panics if `indices` and `alternatives` have different lengths or an
    /// index is out of range; the optimizer only produces valid indices.
    #[must_use]
    pub fn from_indices(alternatives: &[JobAlternatives], indices: &[usize]) -> Self {
        assert_eq!(alternatives.len(), indices.len(), "one choice per job");
        let choices = alternatives
            .iter()
            .zip(indices)
            .map(|(ja, &idx)| {
                let alt = &ja.alternatives()[idx];
                Choice {
                    job: ja.job(),
                    alternative: idx,
                    cost: alt.cost(),
                    time: alt.time(),
                }
            })
            .collect();
        Assignment { choices }
    }

    /// The per-job choices in batch order.
    #[must_use]
    pub fn choices(&self) -> &[Choice] {
        &self.choices
    }

    /// Total batch execution cost `C(s̄) = Σ c_i(s̄_i)`.
    #[must_use]
    pub fn total_cost(&self) -> Money {
        self.choices.iter().map(|c| c.cost).sum()
    }

    /// Total batch execution time `T(s̄) = Σ t_i(s̄_i)`.
    #[must_use]
    pub fn total_time(&self) -> TimeDelta {
        self.choices.iter().map(|c| c.time).sum()
    }

    /// Number of jobs covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Returns `true` if no job is covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Mean per-job execution time, as reported in the paper's Fig. 4–6.
    #[must_use]
    pub fn avg_time(&self) -> f64 {
        if self.choices.is_empty() {
            0.0
        } else {
            self.total_time().ticks() as f64 / self.choices.len() as f64
        }
    }

    /// Mean per-job execution cost, as reported in the paper's Fig. 4–6.
    #[must_use]
    pub fn avg_cost(&self) -> f64 {
        if self.choices.is_empty() {
            0.0
        } else {
            self.total_cost().to_f64() / self.choices.len() as f64
        }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "assignment: C(s̄)={}, T(s̄)={}",
            self.total_cost(),
            self.total_time()
        )?;
        for c in &self.choices {
            writeln!(
                f,
                "  {} → alternative #{} (cost {}, time {})",
                c.job, c.alternative, c.cost, c.time
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{
        Alternative, NodeId, Perf, Price, Slot, SlotId, Span, TimePoint, Window, WindowSlot,
    };

    fn alts(job: u32, specs: &[(i64, i64)]) -> JobAlternatives {
        let mut ja = JobAlternatives::new(JobId::new(job));
        for &(price, runtime) in specs {
            let slot = Slot::new(
                SlotId::new(0),
                NodeId::new(0),
                Perf::UNIT,
                Price::from_credits(price),
                Span::new(TimePoint::ZERO, TimePoint::new(10_000)).unwrap(),
            )
            .unwrap();
            let ws = WindowSlot::from_slot(&slot, TimeDelta::new(runtime)).unwrap();
            ja.push(Alternative::new(
                JobId::new(job),
                Window::new(TimePoint::ZERO, vec![ws]).unwrap(),
            ));
        }
        ja
    }

    #[test]
    fn totals_sum_choices() {
        let table = vec![alts(0, &[(2, 10), (1, 30)]), alts(1, &[(5, 8)])];
        let a = Assignment::from_indices(&table, &[1, 0]);
        assert_eq!(a.total_cost(), Money::from_credits(30 + 40));
        assert_eq!(a.total_time(), TimeDelta::new(38));
        assert_eq!(a.len(), 2);
        assert!((a.avg_time() - 19.0).abs() < 1e-12);
        assert!((a.avg_cost() - 35.0).abs() < 1e-12);
    }

    #[test]
    fn empty_assignment_is_zeroed() {
        let a = Assignment::default();
        assert!(a.is_empty());
        assert_eq!(a.total_cost(), Money::ZERO);
        assert_eq!(a.avg_time(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one choice per job")]
    fn mismatched_lengths_panic() {
        let table = vec![alts(0, &[(1, 1)])];
        let _ = Assignment::from_indices(&table, &[0, 0]);
    }

    #[test]
    fn display_mentions_each_job() {
        let table = vec![alts(3, &[(2, 10)])];
        let a = Assignment::from_indices(&table, &[0]);
        assert!(format!("{a}").contains("job3"));
    }
}
