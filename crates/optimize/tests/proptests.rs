//! Property tests: the DP solvers agree with brute force and the Pareto
//! sweep on random alternative tables.

use ecosched_core::{
    Alternative, JobAlternatives, JobId, Money, NodeId, Perf, Price, Slot, SlotId, Span, TimeDelta,
    TimePoint, Window, WindowSlot,
};
use ecosched_optimize::{
    brute, max_cost_under_time, min_cost_under_time, min_time_under_budget, time_quota, vo_budget,
    ParetoFrontier,
};
use proptest::prelude::*;

/// Builds an alternative with exact integer-credit cost and tick time.
fn alternative(job: u32, cost_credits: i64, time: i64) -> Alternative {
    let length_slot = Slot::new(
        SlotId::new(0),
        NodeId::new(0),
        Perf::UNIT,
        Price::ZERO,
        Span::new(TimePoint::ZERO, TimePoint::new(1_000_000)).unwrap(),
    )
    .unwrap();
    let cost_slot = Slot::new(
        SlotId::new(1),
        NodeId::new(1),
        Perf::UNIT,
        Price::from_credits(cost_credits),
        Span::new(TimePoint::ZERO, TimePoint::new(1_000_000)).unwrap(),
    )
    .unwrap();
    let window = Window::new(
        TimePoint::ZERO,
        vec![
            WindowSlot::from_slot(&length_slot, TimeDelta::new(time)).unwrap(),
            WindowSlot::from_slot(&cost_slot, TimeDelta::new(1)).unwrap(),
        ],
    )
    .unwrap();
    Alternative::new(JobId::new(job), window)
}

/// Strategy: a random alternatives table (2–4 jobs, 1–5 alternatives each,
/// integer costs so quantization at 1 credit is exact).
fn table_strategy() -> impl Strategy<Value = Vec<JobAlternatives>> {
    prop::collection::vec(prop::collection::vec((1i64..30, 2i64..80), 1..6), 2..5).prop_map(
        |jobs| {
            jobs.into_iter()
                .enumerate()
                .map(|(i, specs)| {
                    let mut ja = JobAlternatives::new(JobId::new(i as u32));
                    for (cost, time) in specs {
                        ja.push(alternative(i as u32, cost, time));
                    }
                    ja
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dp_matches_brute_min_cost(table in table_strategy(), quota in 10i64..300) {
        let quota = TimeDelta::new(quota);
        match (min_cost_under_time(&table, quota), brute::min_cost_under_time_brute(&table, quota)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.total_cost(), b.total_cost());
                prop_assert!(a.total_time() <= quota);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "feasibility disagrees: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn dp_matches_brute_max_cost(table in table_strategy(), quota in 10i64..300) {
        let quota = TimeDelta::new(quota);
        match (max_cost_under_time(&table, quota), brute::max_cost_under_time_brute(&table, quota)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.total_cost(), b.total_cost()),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "feasibility disagrees: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn dp_matches_brute_min_time(table in table_strategy(), budget in 5i64..120) {
        // Costs are whole credits, so a 1-credit resolution is lossless and
        // the quantized DP must match the exact brute force.
        let budget = Money::from_credits(budget);
        let res = Money::from_credits(1);
        match (
            min_time_under_budget(&table, budget, res),
            brute::min_time_under_budget_brute(&table, budget),
        ) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.total_time(), b.total_time());
                prop_assert!(a.total_cost() <= budget);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "feasibility disagrees: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn pareto_matches_dp(table in table_strategy(), quota in 10i64..300, budget in 5i64..120) {
        let frontier = ParetoFrontier::new(&table).unwrap();
        let quota = TimeDelta::new(quota);
        let budget = Money::from_credits(budget);

        match (frontier.min_cost_under_time(quota), min_cost_under_time(&table, quota)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.total_cost(), b.total_cost()),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "cost feasibility disagrees: {:?} vs {:?}", a, b),
        }
        match (
            frontier.min_time_under_budget(budget),
            min_time_under_budget(&table, budget, Money::from_credits(1)),
        ) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.total_time(), b.total_time()),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "time feasibility disagrees: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn vo_limits_are_consistent(table in table_strategy()) {
        let quota = time_quota(&table);
        prop_assert!(quota >= TimeDelta::ZERO);
        if let Ok(budget) = vo_budget(&table) {
            // The income-maximal assignment within T* also bounds any
            // feasible min-cost assignment.
            let min_cost = min_cost_under_time(&table, quota).unwrap();
            prop_assert!(min_cost.total_cost() <= budget);
            // And the budget must admit at least one time-minimization run.
            let a = min_time_under_budget(&table, budget, Money::from_credits(1)).unwrap();
            prop_assert!(a.total_cost() <= budget);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantized_dp_respects_its_error_bound(
        table in table_strategy(),
        budget in 20i64..150,
        res_credits in 2i64..8,
    ) {
        // The quantized DP rounds each alternative's cost *up* to the
        // resolution r, so (a) its result is always truly within budget,
        // and (b) whenever the exact problem is feasible at B − n·r, the
        // quantized one is feasible at B and no worse than that shrunken
        // exact optimum.
        let budget = Money::from_credits(budget);
        let resolution = Money::from_credits(res_credits);
        let n = table.len() as i64;
        let dp = min_time_under_budget(&table, budget, resolution);
        if let Ok(a) = &dp {
            prop_assert!(a.total_cost() <= budget, "quantized result over budget");
        }
        let shrunken = budget - Money::from_credits(res_credits * n);
        if shrunken > Money::ZERO {
            if let Ok(exact) = brute::min_time_under_budget_brute(&table, shrunken) {
                let dp = dp.expect("feasible at B − n·r implies quantized-feasible at B");
                prop_assert!(
                    dp.total_time() <= exact.total_time(),
                    "quantized time {} worse than shrunken-exact {}",
                    dp.total_time(),
                    exact.total_time()
                );
            }
        }
    }
}
