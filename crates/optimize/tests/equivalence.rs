//! Differential-oracle harness for the incremental combination optimizer.
//!
//! Random batches are put through random mutation sequences — add job,
//! drop job, revoke an alternative, repair (replace) an alternative, and
//! shift the `B*`/`T*` limits — while one [`IncrementalOptimizer`] carries
//! its caches across every step. After each step all three DP criteria and
//! both Pareto queries must return *byte-identical* results (assignments,
//! `T(s̄)`, `C(s̄)`, and errors) to the retained from-scratch `*_naive`
//! drivers, and equal objectives to the exhaustive `brute` oracle on small
//! (≤ 6 job) instances.
//!
//! Run with `PROPTEST_CASES=512` in CI's failure-injection job.

use ecosched_core::{
    Alternative, JobAlternatives, JobId, Money, NodeId, Perf, Price, Slot, SlotId, Span, TimeDelta,
    TimePoint, Window, WindowSlot,
};
use ecosched_optimize::{
    brute, max_cost_under_time_naive, min_cost_under_time_naive, min_time_under_budget_naive,
    IncrementalOptimizer, ParetoFrontier,
};
use proptest::prelude::*;

/// Builds an alternative with exact integer-credit cost and tick time.
fn alternative(job: u32, cost_credits: i64, time: i64) -> Alternative {
    let length_slot = Slot::new(
        SlotId::new(0),
        NodeId::new(0),
        Perf::UNIT,
        Price::ZERO,
        Span::new(TimePoint::ZERO, TimePoint::new(1_000_000)).unwrap(),
    )
    .unwrap();
    let cost_slot = Slot::new(
        SlotId::new(1),
        NodeId::new(1),
        Perf::UNIT,
        Price::from_credits(cost_credits),
        Span::new(TimePoint::ZERO, TimePoint::new(1_000_000)).unwrap(),
    )
    .unwrap();
    let window = Window::new(
        TimePoint::ZERO,
        vec![
            WindowSlot::from_slot(&length_slot, TimeDelta::new(time)).unwrap(),
            WindowSlot::from_slot(&cost_slot, TimeDelta::new(1)).unwrap(),
        ],
    )
    .unwrap();
    Alternative::new(JobId::new(job), window)
}

/// Materializes `(cost, time)` specs as a positional alternatives table.
fn build_table(specs: &[Vec<(i64, i64)>]) -> Vec<JobAlternatives> {
    specs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let mut ja = JobAlternatives::new(JobId::new(i as u32));
            for &(cost, time) in job {
                ja.push(alternative(i as u32, cost, time));
            }
            ja
        })
        .collect()
}

const MAX_JOBS: usize = 7;

/// One mutation step: opcode, two deferred picks, a fresh `(cost, time)`
/// pair, and this step's `T*`/`B*` limits.
type Step = (
    u8,
    prop::sample::Index,
    prop::sample::Index,
    (i64, i64),
    i64,
    i64,
);

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (
            0u8..4,
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
            (1i64..30, 2i64..60),
            10i64..260,
            5i64..120,
        ),
        1..10,
    )
}

fn initial_strategy() -> impl Strategy<Value = Vec<Vec<(i64, i64)>>> {
    prop::collection::vec(prop::collection::vec((1i64..30, 2i64..60), 1..5), 1..7)
}

/// Applies one mutation to the spec table. Jobs always keep ≥ 1
/// alternative and the batch keeps ≥ 1 job, so every intermediate table is
/// well-formed (error-path equivalence has its own dedicated coverage).
fn apply_step(
    specs: &mut Vec<Vec<(i64, i64)>>,
    op: u8,
    pick_job: prop::sample::Index,
    pick_alt: prop::sample::Index,
    cost: i64,
    time: i64,
) {
    match op {
        // Add a job (1–2 alternatives) at a random position.
        0 => {
            if specs.len() < MAX_JOBS {
                let at = pick_job.index(specs.len() + 1);
                let mut job = vec![(cost, time)];
                if pick_alt.index(2) == 1 {
                    job.push((31 - cost, 62 - time));
                }
                specs.insert(at, job);
            }
        }
        // Drop a job.
        1 => {
            if specs.len() > 1 {
                let at = pick_job.index(specs.len());
                specs.remove(at);
            }
        }
        // Revoke one alternative.
        2 => {
            let job = pick_job.index(specs.len());
            if specs[job].len() > 1 {
                let alt = pick_alt.index(specs[job].len());
                specs[job].remove(alt);
            }
        }
        // Repair: replace one alternative with a fresh window.
        _ => {
            let job = pick_job.index(specs.len());
            let alt = pick_alt.index(specs[job].len());
            specs[job][alt] = (cost, time);
        }
    }
}

/// Asserts every incremental solver byte-identical to its naive oracle at
/// these limits, and objective-equal to brute force when small enough.
fn assert_solvers_agree(
    opt: &mut IncrementalOptimizer,
    table: &[JobAlternatives],
    quota: TimeDelta,
    budget: Money,
) {
    let resolution = Money::from_credits(1);

    let min_cost = opt.min_cost_under_time(table, quota);
    assert_eq!(
        min_cost,
        min_cost_under_time_naive(table, quota),
        "min_cost_under_time diverged from naive at quota {quota}"
    );
    let max_cost = opt.max_cost_under_time(table, quota);
    assert_eq!(
        max_cost,
        max_cost_under_time_naive(table, quota),
        "max_cost_under_time diverged from naive at quota {quota}"
    );
    let min_time = opt.min_time_under_budget(table, budget, resolution);
    assert_eq!(
        min_time,
        min_time_under_budget_naive(table, budget, resolution),
        "min_time_under_budget diverged from naive at budget {budget}"
    );

    let naive_frontier = ParetoFrontier::new(table).expect("mutated tables stay well-formed");
    assert_eq!(
        opt.pareto_min_cost_under_time(table, quota),
        naive_frontier.min_cost_under_time(quota),
        "cached Pareto min-cost diverged at quota {quota}"
    );
    assert_eq!(
        opt.pareto_min_time_under_budget(table, budget),
        naive_frontier.min_time_under_budget(budget),
        "cached Pareto min-time diverged at budget {budget}"
    );

    // The exhaustive oracle reconstructs ties in a different order, so
    // compare objectives and feasibility, not choices.
    let combinations: usize = table.iter().map(JobAlternatives::len).product();
    if table.len() <= 6 && combinations <= 20_000 {
        match (&min_cost, brute::min_cost_under_time_brute(table, quota)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.total_cost(), b.total_cost(), "brute min-cost objective");
                assert!(a.total_time() <= quota);
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("min-cost feasibility disagrees with brute: {a:?} vs {b:?}"),
        }
        match (&max_cost, brute::max_cost_under_time_brute(table, quota)) {
            (Ok(a), Ok(b)) => assert_eq!(a.total_cost(), b.total_cost(), "brute max-cost"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("max-cost feasibility disagrees with brute: {a:?} vs {b:?}"),
        }
        match (&min_time, brute::min_time_under_budget_brute(table, budget)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.total_time(), b.total_time(), "brute min-time objective");
                assert!(a.total_cost() <= budget);
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("min-time feasibility disagrees with brute: {a:?} vs {b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn incremental_equals_oracles_under_mutation(
        initial in initial_strategy(),
        steps in steps_strategy(),
    ) {
        let mut specs = initial;
        let mut opt = IncrementalOptimizer::new();
        let table = build_table(&specs);
        assert_solvers_agree(&mut opt, &table, TimeDelta::new(120), Money::from_credits(40));
        for (op, pick_job, pick_alt, (cost, time), quota, budget) in steps {
            apply_step(&mut specs, op, pick_job, pick_alt, cost, time);
            let table = build_table(&specs);
            assert_solvers_agree(
                &mut opt,
                &table,
                TimeDelta::new(quota),
                Money::from_credits(budget),
            );
        }
    }

    #[test]
    fn limit_sweep_never_rebuilds_rows(
        initial in initial_strategy(),
        quotas in prop::collection::vec(10i64..260, 1..8),
    ) {
        let specs = initial;
        let table = build_table(&specs);
        let mut opt = IncrementalOptimizer::new();
        opt.min_cost_under_time(&table, TimeDelta::new(130)).ok();
        let rebuilt_after_first = opt.stats().rows_rebuilt;
        prop_assert_eq!(rebuilt_after_first, table.len() as u64);
        for quota in quotas {
            let quota = TimeDelta::new(quota);
            let inc = opt.min_cost_under_time(&table, quota);
            prop_assert_eq!(inc, min_cost_under_time_naive(&table, quota));
            // Shifting T* alone must never invalidate a row.
            prop_assert_eq!(opt.stats().rows_rebuilt, rebuilt_after_first);
        }
    }
}

/// The targeted stale-cache regression: revoke exactly the alternative the
/// cached run chose for a mid-sequence job, and check the re-solve patches
/// only the rows it must (the prefix up to the mutation) while matching
/// the from-scratch oracle byte-for-byte.
#[test]
fn revoking_one_alternative_patches_only_the_prefix() {
    let specs: Vec<Vec<(i64, i64)>> = vec![
        vec![(10, 10), (2, 40)],
        vec![(8, 10), (3, 30)],
        vec![(6, 15), (1, 60)],
        vec![(5, 12), (2, 33)],
        vec![(9, 8), (4, 21)],
    ];
    let table = build_table(&specs);
    let mut opt = IncrementalOptimizer::new();
    let quota = TimeDelta::new(140);

    let before = opt.min_cost_under_time(&table, quota).unwrap();
    let warm = opt.stats();
    assert_eq!(warm.rows_rebuilt, 5);
    assert_eq!(warm.rows_reused, 0);

    // Revoke job 2's chosen alternative mid-sequence.
    let picked = before.choices()[2].alternative;
    let mut mutated = specs.clone();
    mutated[2].remove(picked);
    let table2 = build_table(&mutated);

    let after = opt.min_cost_under_time(&table2, quota).unwrap();
    let delta = opt.stats().delta_since(&warm);

    // Rows 3 and 4 (the unchanged suffix) are revalidated and reused; rows
    // 0..=2 are rebuilt. Nothing else.
    assert_eq!(delta.rows_rebuilt, 3, "only the prefix may be recomputed");
    assert_eq!(delta.rows_reused, 2, "the unchanged suffix must survive");

    // The patched solve is byte-identical to a from-scratch one…
    assert_eq!(after, min_cost_under_time_naive(&table2, quota).unwrap());
    // …and job 2 now holds its one surviving alternative, not the revoked
    // one (a stale cached row would have resurrected the old choice).
    let surviving = mutated[2][0];
    let choice = after.choices()[2];
    assert_eq!(choice.cost, Money::from_credits(surviving.0));
    assert_eq!(choice.time, TimeDelta::new(surviving.1));
    let revoked = specs[2][picked];
    assert_ne!(
        (choice.cost, choice.time),
        (Money::from_credits(revoked.0), TimeDelta::new(revoked.1))
    );
}

/// Error paths must match the oracle too: a job whose alternatives are all
/// revoked turns every solver into the same `NoAlternatives` error without
/// poisoning the cache for later, repaired tables.
#[test]
fn revoke_to_empty_matches_oracle_errors_and_recovers() {
    let mut specs: Vec<Vec<(i64, i64)>> = vec![vec![(4, 20), (2, 45)], vec![(6, 12)]];
    let mut opt = IncrementalOptimizer::new();
    let quota = TimeDelta::new(80);

    let table = build_table(&specs);
    assert_eq!(
        opt.min_cost_under_time(&table, quota),
        min_cost_under_time_naive(&table, quota)
    );

    // Revoke job 1's only alternative: malformed table, identical errors.
    let saved = specs[1].remove(0);
    let broken = build_table(&specs);
    assert_eq!(
        opt.min_cost_under_time(&broken, quota),
        min_cost_under_time_naive(&broken, quota)
    );
    assert_eq!(
        opt.pareto_min_cost_under_time(&broken, quota).unwrap_err(),
        ParetoFrontier::new(&broken).unwrap_err()
    );

    // Repair the job: the cached path recovers and still matches.
    specs[1].push(saved);
    let repaired = build_table(&specs);
    assert_eq!(
        opt.min_cost_under_time(&repaired, quota),
        min_cost_under_time_naive(&repaired, quota)
    );
}
