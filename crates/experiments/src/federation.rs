//! The federation experiment (E18): throughput, backlog, and cross-shard
//! co-allocation frequency as the same offered load is spread over more
//! scheduling domains.
//!
//! The paper schedules one virtual organisation against one slot market.
//! The federation layer asks the multi-VO question: S shard engines each
//! publish their own market, a superscheduler routes one shared Poisson
//! stream across them (cheapest-feasible-window probes here, so wide
//! jobs that fit no single shard can trigger two-phase cross-shard
//! co-allocation), and the merged `(time, seq, shard)` event log keeps
//! the whole federation deterministic. The sweep varies shard count ×
//! arrival intensity at a fixed total market size, so it isolates the
//! cost of partitioning: the same nodes, the same stream, only the
//! administrative boundaries move.

use ecosched_engine::{ArrivalConfig, EngineConfig};
use ecosched_federation::{Federation, FederationConfig, FederationReport, RoutePolicy};
use ecosched_select::SlotSelector;
use ecosched_sim::IntRange;

use crate::online::{engine_config, jobs_for_gap, OnlineConfig};
use crate::report::{f2, Table};

/// Shard counts the E18 sweep covers.
pub const FEDERATION_SHARDS: [u32; 4] = [1, 2, 4, 8];

/// Mean inter-arrival gaps (ticks) the E18 sweep covers, calm to busy.
pub const FEDERATION_GAPS: [f64; 3] = [10.0, 5.0, 2.5];

/// One labelled cell of the federation sweep.
#[derive(Debug, Clone)]
pub struct FederationPoint {
    /// Shard engines in the federation.
    pub shards: u32,
    /// Mean inter-arrival gap of the offered stream, in ticks.
    pub mean_gap: f64,
    /// The aggregate federation report.
    pub report: FederationReport,
}

/// The base single-engine scenario a federation cell shards: the E15
/// arrival model at the given gap, with the job count scaled so the
/// stream spans the horizon at every intensity, and the per-cycle slot
/// market divided by the shard count so the *total* market is the same
/// in every cell. At `shards == 1` the market is the paper's full
/// `[120, 150]` slots — the byte-identity theorem compares against this
/// configuration. At `shards == 8` each shard publishes an eighth of it,
/// which is what makes partitioning visible: wide jobs that fit the
/// whole market no longer fit any one shard, so routing falls through
/// to two-phase cross-shard co-allocation.
///
/// One deliberate deviation from the paper's Sec. 5 generator: jobs are
/// wider (`[1, 20]` nodes instead of `[1, 6]`) so the widest jobs
/// exceed an eighth-sized shard's *entire* per-cycle market (`[15, 18]`
/// slots) while still fitting the undivided one — without wide jobs the
/// cross-shard question is vacuous, because every job that fits the
/// whole market also fits every shard.
#[must_use]
pub fn base_config(config: &OnlineConfig, shards: u32, mean_gap: f64) -> EngineConfig {
    let scaled = OnlineConfig {
        mean_interarrival: mean_gap,
        jobs: jobs_for_gap(config, mean_gap),
        ..config.clone()
    };
    let mut cfg = engine_config(&scaled, false);
    let split = i64::from(shards.max(1));
    cfg.slot_gen.slot_count = IntRange::new(
        (cfg.slot_gen.slot_count.lo / split).max(1),
        (cfg.slot_gen.slot_count.hi / split).max(1),
    );
    if let ArrivalConfig::Poisson { job_gen, .. } = &mut cfg.arrivals {
        job_gen.nodes = IntRange::new(1, 20);
    }
    cfg
}

/// The federation configuration of one sweep cell: cheapest-probe
/// routing with cross-shard co-allocation enabled — the configuration
/// where every layer of the subsystem (probing, routing, two-phase
/// reserve/commit) is exercised.
#[must_use]
pub fn fed_config(config: &OnlineConfig, shards: u32, mean_gap: f64) -> FederationConfig {
    FederationConfig {
        route: RoutePolicy::CheapestProbe,
        cross_shard: shards > 1,
        // The default 4 rounds models an impatient superscheduler; the
        // sweep's markets jitter slot starts independently per shard, so
        // the alignment fixed point needs a longer walk to find a start
        // every shard can agree on.
        max_align_rounds: 32,
        // Independently jittered markets almost never publish slots at
        // exactly equal ticks, so grant the co-allocator half a cycle of
        // launch slack (parts reserved early idle until the last one is
        // up) — without it the alignment walk overshoots the thin
        // future-start supply and nearly every attempt dies infeasible.
        align_tolerance: EngineConfig::default().cycle_length / 2,
        ..FederationConfig::new(base_config(config, shards, mean_gap), shards)
    }
}

/// Runs one federation cell.
///
/// # Panics
///
/// On an invalid configuration or a shard failure — experiment
/// configurations are static and valid by construction.
#[must_use]
pub fn run_cell<S: SlotSelector + Copy>(
    config: &OnlineConfig,
    selector: S,
    shards: u32,
    mean_gap: f64,
) -> FederationPoint {
    let federation =
        Federation::new(fed_config(config, shards, mean_gap), selector).expect("valid config");
    let run = federation
        .run(config.seed)
        .expect("federated run must not fail");
    FederationPoint {
        shards,
        mean_gap,
        report: run.report,
    }
}

/// Runs the full sweep: every shard count × every arrival gap, one
/// seeded federated run each, all on the same seed.
#[must_use]
pub fn run_federation_sweep<S: SlotSelector + Copy>(
    config: &OnlineConfig,
    selector: S,
    shard_counts: &[u32],
    gaps: &[f64],
) -> Vec<FederationPoint> {
    let mut points = Vec::new();
    for &shards in shard_counts {
        for &gap in gaps {
            points.push(run_cell(config, selector, shards, gap));
        }
    }
    points
}

/// The virtual-time horizon of one cell, in ticks.
fn horizon_ticks(config: &OnlineConfig) -> f64 {
    let cfg = EngineConfig::default();
    (f64::from(config.cycles.max(1) - 1) * cfg.cycle_length as f64).max(1.0)
}

/// Renders the E18 table: one row per cell with throughput (completions
/// per 100 ticks of horizon), end-of-run backlog, and cross-shard
/// placement frequency.
#[must_use]
pub fn federation_table(config: &OnlineConfig, points: &[FederationPoint]) -> Table {
    let mut table = Table::new(&[
        "shards",
        "gap",
        "offered",
        "completed",
        "thpt/100t",
        "backlog",
        "xshard",
        "xshard %",
        "fallbacks",
        "probes",
        "merged hash",
    ]);
    let horizon = horizon_ticks(config);
    for p in points {
        let offered = p.report.jobs_offered;
        let xshard = p.report.routing.cross_shard_committed;
        table.row(&[
            p.shards.to_string(),
            f2(p.mean_gap),
            offered.to_string(),
            p.report.jobs_completed.to_string(),
            f2(p.report.jobs_completed as f64 / horizon * 100.0),
            p.report.backlog.to_string(),
            xshard.to_string(),
            f2(if offered > 0 {
                xshard as f64 / offered as f64 * 100.0
            } else {
                0.0
            }),
            p.report.routing.fallback_submits.to_string(),
            p.report.routing.probes.to_string(),
            p.report.merged_log_hash.clone(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_select::Amp;

    fn small() -> OnlineConfig {
        OnlineConfig {
            cycles: 6,
            jobs: 24,
            ..OnlineConfig::default()
        }
    }

    #[test]
    fn sweep_cells_are_reproducible() {
        let config = small();
        let a = run_cell(&config, Amp::new(), 4, 5.0);
        let b = run_cell(&config, Amp::new(), 4, 5.0);
        assert_eq!(a.report.merged_log_hash, b.report.merged_log_hash);
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert!(a.report.jobs_offered > 0);
    }

    #[test]
    fn single_shard_cell_matches_the_plain_engine() {
        let config = small();
        let point = run_cell(&config, Amp::new(), 1, 10.0);
        let engine = ecosched_engine::Engine::new(base_config(&config, 1, 10.0), Amp::new())
            .expect("config");
        let run = engine.run(config.seed).expect("run");
        let shard = &point.report.shards[0];
        assert_eq!(shard.to_json(), run.report.to_json());
        assert_eq!(
            point.report.merged_events, run.report.event_count,
            "merged log covers exactly the engine's events"
        );
    }

    #[test]
    fn table_has_one_row_per_cell() {
        let config = small();
        let points = run_federation_sweep(&config, Amp::new(), &[1, 2], &[10.0]);
        let table = federation_table(&config, &points);
        assert_eq!(table.render().lines().count(), 2 + 2);
    }
}
