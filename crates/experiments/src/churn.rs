//! The churn sweep (experiment E14): ALP vs AMP re-run under injected slot
//! revocation.
//!
//! The paper's Sec. 5 study compares the algorithms on a *static*
//! environment. This extension withdraws each published slot with
//! probability `p` after combination optimization and lets the three-tier
//! repair pass (failover → bounded repair search → postpone) recover,
//! re-asking the paper's ALP-vs-AMP question under churn: AMP's larger
//! alternative sets should buy it more failover headroom.

use ecosched_select::{Alp, Amp, SlotSelector};
use ecosched_sim::{
    IterationConfig, JobGenConfig, Metascheduler, MetaschedulerReport, RepairPolicy, RepairStats,
    RevocationConfig, SlotGenConfig,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f2, Table};

/// Configuration of the churn sweep.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Per-slot revocation probabilities to sweep (0.0 = the paper's
    /// static baseline).
    pub levels: Vec<f64>,
    /// Independent seeded runs per level.
    pub runs: u64,
    /// Metascheduler cycles per run.
    pub cycles: usize,
    /// The repair attempt budget.
    pub policy: RepairPolicy,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            levels: vec![0.0, 0.05, 0.10, 0.15],
            runs: 40,
            cycles: 8,
            policy: RepairPolicy::default(),
        }
    }
}

/// One algorithm's aggregated outcome at one churn level.
#[derive(Debug, Clone, Default)]
pub struct AlgoChurnOutcome {
    /// Jobs holding a window at cycle end, over all runs and cycles.
    pub scheduled: u64,
    /// Of those, jobs whose planned window survived.
    pub scheduled_intact: u64,
    /// Jobs recovered by adopting a surviving alternative.
    pub failed_over: u64,
    /// Jobs recovered by a bounded repair search.
    pub repaired: u64,
    /// Cycle-end postponements (jobs re-queued to a later cycle).
    pub postponed: u64,
    /// Lease-weighted mean per-job execution time.
    pub avg_time: f64,
    /// Lease-weighted mean per-job execution cost.
    pub avg_cost: f64,
    /// Fault-and-repair totals.
    pub repair: RepairStats,
}

impl AlgoChurnOutcome {
    /// Fraction of broken leases that recovered without postponing
    /// (1.0 when nothing broke).
    #[must_use]
    pub fn recovery_rate(&self) -> f64 {
        if self.repair.leases_broken == 0 {
            1.0
        } else {
            self.repair.recovered() as f64 / self.repair.leases_broken as f64
        }
    }
}

/// One churn level's paired outcome.
#[derive(Debug, Clone)]
pub struct ChurnPoint {
    /// The per-slot revocation probability.
    pub per_slot: f64,
    /// ALP under this churn level.
    pub alp: AlgoChurnOutcome,
    /// AMP under this churn level.
    pub amp: AlgoChurnOutcome,
}

fn aggregate(reports: &[MetaschedulerReport]) -> AlgoChurnOutcome {
    let mut out = AlgoChurnOutcome::default();
    let (mut time_sum, mut cost_sum) = (0.0, 0.0);
    for report in reports {
        for c in &report.cycles {
            out.scheduled += c.scheduled as u64;
            out.scheduled_intact += c.scheduled_intact as u64;
            out.failed_over += c.failed_over as u64;
            out.repaired += c.repaired as u64;
            out.postponed += c.postponed as u64;
            time_sum += c.avg_time * c.scheduled as f64;
            cost_sum += c.avg_cost * c.scheduled as f64;
            out.repair.merge(&c.repair);
        }
    }
    if out.scheduled > 0 {
        out.avg_time = time_sum / out.scheduled as f64;
        out.avg_cost = cost_sum / out.scheduled as f64;
    }
    out
}

fn run_algo(
    config: &ChurnConfig,
    per_slot: f64,
    selector: impl SlotSelector + Copy,
) -> AlgoChurnOutcome {
    let meta = Metascheduler::new(
        SlotGenConfig::default(),
        JobGenConfig::default(),
        IterationConfig::default(),
    )
    .with_revocation(RevocationConfig::per_slot(per_slot))
    .with_repair_policy(config.policy);
    let reports: Vec<MetaschedulerReport> = (0..config.runs)
        .map(|seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_0000 + seed);
            meta.run(selector, config.cycles, &mut rng)
                .expect("simulation must not fail")
        })
        .collect();
    aggregate(&reports)
}

/// Runs the sweep: both algorithms at every churn level, on identical
/// seeds.
#[must_use]
pub fn run_churn_sweep(config: &ChurnConfig) -> Vec<ChurnPoint> {
    config
        .levels
        .iter()
        .map(|&per_slot| ChurnPoint {
            per_slot,
            alp: run_algo(config, per_slot, Alp::new()),
            amp: run_algo(config, per_slot, Amp::new()),
        })
        .collect()
}

/// Renders the sweep as a table (two rows per churn level).
#[must_use]
pub fn churn_table(points: &[ChurnPoint]) -> Table {
    let mut table = Table::new(&[
        "per_slot",
        "algo",
        "scheduled",
        "intact",
        "failed_over",
        "repaired",
        "postponed",
        "recovery",
        "avg_time",
        "avg_cost",
    ]);
    for p in points {
        for (name, o) in [("ALP", &p.alp), ("AMP", &p.amp)] {
            table.row(&[
                format!("{:.2}", p.per_slot),
                name.to_string(),
                o.scheduled.to_string(),
                o.scheduled_intact.to_string(),
                o.failed_over.to_string(),
                o.repaired.to_string(),
                o.postponed.to_string(),
                f2(o.recovery_rate()),
                f2(o.avg_time),
                f2(o.avg_cost),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChurnConfig {
        ChurnConfig {
            levels: vec![0.0, 0.15],
            runs: 4,
            cycles: 4,
            policy: RepairPolicy::default(),
        }
    }

    #[test]
    fn zero_churn_is_the_static_baseline() {
        let points = run_churn_sweep(&small());
        let base = &points[0];
        assert_eq!(base.per_slot, 0.0);
        for o in [&base.alp, &base.amp] {
            assert_eq!(o.repair.revocations_injected, 0);
            assert_eq!(o.scheduled, o.scheduled_intact);
            assert!(o.scheduled > 0);
        }
    }

    #[test]
    fn churn_breaks_and_repairs_leases() {
        let points = run_churn_sweep(&small());
        let churned = &points[1];
        for o in [&churned.alp, &churned.amp] {
            assert!(o.repair.revocations_injected > 0);
            assert_eq!(
                o.repair.revocations_injected,
                o.repair.revocations_breaking + o.repair.revocations_vacant_only
            );
            assert_eq!(
                o.repair.leases_broken,
                o.repair.recovered()
                    + o.repair.postponed_stale
                    + o.repair.postponed_budget_exhausted
            );
        }
        // Somebody must have needed recovery at p = 0.15.
        assert!(churned.alp.repair.leases_broken + churned.amp.repair.leases_broken > 0);
    }

    #[test]
    fn table_has_two_rows_per_level() {
        let points = run_churn_sweep(&small());
        let table = churn_table(&points);
        assert_eq!(table.render().lines().count(), 2 + 2 * points.len());
    }
}
