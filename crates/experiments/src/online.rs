//! The online experiment (E15): ALP vs AMP under continuous load on the
//! discrete-event engine, against the legacy batch-cycle metascheduler.
//!
//! The paper schedules a static batch against a static slot market. The
//! engine replays the same pipeline online: jobs arrive over a Poisson
//! stream, slot batches are published per cycle, leases complete on their
//! own clock and return unused capacity, and (in the churn scenario)
//! mid-cycle revocation strikes break running leases. This re-asks the
//! ALP-vs-AMP question with time in the loop — wait, bounded slowdown and
//! utilization now exist as metrics — and contrasts both with the legacy
//! closed-batch cycles of [`ecosched_sim::Metascheduler`].

use ecosched_engine::{ArrivalConfig, Engine, EngineConfig, EngineReport};
use ecosched_select::{Alp, Amp, SlotSelector};
use ecosched_sim::{IterationConfig, JobGenConfig, Metascheduler, RevocationConfig, SlotGenConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f2, Table};

/// Configuration of the online experiment.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// The engine seed (the run is a pure function of config and seed).
    pub seed: u64,
    /// Scheduling cycles per run.
    pub cycles: u32,
    /// Jobs in the Poisson arrival stream.
    pub jobs: u32,
    /// Mean inter-arrival gap in ticks.
    pub mean_interarrival: f64,
    /// Per-slot revocation probability for the churn scenario.
    pub churn: f64,
    /// Coalesce adjacent vacant slots at each cycle commit (the engine
    /// default); `false` runs the fragmentation A/B baseline.
    pub coalesce: bool,
    /// Worker threads for each cycle's scheduling iteration. Execution
    /// knob only: hashes and reports are identical at every thread count.
    pub threads: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            seed: 42,
            cycles: 12,
            jobs: 60,
            mean_interarrival: 10.0,
            churn: 0.05,
            coalesce: true,
            threads: 1,
        }
    }
}

/// One engine run's labelled outcome.
#[derive(Debug, Clone)]
pub struct OnlinePoint {
    /// `"calm"` or `"churn"`.
    pub scenario: &'static str,
    /// `"ALP"` or `"AMP"`.
    pub algo: &'static str,
    /// The engine's aggregate report.
    pub report: EngineReport,
}

/// Builds the engine configuration for one scenario of the experiment.
#[must_use]
pub fn engine_config(config: &OnlineConfig, churn: bool) -> EngineConfig {
    EngineConfig {
        cycles: config.cycles,
        revocation: if churn {
            RevocationConfig::per_slot(config.churn)
        } else {
            RevocationConfig::none()
        },
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: config.mean_interarrival,
            jobs: config.jobs,
            job_gen: JobGenConfig::default(),
        },
        coalesce: config.coalesce,
        threads: config.threads.max(1),
        ..EngineConfig::default()
    }
}

fn run_one(
    config: &OnlineConfig,
    scenario: &'static str,
    algo: &'static str,
    selector: impl SlotSelector + Copy,
) -> OnlinePoint {
    let engine = Engine::new(engine_config(config, scenario == "churn"), selector)
        .expect("experiment configuration is valid");
    let run = engine.run(config.seed).expect("engine run must not fail");
    OnlinePoint {
        scenario,
        algo,
        report: run.report,
    }
}

/// Runs the full grid: (calm, churn) × (ALP, AMP), one seeded engine run
/// each, all on the same seed.
#[must_use]
pub fn run_online(config: &OnlineConfig) -> Vec<OnlinePoint> {
    vec![
        run_one(config, "calm", "ALP", Alp::new()),
        run_one(config, "calm", "AMP", Amp::new()),
        run_one(config, "churn", "ALP", Alp::new()),
        run_one(config, "churn", "AMP", Amp::new()),
    ]
}

/// One legacy batch-cycle run's outcome, for contrast with the online
/// rows (the closed batch has no clock, so wait/slowdown/utilization do
/// not exist there).
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// `"ALP"` or `"AMP"`.
    pub algo: &'static str,
    /// Jobs holding a window at cycle end, summed over cycles.
    pub scheduled: u64,
    /// Cycle-end postponements.
    pub postponed: u64,
    /// Lease-weighted mean per-job execution time.
    pub avg_time: f64,
    /// Lease-weighted mean per-job execution cost.
    pub avg_cost: f64,
}

fn run_batch(
    config: &OnlineConfig,
    algo: &'static str,
    selector: impl SlotSelector + Copy,
) -> BatchPoint {
    let meta = Metascheduler::new(
        SlotGenConfig::default(),
        JobGenConfig::default(),
        IterationConfig::default(),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let report = meta
        .run(selector, config.cycles as usize, &mut rng)
        .expect("batch simulation must not fail");
    let mut out = BatchPoint {
        algo,
        scheduled: 0,
        postponed: 0,
        avg_time: 0.0,
        avg_cost: 0.0,
    };
    let (mut time_sum, mut cost_sum) = (0.0, 0.0);
    for c in &report.cycles {
        out.scheduled += c.scheduled as u64;
        out.postponed += c.postponed as u64;
        time_sum += c.avg_time * c.scheduled as f64;
        cost_sum += c.avg_cost * c.scheduled as f64;
    }
    if out.scheduled > 0 {
        out.avg_time = time_sum / out.scheduled as f64;
        out.avg_cost = cost_sum / out.scheduled as f64;
    }
    out
}

/// Runs the legacy batch-cycle baseline for both algorithms on the same
/// seed.
#[must_use]
pub fn run_batch_baseline(config: &OnlineConfig) -> Vec<BatchPoint> {
    vec![
        run_batch(config, "ALP", Alp::new()),
        run_batch(config, "AMP", Amp::new()),
    ]
}

/// One saturation-sweep cell: the same online pipeline at one offered
/// load, the job count scaled so the Poisson stream spans the whole
/// horizon at every gap.
#[derive(Debug, Clone)]
pub struct SaturationPoint {
    /// Mean inter-arrival gap in ticks (smaller = more offered load).
    pub mean_gap: f64,
    /// `"ALP"` or `"AMP"`.
    pub algo: &'static str,
    /// The engine's aggregate report.
    pub report: EngineReport,
}

/// The default gap ladder: a factor-of-two descent from the E15 default
/// offered load down past saturation.
pub const SATURATION_GAPS: [f64; 5] = [10.0, 5.0, 2.5, 1.25, 0.625];

/// Jobs needed for a Poisson stream at `gap` to span the run's horizon.
#[must_use]
pub fn jobs_for_gap(config: &OnlineConfig, gap: f64) -> u32 {
    let horizon = f64::from(config.cycles) * 60.0;
    ((horizon / gap.max(0.01)).ceil() as u32).max(1)
}

/// Runs the saturation sweep: for each gap in `gaps`, both algorithms on
/// the calm scenario with the job count scaled to keep the stream
/// horizon-long. The end-of-run `backlog` column locates the knee where
/// the market stops absorbing the offered load — the service daemon's
/// default admission bound (`max_backlog`) sits just above it.
#[must_use]
pub fn run_saturation(config: &OnlineConfig, gaps: &[f64]) -> Vec<SaturationPoint> {
    let mut points = Vec::new();
    for &gap in gaps {
        let cell = OnlineConfig {
            mean_interarrival: gap,
            jobs: jobs_for_gap(config, gap),
            ..config.clone()
        };
        for (algo, point) in [
            ("ALP", run_one(&cell, "calm", "ALP", Alp::new())),
            ("AMP", run_one(&cell, "calm", "AMP", Amp::new())),
        ] {
            points.push(SaturationPoint {
                mean_gap: gap,
                algo,
                report: point.report,
            });
        }
    }
    points
}

/// Renders the saturation sweep as a table.
#[must_use]
pub fn saturation_table(points: &[SaturationPoint]) -> Table {
    let mut table = Table::new(&[
        "mean_gap",
        "algo",
        "arrived",
        "scheduled",
        "completed",
        "backlog",
        "mean_wait",
        "slowdown",
        "util",
    ]);
    for p in points {
        let r = &p.report;
        table.row(&[
            f2(p.mean_gap),
            p.algo.to_string(),
            r.jobs_arrived.to_string(),
            r.jobs_scheduled.to_string(),
            r.jobs_completed.to_string(),
            r.backlog.to_string(),
            f2(r.mean_wait),
            f2(r.mean_bounded_slowdown),
            f2(r.utilization),
        ]);
    }
    table
}

/// Renders the online grid as a table.
#[must_use]
pub fn online_table(points: &[OnlinePoint]) -> Table {
    let mut table = Table::new(&[
        "scenario",
        "algo",
        "arrived",
        "scheduled",
        "completed",
        "backlog",
        "mean_wait",
        "slowdown",
        "util",
        "broken",
        "failover",
        "repaired",
        "repost",
    ]);
    for p in points {
        let r = &p.report;
        table.row(&[
            p.scenario.to_string(),
            p.algo.to_string(),
            r.jobs_arrived.to_string(),
            r.jobs_scheduled.to_string(),
            r.jobs_completed.to_string(),
            r.backlog.to_string(),
            f2(r.mean_wait),
            f2(r.mean_bounded_slowdown),
            f2(r.utilization),
            r.leases_broken.to_string(),
            r.failovers.to_string(),
            r.repairs.to_string(),
            r.repostponed.to_string(),
        ]);
    }
    table
}

/// Renders the legacy baseline as a table.
#[must_use]
pub fn batch_table(points: &[BatchPoint]) -> Table {
    let mut table = Table::new(&["algo", "scheduled", "postponed", "avg_time", "avg_cost"]);
    for p in points {
        table.row(&[
            p.algo.to_string(),
            p.scheduled.to_string(),
            p.postponed.to_string(),
            f2(p.avg_time),
            f2(p.avg_cost),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OnlineConfig {
        OnlineConfig {
            cycles: 4,
            jobs: 16,
            ..OnlineConfig::default()
        }
    }

    #[test]
    fn grid_covers_both_scenarios_and_algorithms() {
        let points = run_online(&small());
        assert_eq!(points.len(), 4);
        for p in &points {
            assert_eq!(p.report.jobs_arrived, 16);
            assert!(p.report.jobs_scheduled > 0, "{}/{}", p.scenario, p.algo);
        }
        // Churn scenarios must actually inject faults.
        assert!(points
            .iter()
            .filter(|p| p.scenario == "churn")
            .all(|p| p.report.revocations > 0));
        // Calm scenarios must not.
        assert!(points
            .iter()
            .filter(|p| p.scenario == "calm")
            .all(|p| p.report.revocations == 0));
    }

    #[test]
    fn online_runs_are_reproducible() {
        let a = run_online(&small());
        let b = run_online(&small());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.report.log_hash, y.report.log_hash);
            assert_eq!(x.report.to_json(), y.report.to_json());
        }
    }

    #[test]
    fn thread_count_leaves_hashes_and_reports_unchanged() {
        let baseline = run_online(&small());
        let threaded = run_online(&OnlineConfig {
            threads: 4,
            ..small()
        });
        for (a, b) in baseline.iter().zip(&threaded) {
            assert_eq!(
                a.report.log_hash, b.report.log_hash,
                "{}/{}",
                a.scenario, a.algo
            );
            assert_eq!(a.report.to_json(), b.report.to_json());
        }
    }

    #[test]
    fn saturation_sweep_is_deterministic_and_finds_a_knee() {
        let config = small();
        let gaps = [10.0, 1.25];
        let points = run_saturation(&config, &gaps);
        assert_eq!(points.len(), 4);
        let again = run_saturation(&config, &gaps);
        for (a, b) in points.iter().zip(&again) {
            assert_eq!(a.report.log_hash, b.report.log_hash);
        }
        for algo in ["ALP", "AMP"] {
            let find = |gap: f64| {
                points
                    .iter()
                    .find(|p| p.algo == algo && (p.mean_gap - gap).abs() < 1e-9)
                    .expect("cell present")
            };
            let calm = find(10.0);
            let hot = find(1.25);
            assert!(
                hot.report.jobs_arrived > calm.report.jobs_arrived,
                "{algo}: offered load must rise as the gap shrinks"
            );
            assert!(
                hot.report.backlog >= calm.report.backlog,
                "{algo}: past the knee the end-of-run backlog cannot shrink \
                 ({} vs {})",
                hot.report.backlog,
                calm.report.backlog
            );
        }
    }

    #[test]
    fn baseline_schedules_jobs() {
        let points = run_batch_baseline(&small());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.scheduled > 0);
        }
    }

    #[test]
    fn tables_have_one_row_per_point() {
        let config = small();
        let online = run_online(&config);
        assert_eq!(
            online_table(&online).render().lines().count(),
            2 + online.len()
        );
        let batch = run_batch_baseline(&config);
        assert_eq!(
            batch_table(&batch).render().lines().count(),
            2 + batch.len()
        );
    }
}
