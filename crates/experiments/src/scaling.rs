//! The complexity experiment (E7): ALP/AMP scale linearly with the number
//! of slots `m`, the backfill-style window search quadratically (Sec. 3's
//! `O(m)` vs `O(m²)` claim).

use std::time::Instant;

use ecosched_baseline::BackfillWindow;
use ecosched_core::{Perf, Price, ResourceRequest, TimeDelta};
use ecosched_select::{Alp, Amp, ScanStats, SlotSelector};
use ecosched_sim::{SlotGenConfig, SlotGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::Table;

/// Work and wall-time measurements for one algorithm at one list size.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlgoScaling {
    /// Slots examined by the scan (the deterministic work measure).
    pub slots_examined: u64,
    /// Wall-clock nanoseconds for the search.
    pub nanos: u128,
}

/// Measurements at one list size `m`.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Number of slots in the list.
    pub m: usize,
    /// ALP's work.
    pub alp: AlgoScaling,
    /// AMP's work.
    pub amp: AlgoScaling,
    /// The backfill window search's work.
    pub backfill: AlgoScaling,
}

fn measure(
    selector: &dyn SlotSelector,
    list: &ecosched_core::SlotList,
    request: &ResourceRequest,
) -> AlgoScaling {
    let mut stats = ScanStats::new();
    let started = Instant::now();
    let _ = selector.find_window(list, request, &mut stats);
    AlgoScaling {
        slots_examined: stats.slots_examined,
        nanos: started.elapsed().as_nanos(),
    }
}

/// Runs the scaling sweep. The request is deliberately unsatisfiable
/// (more concurrent nodes than the generated lists ever offer), so every
/// algorithm performs its worst-case full scan — the regime where the
/// complexity claim bites.
#[must_use]
pub fn run_scaling(sizes: &[usize], seed: u64) -> Vec<ScalingPoint> {
    let generator = SlotGenerator::new(SlotGenConfig::default());
    // Generated lists keep ~50–60 concurrent slots alive regardless of m
    // (gap and length distributions are m-independent), so N = 500 never
    // forms a window.
    let request = ResourceRequest::new(
        500,
        TimeDelta::new(100),
        Perf::UNIT,
        Price::from_credits(1_000_000),
    )
    .expect("request parameters are valid");

    sizes
        .iter()
        .map(|&m| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let list = generator.generate_exact(&mut rng, m);
            ScalingPoint {
                m,
                alp: measure(&Alp::new(), &list, &request),
                amp: measure(&Amp::new(), &list, &request),
                backfill: measure(&BackfillWindow::new(), &list, &request),
            }
        })
        .collect()
}

/// Renders the sweep as a table.
#[must_use]
pub fn scaling_table(points: &[ScalingPoint]) -> Table {
    let mut table = Table::new(&[
        "m",
        "alp_examined",
        "amp_examined",
        "backfill_examined",
        "alp_us",
        "amp_us",
        "backfill_us",
    ]);
    for p in points {
        table.row(&[
            p.m.to_string(),
            p.alp.slots_examined.to_string(),
            p.amp.slots_examined.to_string(),
            p.backfill.slots_examined.to_string(),
            (p.alp.nanos / 1_000).to_string(),
            (p.amp.nanos / 1_000).to_string(),
            (p.backfill.nanos / 1_000).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_vs_quadratic_examination_counts() {
        let points = run_scaling(&[200, 400, 800], 7);
        for p in &points {
            // ALP/AMP examine each slot at most once.
            assert_eq!(p.alp.slots_examined, p.m as u64);
            assert_eq!(p.amp.slots_examined, p.m as u64);
            // Backfill re-scans per anchor: strictly super-linear.
            assert!(p.backfill.slots_examined > 4 * p.m as u64);
        }
        // Doubling m doubles ALP work but ~quadruples backfill work.
        let growth_alp = points[2].alp.slots_examined as f64 / points[1].alp.slots_examined as f64;
        let growth_bf =
            points[2].backfill.slots_examined as f64 / points[1].backfill.slots_examined as f64;
        assert!((growth_alp - 2.0).abs() < 0.01);
        assert!(growth_bf > 3.0, "backfill growth {growth_bf}");
    }

    #[test]
    fn table_lists_every_size() {
        let points = run_scaling(&[100, 200], 7);
        let table = scaling_table(&points);
        let body = table.render();
        assert!(body.contains("100"));
        assert!(body.contains("200"));
    }
}
