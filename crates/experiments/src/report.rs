//! Plain-text tables and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple aligned-column table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with two decimals.
#[must_use]
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a relative difference between `ours` and a paper value as a
/// signed percentage string.
#[must_use]
pub fn pct_delta(ours: f64, paper: f64) -> String {
    if paper == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (ours - paper) / paper * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned columns: all lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new(&["x"]);
        t.row(&["plain".into()]);
        t.row(&["with,comma".into()]);
        t.row(&["with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn csv_roundtrips_to_disk() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let path = std::env::temp_dir().join("ecosched_report_test.csv");
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(pct_delta(110.0, 100.0), "+10.0%");
        assert_eq!(pct_delta(90.0, 100.0), "-10.0%");
        assert_eq!(pct_delta(1.0, 0.0), "n/a");
    }
}
