//! E8 — the DESIGN.md R1 ablation: what happens if the paper's literal
//! condition 2°b (`L(s_k) ≥ t·P(s_k)/P`, faster nodes need *longer*
//! slots) is implemented instead of the corrected etalon rule.

use ecosched_core::{Batch, SlotList};
use ecosched_select::{find_alternatives, Alp, Amp, LengthRule, SlotSelector};
use ecosched_sim::{JobGenConfig, JobGenerator, RunningStats, SlotGenConfig, SlotGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f2, Table};

/// Aggregates for one (algorithm, rule) pair.
#[derive(Debug, Clone, Default)]
pub struct RuleAggregate {
    /// Mean per-iteration average window length (job execution time).
    pub window_time: RunningStats,
    /// Mean per-iteration average window cost.
    pub window_cost: RunningStats,
    /// Total alternatives found.
    pub alternatives: u64,
    /// Iterations where every job was covered.
    pub covered_iterations: u64,
}

/// The ablation outcome: corrected vs literal, for ALP and AMP.
#[derive(Debug, Clone, Default)]
pub struct AblationOutcome {
    /// Iterations simulated.
    pub iterations: u64,
    /// ALP under the corrected rule.
    pub alp_corrected: RuleAggregate,
    /// ALP under the literal rule.
    pub alp_literal: RuleAggregate,
    /// AMP under the corrected rule.
    pub amp_corrected: RuleAggregate,
    /// AMP under the literal rule.
    pub amp_literal: RuleAggregate,
}

fn record(agg: &mut RuleAggregate, selector: &dyn SlotSelector, list: &SlotList, batch: &Batch) {
    let outcome = find_alternatives(selector, list, batch).expect("search never fails");
    agg.alternatives += outcome.alternatives.total_found() as u64;
    if outcome.alternatives.all_jobs_covered() {
        agg.covered_iterations += 1;
    }
    let mut time = 0.0f64;
    let mut cost = 0.0f64;
    let mut n = 0usize;
    for ja in outcome.alternatives.per_job() {
        for alt in ja {
            time += alt.time().ticks() as f64;
            cost += alt.cost().to_f64();
            n += 1;
        }
    }
    if n > 0 {
        agg.window_time.push(time / n as f64);
        agg.window_cost.push(cost / n as f64);
    }
}

/// Runs the ablation over `iterations` generated (list, batch) pairs.
#[must_use]
pub fn run_ablation(iterations: u64, seed_offset: u64) -> AblationOutcome {
    let slot_gen = SlotGenerator::new(SlotGenConfig::default());
    let job_gen = JobGenerator::new(JobGenConfig::default());
    let mut outcome = AblationOutcome {
        iterations,
        ..AblationOutcome::default()
    };
    for i in 0..iterations {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_offset + i);
        let list = slot_gen.generate(&mut rng);
        let batch = job_gen.generate(&mut rng);
        record(
            &mut outcome.alp_corrected,
            &Alp::with_length_rule(LengthRule::Corrected),
            &list,
            &batch,
        );
        record(
            &mut outcome.alp_literal,
            &Alp::with_length_rule(LengthRule::PaperLiteral),
            &list,
            &batch,
        );
        record(
            &mut outcome.amp_corrected,
            &Amp::with_length_rule(LengthRule::Corrected),
            &list,
            &batch,
        );
        record(
            &mut outcome.amp_literal,
            &Amp::with_length_rule(LengthRule::PaperLiteral),
            &list,
            &batch,
        );
    }
    outcome
}

/// Renders the ablation as a table.
#[must_use]
pub fn ablation_table(outcome: &AblationOutcome) -> Table {
    let mut table = Table::new(&[
        "algorithm",
        "rule",
        "avg window time",
        "avg window cost",
        "alternatives",
        "covered iters",
    ]);
    let rows: [(&str, &str, &RuleAggregate); 4] = [
        ("ALP", "corrected", &outcome.alp_corrected),
        ("ALP", "literal", &outcome.alp_literal),
        ("AMP", "corrected", &outcome.amp_corrected),
        ("AMP", "literal", &outcome.amp_literal),
    ];
    for (algo, rule, agg) in rows {
        table.row(&[
            algo.to_string(),
            rule.to_string(),
            f2(agg.window_time.mean()),
            f2(agg.window_cost.mean()),
            agg.alternatives.to_string(),
            format!("{}/{}", agg.covered_iterations, outcome.iterations),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_rule_inflates_window_times() {
        let outcome = run_ablation(40, 0);
        // Under the literal rule faster nodes are *required* to hold the
        // task longer, so realized window lengths grow and coverage drops.
        assert!(
            outcome.amp_literal.window_time.mean() > 1.2 * outcome.amp_corrected.window_time.mean(),
            "literal {} vs corrected {}",
            outcome.amp_literal.window_time.mean(),
            outcome.amp_corrected.window_time.mean()
        );
        assert!(
            outcome.amp_literal.alternatives < outcome.amp_corrected.alternatives,
            "the longer reservations must crowd out alternatives"
        );
    }

    #[test]
    fn table_has_four_rows() {
        let outcome = run_ablation(5, 0);
        assert_eq!(ablation_table(&outcome).render().lines().count(), 2 + 4);
    }
}
