//! E18 — sharded multi-VO federation: the superscheduler sweep over
//! shard count × arrival intensity.
//!
//! Usage: `exp_federation [--seed S] [--cycles C] [--smoke]
//! [--shards S --mean-gap G [--single | --snapshot-every N
//! --snapshot-path P [--kill-at-event K] | --resume P]]`.
//!
//! The default run sweeps shard count {1, 2, 4, 8} × mean arrival gap
//! {10, 5, 2.5} ticks under cheapest-probe routing with cross-shard
//! co-allocation on, printing the E18 table (throughput, end-of-run
//! backlog, cross-shard placement frequency) plus one
//! `merged_log_hash` line per cell. All output is deterministic, so CI
//! can run the binary twice and diff.
//!
//! `--smoke` runs the federation determinism contract instead of the
//! sweep and exits non-zero on any violation:
//!
//! * an S=4 cell run twice in-process must produce byte-identical
//!   merged-log hashes and report JSON;
//! * an S=1 cell must be byte-identical to the plain single engine on
//!   the same base configuration — same event log, same report.
//!
//! Crash-recovery mode runs one labelled cell (`--shards`, `--mean-gap`)
//! instead of the sweep:
//!
//! * `--single` — run it uninterrupted and print its final
//!   `merged_log_hash`/`federation_report` lines;
//! * `--snapshot-every N --snapshot-path P` — also write a federated
//!   snapshot (every shard + router state in one container) after every
//!   N-th cycle tick of shard 0;
//! * `--kill-at-event K` — simulate a crash: stop after K merged
//!   events, leaving the latest snapshot at `P`;
//! * `--resume P` — restore every shard and the router from `P`, run to
//!   completion, and print the same final lines — which, by the
//!   federation determinism contract, are byte-identical to the
//!   uninterrupted run's. CI kills a run mid-flight, resumes it, and
//!   diffs exactly these lines.
//!
//! `--metrics-dump PATH` (single-cell and resume modes) attaches a live
//! metrics recorder across the federation and its shard engines and
//! writes the final registry as JSON to `PATH` next to the printed
//! report. Observe-only: the hash and report lines are byte-identical
//! with or without it.

use std::path::{Path, PathBuf};

use ecosched_engine::{Engine, EngineIds, EngineObs, Event};
use ecosched_experiments::arg_value;
use ecosched_experiments::federation::{
    base_config, fed_config, federation_table, run_federation_sweep, FEDERATION_GAPS,
    FEDERATION_SHARDS,
};
use ecosched_experiments::online::OnlineConfig;
use ecosched_federation::{FedIds, Federation, FederationObs, FederationRun};
use ecosched_obs::{Recorder, RegistryBuilder};
use ecosched_persist::{read_federated_snapshot, write_federated_snapshot};
use ecosched_select::Amp;

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("exp_federation: {message}");
    std::process::exit(2);
}

fn print_cell(shards: u32, mean_gap: f64, run: &FederationRun) {
    println!(
        "merged_log_hash shards={shards} gap={mean_gap} hash={}",
        run.report.merged_log_hash
    );
    println!(
        "federation_report shards={shards} gap={mean_gap} {}",
        run.report.to_json()
    );
}

/// The determinism smoke: rerun identity and the S=1 byte-identity
/// theorem, both checked in-process.
fn smoke(config: &OnlineConfig) {
    let fed4 = Federation::new(fed_config(config, 4, 5.0), Amp::new())
        .unwrap_or_else(|e| fail(format!("S=4 config: {e}")));
    let first = fed4
        .run(config.seed)
        .unwrap_or_else(|e| fail(format!("S=4 run: {e}")));
    let second = fed4
        .run(config.seed)
        .unwrap_or_else(|e| fail(format!("S=4 rerun: {e}")));
    if first.report.merged_log_hash != second.report.merged_log_hash
        || first.report.to_json() != second.report.to_json()
    {
        fail("S=4 federation diverged between identically seeded runs");
    }
    println!(
        "federation_smoke shards=4 reruns=identical hash={}",
        first.report.merged_log_hash
    );

    let fed1 = Federation::new(fed_config(config, 1, 10.0), Amp::new())
        .unwrap_or_else(|e| fail(format!("S=1 config: {e}")));
    let federated = fed1
        .run(config.seed)
        .unwrap_or_else(|e| fail(format!("S=1 run: {e}")));
    let engine = Engine::new(base_config(config, 1, 10.0), Amp::new())
        .unwrap_or_else(|e| fail(format!("engine config: {e}")));
    let plain = engine
        .run(config.seed)
        .unwrap_or_else(|e| fail(format!("engine run: {e}")));
    let shard = &federated.shards[0];
    if shard.log.to_json() != plain.log.to_json() {
        fail("S=1 shard event log differs from the plain engine's");
    }
    if shard.report.to_json() != plain.report.to_json() {
        fail("S=1 shard report differs from the plain engine's");
    }
    println!(
        "federation_smoke shards=1 engine=byte-identical events={} hash={}",
        plain.report.event_count, federated.report.merged_log_hash
    );
}

/// Runs one cell, optionally snapshotting every N-th shard-0 cycle tick
/// and optionally dying (like a crash would) after `kill_at` merged
/// events.
fn single_flow(
    fed: &Federation<Amp>,
    shards: u32,
    mean_gap: f64,
    seed: u64,
    snapshot_every: u32,
    snapshot_path: Option<&Path>,
    kill_at: Option<u64>,
) {
    let mut state = fed.start(seed);
    let mut snapshots = 0u32;
    loop {
        if let Some(k) = kill_at {
            if state.merged().len() as u64 >= k {
                let path = snapshot_path
                    .unwrap_or_else(|| fail("--kill-at-event requires --snapshot-path"));
                eprintln!(
                    "killed at merged event {} ({snapshots} snapshot(s) at {})",
                    state.merged().len(),
                    path.display()
                );
                return;
            }
        }
        let entry = match fed.step(&mut state) {
            Ok(Some(entry)) => entry,
            Ok(None) => break,
            Err(e) => fail(format!("federation failed: {e}")),
        };
        if snapshot_every > 0 && entry.shard == 0 {
            if let Event::CycleTick { cycle } = entry.event {
                if (cycle + 1) % snapshot_every == 0 {
                    let path = snapshot_path
                        .unwrap_or_else(|| fail("--snapshot-every requires --snapshot-path"));
                    if let Err(e) = write_federated_snapshot(path, &fed.checkpoint(&state)) {
                        fail(format!("writing snapshot: {e}"));
                    }
                    snapshots += 1;
                }
            }
        }
    }
    print_cell(shards, mean_gap, &fed.finish(state));
}

/// Restores from a federated snapshot, runs to completion, and prints
/// the final cell lines.
fn resume_flow(fed: &Federation<Amp>, shards: u32, mean_gap: f64, snapshot_path: &Path) {
    let checkpoint = match read_federated_snapshot(snapshot_path) {
        Ok(checkpoint) => checkpoint,
        Err(e) => fail(format!("reading {}: {e}", snapshot_path.display())),
    };
    let merged_at_capture = checkpoint.merged.len();
    let mut state = match fed.resume(&checkpoint) {
        Ok(state) => state,
        Err(e) => fail(format!("resume failed: {e}")),
    };
    eprintln!("resuming from merged event {merged_at_capture}…");
    loop {
        match fed.step(&mut state) {
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(e) => fail(format!("federation failed after resume: {e}")),
        }
    }
    print_cell(shards, mean_gap, &fed.finish(state));
}

fn main() {
    let config = OnlineConfig {
        seed: arg_value("--seed").unwrap_or(42),
        cycles: arg_value("--cycles").unwrap_or(12),
        ..OnlineConfig::default()
    };

    if std::env::args().any(|a| a == "--smoke") {
        smoke(&config);
        return;
    }

    let single = std::env::args().any(|a| a == "--single");
    let snapshot_every: u32 = arg_value("--snapshot-every").unwrap_or(0);
    let snapshot_path: Option<PathBuf> = arg_value::<String>("--snapshot-path").map(PathBuf::from);
    let kill_at: Option<u64> = arg_value("--kill-at-event");
    let resume: Option<PathBuf> = arg_value::<String>("--resume").map(PathBuf::from);

    if single || resume.is_some() || kill_at.is_some() || snapshot_every > 0 {
        let shards: u32 = arg_value("--shards").unwrap_or(4);
        let mean_gap: f64 = arg_value("--mean-gap").unwrap_or(5.0);
        let metrics_dump: Option<PathBuf> =
            arg_value::<String>("--metrics-dump").map(PathBuf::from);
        let mut recorder: Option<Recorder> = None;
        let mut fed = Federation::new(fed_config(&config, shards, mean_gap), Amp::new())
            .unwrap_or_else(|e| fail(format!("federation config: {e}")));
        if metrics_dump.is_some() {
            let mut b = RegistryBuilder::new();
            let fed_ids = FedIds::register(&mut b, shards as usize);
            let shard_ids: Vec<EngineIds> = (0..shards)
                .map(|s| EngineIds::register(&mut b, Some(s)))
                .collect();
            let rec = Recorder::new(b.build());
            let shard_obs = shard_ids
                .into_iter()
                .map(|ids| EngineObs::new(rec.clone(), ids))
                .collect();
            fed = fed.with_obs(FederationObs::new(rec.clone(), fed_ids), shard_obs);
            recorder = Some(rec);
        }
        match &resume {
            Some(path) => resume_flow(&fed, shards, mean_gap, path),
            None => single_flow(
                &fed,
                shards,
                mean_gap,
                config.seed,
                snapshot_every,
                snapshot_path.as_deref(),
                kill_at,
            ),
        }
        if let (Some(path), Some(rec)) = (&metrics_dump, &recorder) {
            if let Some(registry) = rec.registry() {
                if let Err(e) = std::fs::write(path, registry.render_json()) {
                    fail(format!("writing metrics dump {}: {e}", path.display()));
                }
                eprintln!("metrics registry dumped to {}", path.display());
            }
        }
        return;
    }

    eprintln!(
        "running federation sweep (seed {}, {} cycles, shards {:?} × gaps {:?})…",
        config.seed, config.cycles, FEDERATION_SHARDS, FEDERATION_GAPS
    );
    let points = run_federation_sweep(&config, Amp::new(), &FEDERATION_SHARDS, &FEDERATION_GAPS);
    println!("E18 — sharded federation sweep (cheapest-probe routing, cross-shard on)\n");
    println!("{}", federation_table(&config, &points).render());
    for p in &points {
        println!(
            "merged_log_hash shards={} gap={} hash={}",
            p.shards, p.mean_gap, p.report.merged_log_hash
        );
    }
}
