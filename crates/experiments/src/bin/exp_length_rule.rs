//! E8 — the DESIGN.md R1 ablation: corrected vs paper-literal condition
//! 2°b over generated workloads.
//!
//! Usage: `exp_length_rule [--iterations N]`.

use ecosched_experiments::ablation::{ablation_table, run_ablation};
use ecosched_experiments::arg_value;

fn main() {
    let iterations: u64 = arg_value("--iterations").unwrap_or(2_000);
    eprintln!("running the length-rule ablation over {iterations} iterations…");
    let outcome = run_ablation(iterations, 0);
    println!(
        "R1 ablation — corrected rule (runtime = t/P, etalon semantics) vs the\n\
         paper's literal inequality (L ≥ t·P(s)/P, faster nodes need longer slots)\n"
    );
    println!("{}", ablation_table(&outcome).render());
}
