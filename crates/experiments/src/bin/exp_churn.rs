//! E14 — the churn sweep: ALP vs AMP under injected slot revocation, with
//! three-tier repair (failover → bounded repair search → postpone).
//!
//! Usage: `exp_churn [--runs N] [--cycles C]`.

use ecosched_experiments::arg_value;
use ecosched_experiments::churn::{churn_table, run_churn_sweep, ChurnConfig};

fn main() {
    let config = ChurnConfig {
        runs: arg_value("--runs").unwrap_or(40),
        cycles: arg_value("--cycles").map_or(8, |c: u64| c as usize),
        ..ChurnConfig::default()
    };
    eprintln!(
        "sweeping per-slot revocation over {:?} ({} runs × {} cycles each)…",
        config.levels, config.runs, config.cycles
    );
    let points = run_churn_sweep(&config);
    println!("E14 — economic scheduling under churn (revocation-tolerant execution)\n");
    println!("{}", churn_table(&points).render());
}
