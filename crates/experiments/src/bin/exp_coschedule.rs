//! E9 — batch-at-once co-scheduling (the paper's Sec. 7 future work) vs
//! the sequential per-job search, on generated workloads.
//!
//! Usage: `exp_coschedule [--iterations N]`.

use ecosched_experiments::arg_value;
use ecosched_experiments::extensions::{coschedule_table, run_coschedule_comparison};

fn main() {
    let iterations: u64 = arg_value("--iterations").unwrap_or(2_000);
    eprintln!("comparing sequential vs co-scheduled search over {iterations} iterations…");
    let outcome = run_coschedule_comparison(iterations, 0);
    println!(
        "Sec. 7 extension — slot selection for the whole batch at once\n\
         (windows committed in global earliest-start order)\n"
    );
    println!("{}", coschedule_table(&outcome).render());
}
