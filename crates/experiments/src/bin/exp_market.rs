//! E10 — supply-and-demand pricing (the paper's Sec. 7 future work): a
//! persistent environment whose owners adjust prices between cycles.
//!
//! Usage: `exp_market [--cycles N] [--seed S]`.

use ecosched_experiments::arg_value;
use ecosched_experiments::extensions::{market_table, run_market};

fn main() {
    let cycles: usize = arg_value("--cycles").unwrap_or(20);
    let seed: u64 = arg_value("--seed").unwrap_or(2011);
    eprintln!("running the resource market for {cycles} cycles…");
    let reports = run_market(cycles, seed);
    println!(
        "Sec. 7 extension — supply-and-demand pricing\n\
         (multiplier 1.0 = the base Sec. 5 price model; fast = rate ≥ 2.0)\n"
    );
    println!("{}", market_table(&reports).render());
}
