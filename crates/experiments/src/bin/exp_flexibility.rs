//! E13 — quantifying the paper's flexibility claim: the Pareto frontier
//! of (cost, time) trade-offs the VO can choose from, for ALP vs AMP
//! alternative sets on identical inputs.
//!
//! Usage: `exp_flexibility [--iterations N]`.

use ecosched_experiments::arg_value;
use ecosched_experiments::flexibility::{flexibility_table, run_flexibility};

fn main() {
    let iterations: u64 = arg_value("--iterations").unwrap_or(2_000);
    eprintln!("measuring combination frontiers over {iterations} iterations…");
    let outcome = run_flexibility(iterations, 0);
    println!(
        "Flexibility of the combination choice (Sec. 5/6 claims, quantified)\n\
         counted {}/{} iterations\n",
        outcome.counted, outcome.total
    );
    println!("{}", flexibility_table(&outcome).render());
}
