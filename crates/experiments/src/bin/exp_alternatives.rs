//! E5 — the Sec. 5 prose statistics: alternatives found per job, average
//! slot-list size, and average batch size, under both criteria.
//!
//! Usage: `exp_alternatives [--iterations N] [--threads T]`.

use ecosched_experiments::report::{f2, Table};
use ecosched_experiments::{arg_value, run_paired, ExperimentConfig};
use ecosched_sim::Criterion;

fn main() {
    let iterations: u64 = arg_value("--iterations").unwrap_or(25_000);
    let threads: usize = arg_value("--threads").unwrap_or(0);

    let mut table = Table::new(&[
        "experiment",
        "alp_alts/job",
        "amp_alts/job",
        "paper_alp",
        "paper_amp",
        "avg_slots",
        "avg_jobs",
    ]);
    for (name, criterion, paper_alp, paper_amp) in [
        (
            "time minimization",
            Criterion::MinTimeUnderBudget,
            7.39,
            34.28,
        ),
        (
            "cost minimization",
            Criterion::MinCostUnderTime,
            7.28,
            34.23,
        ),
    ] {
        let config = ExperimentConfig {
            iterations,
            threads,
            criterion,
            ..ExperimentConfig::default()
        };
        eprintln!("running {name} ({iterations} iterations)…");
        let outcome = run_paired(&config, 0);
        table.row(&[
            name.to_string(),
            f2(outcome.alp.alternatives_per_job()),
            f2(outcome.amp.alternatives_per_job()),
            f2(paper_alp),
            f2(paper_amp),
            f2(outcome.slots.mean()),
            f2(outcome.jobs.mean()),
        ]);
    }
    println!("Sec. 5 prose statistics (paper: slots 135.11, jobs 4.18)\n");
    println!("{}", table.render());
}
