//! E15 — online metascheduling on the discrete-event engine: ALP vs AMP
//! under continuous Poisson load, calm and churn, against the legacy
//! batch-cycle baseline.
//!
//! Usage: `exp_online [--seed S] [--cycles C] [--jobs J] [--churn P] [--smoke]`.
//!
//! `--smoke` runs the determinism smoke check used by CI: every grid cell
//! is run twice and the process exits non-zero if any pair of identically
//! seeded runs diverges. The output (hashes plus canonical report JSON)
//! is itself deterministic, so CI runs the binary twice and diffs.

use ecosched_experiments::arg_value;
use ecosched_experiments::online::{
    batch_table, online_table, run_batch_baseline, run_online, OnlineConfig,
};

fn main() {
    let config = OnlineConfig {
        seed: arg_value("--seed").unwrap_or(42),
        cycles: arg_value("--cycles").unwrap_or(12),
        jobs: arg_value("--jobs").unwrap_or(60),
        churn: arg_value("--churn").unwrap_or(0.05),
        ..OnlineConfig::default()
    };
    let smoke = std::env::args().any(|a| a == "--smoke");

    if smoke {
        let first = run_online(&config);
        let second = run_online(&config);
        let mut diverged = false;
        for (a, b) in first.iter().zip(&second) {
            let ok =
                a.report.log_hash == b.report.log_hash && a.report.to_json() == b.report.to_json();
            if !ok {
                diverged = true;
                eprintln!(
                    "DETERMINISM VIOLATION: {}/{} hashes {} vs {}",
                    a.scenario, a.algo, a.report.log_hash, b.report.log_hash
                );
            }
            println!(
                "event_log_hash scenario={} algo={} hash={}",
                a.scenario, a.algo, a.report.log_hash
            );
        }
        for p in &first {
            println!(
                "report scenario={} algo={} {}",
                p.scenario,
                p.algo,
                p.report.to_json()
            );
        }
        if diverged {
            std::process::exit(1);
        }
        println!("determinism ok: {} runs reproduced", first.len());
        return;
    }

    eprintln!(
        "running online grid (seed {}, {} cycles, {} jobs, churn {})…",
        config.seed, config.cycles, config.jobs, config.churn
    );
    let online = run_online(&config);
    println!("E15 — online metascheduling over a virtual clock (discrete-event engine)\n");
    println!("{}", online_table(&online).render());
    for p in &online {
        println!(
            "event_log_hash scenario={} algo={} hash={}",
            p.scenario, p.algo, p.report.log_hash
        );
    }
    println!("\nlegacy batch-cycle baseline (closed batches, no clock):\n");
    println!("{}", batch_table(&run_batch_baseline(&config)).render());
}
