//! E15 — online metascheduling on the discrete-event engine: ALP vs AMP
//! under continuous Poisson load, calm and churn, against the legacy
//! batch-cycle baseline.
//!
//! Usage: `exp_online [--seed S] [--cycles C] [--jobs J] [--churn P]
//! [--mean-gap G] [--threads N] [--no-coalesce] [--smoke] [--saturate]
//! [--trace FILE.swf [--trace-scale SECS_PER_TICK]]`.
//!
//! `--trace FILE.swf` replays a Standard Workload Format trace (E16)
//! instead of the synthetic grid: each record's submission time,
//! processor count, and requested runtime drive external submissions
//! into the engine, once per selector (ALP and AMP), with the replay
//! table and per-selector `event_log_hash` lines printed for CI to
//! diff. `--trace-scale` maps trace seconds to engine ticks (default 1
//! second per tick).
//!
//! `--saturate` runs the E15 saturation sweep instead of the grid: the
//! calm scenario at a descending ladder of mean inter-arrival gaps, the
//! job count scaled so the stream spans the horizon at every gap. The
//! end-of-run backlog column locates the knee where the market stops
//! absorbing offered load — the reading that sizes `ecosched-serve`'s
//! default admission bound (`--max-backlog`).
//!
//! `--no-coalesce` disables the engine's cycle-commit slot coalescing —
//! the fragmentation A/B baseline for EXPERIMENTS.md E15.
//!
//! `--threads N` fans each cycle's per-job scans and DP rows across `N`
//! workers. Purely an execution knob: every hash and report line is
//! byte-identical to the single-threaded run, which is exactly what the
//! CI online-smoke job diffs.
//!
//! `--smoke` runs the determinism smoke check used by CI: every grid cell
//! is run twice and the process exits non-zero if any pair of identically
//! seeded runs diverges. The output (hashes plus canonical report JSON)
//! is itself deterministic, so CI runs the binary twice and diffs.
//!
//! `--mean-gap G` sets the Poisson mean inter-arrival gap in ticks
//! (default 10), scaling the offered load without changing the job count.
//!
//! Crash-recovery mode runs one labelled cell (`--scenario calm|churn`,
//! `--algo ALP|AMP`) instead of the grid:
//!
//! * `--single` — run it uninterrupted and print its final
//!   `event_log_hash`/`report` lines;
//! * `--snapshot-every N --snapshot-path P` — also write a snapshot of
//!   the full resumable state to `P` after every N-th cycle commit;
//! * `--kill-at-event K` — simulate a crash: stop after K events,
//!   leaving the latest snapshot at `P` and the surviving event log at
//!   `P.log.json`;
//! * `--resume P` — restore from the snapshot at `P`, replay the
//!   surviving log suffix (divergence aborts with the offending event
//!   pair), run to completion, and print the same final lines — which,
//!   by the determinism contract, are byte-identical to the
//!   uninterrupted run's. CI kills a run mid-flight, resumes it, and
//!   diffs exactly these lines.
//!
//! `--metrics-dump PATH` (single-cell and resume modes) attaches a live
//! metrics recorder to the engine and writes the final registry as JSON
//! to `PATH` next to the printed report. The recorder is observe-only:
//! the hash and report lines are byte-identical with or without it.

use std::path::{Path, PathBuf};

use ecosched_engine::{Engine, EngineIds, EngineObs, EngineReport, Event, EventLog};
use ecosched_experiments::arg_value;
use ecosched_experiments::online::{
    batch_table, engine_config, online_table, run_batch_baseline, run_online, run_saturation,
    saturation_table, OnlineConfig, SATURATION_GAPS,
};
use ecosched_experiments::trace::{parse_swf, run_trace, trace_config, trace_table};
use ecosched_obs::{Recorder, RegistryBuilder};
use ecosched_persist::{decode_snapshot, resume_from, write_snapshot};
use ecosched_select::{Alp, Amp, SlotSelector};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("exp_online: {message}");
    std::process::exit(2);
}

fn print_cell(scenario: &str, algo: &str, report: &EngineReport) {
    println!(
        "event_log_hash scenario={scenario} algo={algo} hash={}",
        report.log_hash
    );
    println!(
        "report scenario={scenario} algo={algo} {}",
        report.to_json()
    );
}

/// The surviving-log path that rides along with a snapshot file.
fn log_path(snapshot: &Path) -> PathBuf {
    PathBuf::from(format!("{}.log.json", snapshot.display()))
}

/// A live recorder for one single-cell engine when `--metrics-dump` was
/// given; [`dump_metrics`] writes its registry out at the end.
fn metrics_recorder(dump: Option<&Path>) -> (Option<Recorder>, EngineObs) {
    if dump.is_none() {
        return (None, EngineObs::off());
    }
    let mut b = RegistryBuilder::new();
    let ids = EngineIds::register(&mut b, None);
    let rec = Recorder::new(b.build());
    (Some(rec.clone()), EngineObs::new(rec, ids))
}

/// Writes the final registry as JSON next to the report.
fn dump_metrics(dump: Option<&Path>, recorder: &Option<Recorder>) {
    let (Some(path), Some(rec)) = (dump, recorder) else {
        return;
    };
    let Some(registry) = rec.registry() else {
        return;
    };
    if let Err(e) = std::fs::write(path, registry.render_json()) {
        fail(format!("writing metrics dump {}: {e}", path.display()));
    }
    eprintln!("metrics registry dumped to {}", path.display());
}

/// Runs one cell, optionally snapshotting every N-th cycle commit and
/// optionally dying (like a crash would) after `kill_at` events.
fn single_flow<S: SlotSelector + Copy>(
    engine: &Engine<S>,
    scenario: &str,
    algo: &str,
    seed: u64,
    snapshot_every: u32,
    snapshot_path: Option<&Path>,
    kill_at: Option<u64>,
) {
    let mut state = engine.start(seed);
    let mut snapshots = 0u32;
    loop {
        if let Some(k) = kill_at {
            if state.events_processed() as u64 >= k {
                let path = snapshot_path
                    .unwrap_or_else(|| fail("--kill-at-event requires --snapshot-path"));
                let survivors = log_path(path);
                if let Err(e) = std::fs::write(&survivors, state.log().to_json()) {
                    fail(format!("writing surviving log: {e}"));
                }
                eprintln!(
                    "killed at event {} ({} snapshot(s) at {}, surviving log at {})",
                    state.events_processed(),
                    snapshots,
                    path.display(),
                    survivors.display()
                );
                return;
            }
        }
        let entry = match engine.step(&mut state) {
            Ok(Some(entry)) => entry,
            Ok(None) => break,
            Err(e) => fail(format!("engine failed: {e}")),
        };
        if snapshot_every > 0 {
            if let Event::CycleTick { cycle } = entry.event {
                if (cycle + 1) % snapshot_every == 0 {
                    let path = snapshot_path
                        .unwrap_or_else(|| fail("--snapshot-every requires --snapshot-path"));
                    if let Err(e) = write_snapshot(path, &engine.checkpoint(&state)) {
                        fail(format!("writing snapshot: {e}"));
                    }
                    snapshots += 1;
                }
            }
        }
    }
    let run = engine.finish(state);
    print_cell(scenario, algo, &run.report);
}

/// Restores from a snapshot, replays the surviving log suffix, runs to
/// completion, and prints the final cell lines.
fn resume_flow<S: SlotSelector + Copy>(
    engine: &Engine<S>,
    scenario: &str,
    algo: &str,
    snapshot_path: &Path,
) {
    let bytes = match std::fs::read(snapshot_path) {
        Ok(bytes) => bytes,
        Err(e) => fail(format!("reading {}: {e}", snapshot_path.display())),
    };
    let checkpoint = match decode_snapshot(&bytes) {
        Ok(checkpoint) => checkpoint,
        Err(e) => fail(format!("decoding {}: {e}", snapshot_path.display())),
    };
    let survivors = log_path(snapshot_path);
    let suffix: Vec<_> = match std::fs::read_to_string(&survivors) {
        Ok(json) => match serde_json::from_str::<EventLog>(&json) {
            Ok(log) => log
                .entries
                .get(checkpoint.log.len()..)
                .unwrap_or(&[])
                .to_vec(),
            Err(e) => fail(format!("parsing {}: {e}", survivors.display())),
        },
        // No surviving log: restore without replay verification.
        Err(_) => Vec::new(),
    };
    eprintln!(
        "resuming from event {} and replaying {} surviving event(s)…",
        checkpoint.log.len(),
        suffix.len()
    );
    match resume_from(engine, &bytes, &suffix) {
        Ok(run) => print_cell(scenario, algo, &run.report),
        Err(e) => fail(format!("recovery failed: {e}")),
    }
}

fn main() {
    let config = OnlineConfig {
        seed: arg_value("--seed").unwrap_or(42),
        cycles: arg_value("--cycles").unwrap_or(12),
        jobs: arg_value("--jobs").unwrap_or(60),
        churn: arg_value("--churn").unwrap_or(0.05),
        mean_interarrival: arg_value("--mean-gap").unwrap_or(10.0),
        coalesce: !std::env::args().any(|a| a == "--no-coalesce"),
        threads: arg_value("--threads").unwrap_or(1),
    };
    let smoke = std::env::args().any(|a| a == "--smoke");
    let single = std::env::args().any(|a| a == "--single");
    let saturate = std::env::args().any(|a| a == "--saturate");

    if let Some(trace_file) = arg_value::<String>("--trace") {
        let scale: f64 = arg_value("--trace-scale").unwrap_or(1.0);
        let text = match std::fs::read_to_string(&trace_file) {
            Ok(text) => text,
            Err(e) => fail(format!("reading {trace_file}: {e}")),
        };
        let jobs = match parse_swf(&text, scale) {
            Ok(jobs) => jobs,
            Err(e) => fail(format!("{trace_file}: {e}")),
        };
        if jobs.is_empty() {
            fail(format!("{trace_file}: no usable jobs"));
        }
        let engine_cfg = trace_config(&jobs);
        eprintln!(
            "replaying {} trace jobs over {} cycles (seed {})…",
            jobs.len(),
            engine_cfg.cycles,
            config.seed
        );
        let alp = Engine::new(engine_cfg.clone(), Alp::new()).expect("valid config");
        let amp = Engine::new(engine_cfg, Amp::new()).expect("valid config");
        let alp_run = run_trace(&alp, config.seed, &jobs).unwrap_or_else(|e| fail(e));
        let amp_run = run_trace(&amp, config.seed, &jobs).unwrap_or_else(|e| fail(e));
        println!("E16 — SWF trace replay ({trace_file})\n");
        println!(
            "{}",
            trace_table(&[("ALP", &alp_run), ("AMP", &amp_run)]).render()
        );
        println!(
            "event_log_hash trace algo=ALP hash={}",
            alp_run.report.log_hash
        );
        println!(
            "event_log_hash trace algo=AMP hash={}",
            amp_run.report.log_hash
        );
        return;
    }

    if saturate {
        eprintln!(
            "running saturation sweep (seed {}, {} cycles, gaps {:?})…",
            config.seed, config.cycles, SATURATION_GAPS
        );
        let points = run_saturation(&config, &SATURATION_GAPS);
        println!("E15 — saturation sweep (calm, job count scaled to the horizon)\n");
        println!("{}", saturation_table(&points).render());
        for p in &points {
            println!(
                "event_log_hash mean_gap={} algo={} hash={}",
                p.mean_gap, p.algo, p.report.log_hash
            );
        }
        return;
    }

    let scenario: String = arg_value("--scenario").unwrap_or_else(|| "churn".to_string());
    let algo: String = arg_value("--algo").unwrap_or_else(|| "AMP".to_string());
    let snapshot_every: u32 = arg_value("--snapshot-every").unwrap_or(0);
    let snapshot_path: Option<PathBuf> = arg_value::<String>("--snapshot-path").map(PathBuf::from);
    let kill_at: Option<u64> = arg_value("--kill-at-event");
    let resume: Option<PathBuf> = arg_value::<String>("--resume").map(PathBuf::from);

    if !matches!(scenario.as_str(), "calm" | "churn") {
        fail("--scenario must be calm or churn");
    }
    if !matches!(algo.as_str(), "ALP" | "AMP") {
        fail("--algo must be ALP or AMP");
    }

    if single || resume.is_some() || kill_at.is_some() || snapshot_every > 0 {
        let engine_cfg = engine_config(&config, scenario == "churn");
        let metrics_dump: Option<PathBuf> =
            arg_value::<String>("--metrics-dump").map(PathBuf::from);
        let (recorder, obs) = metrics_recorder(metrics_dump.as_deref());
        match (algo.as_str(), &resume) {
            ("ALP", Some(path)) => {
                let engine = Engine::new(engine_cfg, Alp::new())
                    .expect("valid config")
                    .with_obs(obs);
                resume_flow(&engine, &scenario, &algo, path);
            }
            ("ALP", None) => {
                let engine = Engine::new(engine_cfg, Alp::new())
                    .expect("valid config")
                    .with_obs(obs);
                single_flow(
                    &engine,
                    &scenario,
                    &algo,
                    config.seed,
                    snapshot_every,
                    snapshot_path.as_deref(),
                    kill_at,
                );
            }
            (_, Some(path)) => {
                let engine = Engine::new(engine_cfg, Amp::new())
                    .expect("valid config")
                    .with_obs(obs);
                resume_flow(&engine, &scenario, &algo, path);
            }
            (_, None) => {
                let engine = Engine::new(engine_cfg, Amp::new())
                    .expect("valid config")
                    .with_obs(obs);
                single_flow(
                    &engine,
                    &scenario,
                    &algo,
                    config.seed,
                    snapshot_every,
                    snapshot_path.as_deref(),
                    kill_at,
                );
            }
        }
        dump_metrics(metrics_dump.as_deref(), &recorder);
        return;
    }

    if smoke {
        let first = run_online(&config);
        let second = run_online(&config);
        let mut diverged = false;
        for (a, b) in first.iter().zip(&second) {
            let ok =
                a.report.log_hash == b.report.log_hash && a.report.to_json() == b.report.to_json();
            if !ok {
                diverged = true;
                eprintln!(
                    "DETERMINISM VIOLATION: {}/{} hashes {} vs {}",
                    a.scenario, a.algo, a.report.log_hash, b.report.log_hash
                );
            }
            println!(
                "event_log_hash scenario={} algo={} hash={}",
                a.scenario, a.algo, a.report.log_hash
            );
        }
        for p in &first {
            println!(
                "report scenario={} algo={} {}",
                p.scenario,
                p.algo,
                p.report.to_json()
            );
        }
        if diverged {
            std::process::exit(1);
        }
        println!("determinism ok: {} runs reproduced", first.len());
        return;
    }

    eprintln!(
        "running online grid (seed {}, {} cycles, {} jobs, churn {}, mean gap {})…",
        config.seed, config.cycles, config.jobs, config.churn, config.mean_interarrival
    );
    let online = run_online(&config);
    println!("E15 — online metascheduling over a virtual clock (discrete-event engine)\n");
    println!("{}", online_table(&online).render());
    for p in &online {
        println!(
            "event_log_hash scenario={} algo={} hash={}",
            p.scenario, p.algo, p.report.log_hash
        );
    }
    println!("\nlegacy batch-cycle baseline (closed batches, no clock):\n");
    println!("{}", batch_table(&run_batch_baseline(&config)).render());
}
