//! E1 — reproduces the Sec. 4 / Fig. 2–3 worked example: the three-job
//! batch on the six-node reconstruction, with the full alternative charts
//! for ALP and AMP.

use ecosched_experiments::gantt::{render_gantt, LabeledWindow};
use ecosched_experiments::paper_example;

fn main() {
    let run = paper_example::run().expect("the worked example always builds");

    println!("Fig. 2 (a) — initial state (reconstruction, DESIGN.md R4)");
    println!("{}", run.example.list);
    println!("{}", run.example.batch);

    println!("Fig. 2 (b) — the first alternatives on the resource lines:");
    let firsts: Vec<LabeledWindow<'_>> = run
        .amp
        .alternatives
        .per_job()
        .iter()
        .enumerate()
        .filter_map(|(i, ja)| {
            ja.alternatives().first().map(|alt| LabeledWindow {
                label: format!("{}", i + 1),
                window: alt.window(),
            })
        })
        .collect();
    println!("{}", render_gantt(&run.example.list, &firsts, 10));

    for (name, outcome) in [("ALP", &run.alp), ("AMP", &run.amp)] {
        println!(
            "Fig. 3 analogue — all alternatives found by {name} ({} total):",
            outcome.alternatives.total_found()
        );
        for ja in outcome.alternatives.per_job() {
            println!("  {}:", ja.job());
            for (i, alt) in ja.iter().enumerate() {
                println!("    W{}: {}", i + 1, alt.window());
            }
        }
        println!();
    }

    let w1 = run.amp.alternatives.per_job()[0].alternatives()[0].window();
    println!(
        "Paper check: W1 = [{}, {}) at {} per time unit (paper: [150, 230) at 10)",
        w1.start().ticks(),
        w1.end().ticks(),
        w1.cost_per_time()
    );
    println!(
        "Search work: ALP examined {} slots ({} checkpoint resumes), \
         AMP examined {} slots ({} checkpoint resumes)",
        run.alp.stats.scan.slots_examined,
        run.alp.stats.scan.checkpoint_hits,
        run.amp.stats.scan.slots_examined,
        run.amp.stats.scan.checkpoint_hits,
    );
}
