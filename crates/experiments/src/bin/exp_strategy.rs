//! E11 — multi-version scheduling strategies (the paper's Sec. 7 future
//! work after refs [13, 14]): survival under random node failures as a
//! function of the number of held versions.
//!
//! Usage: `exp_strategy [--iterations N] [--failures F]`.

use ecosched_experiments::arg_value;
use ecosched_experiments::extensions::{run_strategy_survival, strategy_table};

fn main() {
    let iterations: u64 = arg_value("--iterations").unwrap_or(500);
    let failures: usize = arg_value("--failures").unwrap_or(1);
    eprintln!(
        "building strategies over {iterations} workloads, failing {failures} node(s) per trial…"
    );
    let rows = run_strategy_survival(iterations, &[1, 2, 3, 4], failures, 0);
    println!(
        "Sec. 7 extension — scheduling strategies (sets of versions)\n\
         ({failures} random used node(s) fail between planning and execution)\n"
    );
    println!("{}", strategy_table(&rows).render());
}
