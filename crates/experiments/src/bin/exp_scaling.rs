//! E7 — the complexity experiment: slots examined and wall time for
//! ALP/AMP (linear) vs the backfill-style window search (quadratic) as the
//! slot-list size m grows.
//!
//! Usage: `exp_scaling [--max M]` (sizes double from 250 up to M,
//! default 16 000).

use ecosched_experiments::arg_value;
use ecosched_experiments::scaling::{run_scaling, scaling_table};

fn main() {
    let max: usize = arg_value("--max").unwrap_or(16_000);
    let mut sizes = vec![];
    let mut m = 250;
    while m <= max {
        sizes.push(m);
        m *= 2;
    }
    eprintln!("measuring worst-case window searches at m = {sizes:?}…");
    let points = run_scaling(&sizes, 2011);
    println!("Sec. 3 complexity claim — O(m) ALP/AMP vs O(m²) backfill\n");
    println!("{}", scaling_table(&points).render());
    if let Some(last) = points.last() {
        let ratio = last.backfill.slots_examined as f64 / last.alp.slots_examined as f64;
        println!(
            "\nat m = {}: backfill examines {ratio:.0}× more slots than ALP/AMP",
            last.m
        );
    }
}
