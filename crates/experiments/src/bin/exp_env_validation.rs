//! E12 — validating the paper's convenience shortcut: profile slot lists
//! from the direct `SlotGenerator` against lists derived from the full
//! environment model (domains + local job flows), and run the paired
//! ALP/AMP comparison on the derived lists.
//!
//! Usage: `exp_env_validation [--samples N]`.

use ecosched_core::SlotList;
use ecosched_experiments::arg_value;
use ecosched_experiments::report::{f2, Table};
use ecosched_select::{find_alternatives, Alp, Amp};
use ecosched_sim::analysis::SlotListProfile;
use ecosched_sim::env::{extract_vacant_slots, generate_local_flow, EnvConfig, Environment};
use ecosched_sim::{JobGenConfig, JobGenerator, SlotGenConfig, SlotGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn generated_list(seed: u64) -> SlotList {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng)
}

fn derived_list(seed: u64) -> SlotList {
    let cfg = EnvConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let env = Environment::generate(&cfg, &mut rng);
    let occupancy = generate_local_flow(&env, &cfg, &mut rng);
    extract_vacant_slots(&env, &occupancy)
}

fn main() {
    let samples: u64 = arg_value("--samples").unwrap_or(200);
    eprintln!("profiling {samples} generated vs {samples} environment-derived lists…");

    let gen_profiles: Vec<SlotListProfile> = (0..samples)
        .map(|i| SlotListProfile::of(&generated_list(i)))
        .collect();
    let env_profiles: Vec<SlotListProfile> = (0..samples)
        .map(|i| SlotListProfile::of(&derived_list(i)))
        .collect();
    let g = SlotListProfile::mean_of(&gen_profiles);
    let e = SlotListProfile::mean_of(&env_profiles);

    let mut table = Table::new(&["statistic", "SlotGenerator", "environment model"]);
    table.row(&[
        "slots per list".into(),
        g.slots.to_string(),
        e.slots.to_string(),
    ]);
    table.row(&[
        "mean slot length".into(),
        f2(g.mean_length),
        f2(e.mean_length),
    ]);
    table.row(&["mean performance".into(), f2(g.mean_perf), f2(e.mean_perf)]);
    table.row(&["mean price".into(), f2(g.mean_price), f2(e.mean_price)]);
    table.row(&[
        "mean price/quality C/P".into(),
        f2(g.mean_price_quality),
        f2(e.mean_price_quality),
    ]);
    table.row(&[
        "same-start share".into(),
        f2(g.same_start_share),
        f2(e.same_start_share),
    ]);
    table.row(&[
        "mean concurrency".into(),
        f2(g.mean_concurrency),
        f2(e.mean_concurrency),
    ]);
    println!("Validation of the paper's 'generate slots directly' shortcut\n");
    println!("{}", table.render());

    // The headline relation must also hold on derived lists.
    let job_gen = JobGenerator::new(JobGenConfig::default());
    let (mut alp_total, mut amp_total) = (0usize, 0usize);
    for i in 0..samples.min(100) {
        let list = derived_list(i);
        let mut rng = ChaCha8Rng::seed_from_u64(10_000 + i);
        let batch = job_gen.generate(&mut rng);
        alp_total += find_alternatives(Alp::new(), &list, &batch)
            .expect("search never fails")
            .alternatives
            .total_found();
        amp_total += find_alternatives(Amp::new(), &list, &batch)
            .expect("search never fails")
            .alternatives
            .total_found();
    }
    println!(
        "on environment-derived lists: ALP found {alp_total} alternatives, AMP {amp_total} \
         (×{:.1}) — the paper's relation survives the substrate swap",
        amp_total as f64 / alp_total.max(1) as f64
    );
}
