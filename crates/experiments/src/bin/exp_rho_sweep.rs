//! E6 — the Sec. 6 ρ ablation: AMP with the discounted budget
//! `S = ρ·C·t·N`, swept over ρ, under the time-minimization criterion.
//!
//! Usage: `exp_rho_sweep [--iterations N] [--threads T]`.

use ecosched_experiments::rho_sweep::{run_rho_sweep, sweep_table};
use ecosched_experiments::{arg_value, ExperimentConfig};
use ecosched_sim::Criterion;

fn main() {
    let base = ExperimentConfig {
        iterations: arg_value("--iterations").unwrap_or(5_000),
        threads: arg_value("--threads").unwrap_or(0),
        criterion: Criterion::MinTimeUnderBudget,
        ..ExperimentConfig::default()
    };
    let rhos = [0.6, 0.7, 0.8, 0.9, 1.0];
    eprintln!(
        "sweeping rho over {rhos:?} ({} iterations each)…",
        base.iterations
    );
    let points = run_rho_sweep(&base, &rhos);
    println!("Sec. 6 — AMP with S = ρ·C·t·N (ALP columns are the ρ-independent reference)\n");
    println!("{}", sweep_table(&points).render());
}
