//! Calibration helper for the R3 budget-factor knob (DESIGN.md): runs a
//! short paired experiment at a given budget-factor midpoint and prints
//! the headline statistics, so the default can be re-derived if the other
//! distributions ever change.
//!
//! Usage: `exp_calibrate [--iterations N] [--factor MID]`.

use ecosched_experiments::{arg_value, run_paired, ExperimentConfig};
use ecosched_sim::{Criterion, RealRange};

fn main() {
    let mut config = ExperimentConfig {
        iterations: arg_value("--iterations").unwrap_or(500),
        ..ExperimentConfig::default()
    };
    if let Some(mid) = arg_value::<f64>("--factor") {
        config.job_config.budget_factor = RealRange::new(mid - 0.25, mid + 0.25);
    }
    for (name, criterion) in [
        ("time-min", Criterion::MinTimeUnderBudget),
        ("cost-min", Criterion::MinCostUnderTime),
    ] {
        config.criterion = criterion;
        let o = run_paired(&config, 0);
        println!(
            "== {name}: counted {}/{} (slots {:.1}, jobs {:.2})",
            o.counted_iterations,
            o.total_iterations,
            o.slots.mean(),
            o.jobs.mean()
        );
        println!(
            "  ALP time {:8.2}  cost {:8.2}  alts/job {:6.2}",
            o.alp.job_time.mean(),
            o.alp.job_cost.mean(),
            o.alp.alternatives_per_job()
        );
        println!(
            "  AMP time {:8.2}  cost {:8.2}  alts/job {:6.2}",
            o.amp.job_time.mean(),
            o.amp.job_cost.mean(),
            o.amp.alternatives_per_job()
        );
    }
}
