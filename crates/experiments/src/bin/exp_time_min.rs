//! E2/E3 — the Fig. 4 + Fig. 5 time-minimization experiment:
//! `min T(s̄)` subject to `C(s̄) ≤ B*` over paired ALP/AMP iterations.
//!
//! Usage: `exp_time_min [--iterations N] [--series K] [--csv DIR] [--threads T]`
//! (paper defaults: 25 000 iterations, 300-experiment series).

use ecosched_experiments::figures::{
    comparison_table, environment_table, ratio_table, series_table, FIG4_TARGETS,
};
use ecosched_experiments::{arg_value, run_paired, ExperimentConfig};
use ecosched_sim::Criterion;

fn main() {
    let config = ExperimentConfig {
        iterations: arg_value("--iterations").unwrap_or(25_000),
        threads: arg_value("--threads").unwrap_or(0),
        criterion: Criterion::MinTimeUnderBudget,
        ..ExperimentConfig::default()
    };
    let series_limit: usize = arg_value("--series").unwrap_or(300);

    eprintln!(
        "running {} iterations (paired counted only when both algorithms cover every job)…",
        config.iterations,
    );
    let outcome = run_paired(&config, series_limit);

    println!("{}\n", FIG4_TARGETS.title);
    println!("{}", comparison_table(&outcome, &FIG4_TARGETS).render());
    println!("{}", ratio_table(&outcome, &FIG4_TARGETS).render());
    println!("{}", environment_table(&outcome).render());

    if let Some(dir) = arg_value::<String>("--csv") {
        std::fs::create_dir_all(&dir).expect("create csv output directory");
        comparison_table(&outcome, &FIG4_TARGETS)
            .write_csv(format!("{dir}/fig4_comparison.csv"))
            .expect("write fig4 csv");
        series_table(&outcome)
            .write_csv(format!("{dir}/fig5_series.csv"))
            .expect("write fig5 csv");
        eprintln!("wrote {dir}/fig4_comparison.csv and {dir}/fig5_series.csv");
    } else {
        println!(
            "Fig. 5 series (first {} counted experiments) — pass --csv DIR for the full table",
            outcome.series.len()
        );
        let preview = series_table(&outcome);
        for line in preview.render().lines().take(12) {
            println!("{line}");
        }
    }
}
