//! E4 — the Fig. 6 cost-minimization experiment:
//! `min C(s̄)` subject to `T(s̄) ≤ T*` over paired ALP/AMP iterations.
//!
//! Usage: `exp_cost_min [--iterations N] [--csv DIR] [--threads T]`.

use ecosched_experiments::figures::{
    comparison_table, environment_table, ratio_table, FIG6_TARGETS,
};
use ecosched_experiments::{arg_value, run_paired, ExperimentConfig};
use ecosched_sim::Criterion;

fn main() {
    let config = ExperimentConfig {
        iterations: arg_value("--iterations").unwrap_or(25_000),
        threads: arg_value("--threads").unwrap_or(0),
        criterion: Criterion::MinCostUnderTime,
        ..ExperimentConfig::default()
    };

    eprintln!("running {} paired iterations…", config.iterations);
    let outcome = run_paired(&config, 0);

    println!("{}\n", FIG6_TARGETS.title);
    println!("{}", comparison_table(&outcome, &FIG6_TARGETS).render());
    println!("{}", ratio_table(&outcome, &FIG6_TARGETS).render());
    println!("{}", environment_table(&outcome).render());

    if let Some(dir) = arg_value::<String>("--csv") {
        std::fs::create_dir_all(&dir).expect("create csv output directory");
        comparison_table(&outcome, &FIG6_TARGETS)
            .write_csv(format!("{dir}/fig6_comparison.csv"))
            .expect("write fig6 csv");
        eprintln!("wrote {dir}/fig6_comparison.csv");
    }
}
