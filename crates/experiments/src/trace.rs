//! Workload-trace replay: drive the discrete-event engine from a
//! Standard Workload Format (SWF) file instead of the synthetic Poisson
//! generator.
//!
//! SWF is the archive format of the Parallel Workloads Archive: one job
//! per line, 18 whitespace-separated integer fields, `;`-prefixed
//! comment header. Replay reads the three fields the engine needs —
//! submit time, requested processor count, requested runtime (falling
//! back to the actual runtime when the request is absent) — and injects
//! each job as an external submission at its (scaled) submit tick while
//! the engine runs. Everything else about the run (market publication,
//! cycle ticks, lease lifecycle) is the standard engine pipeline, so
//! trace replay answers the same questions as E15 but against recorded
//! rather than generated demand.
//!
//! Traces carry no prices, so every job gets a generous flat price cap
//! and the etalon performance floor: admission-by-budget is not the
//! question a trace replay asks.

use ecosched_core::{Perf, Price, ResourceRequest, TimeDelta, TimePoint};
use ecosched_engine::{ArrivalConfig, Engine, EngineConfig, EngineRun};
use ecosched_select::SlotSelector;

use crate::report::Table;

/// One job read from an SWF trace, already scaled to engine ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceJob {
    /// The trace's job id (field 1).
    pub id: u64,
    /// Submit tick (field 2, scaled).
    pub submit: i64,
    /// Processors requested (field 8, falling back to field 5).
    pub nodes: u64,
    /// Runtime ticks requested (field 9, falling back to field 4,
    /// scaled; at least 1).
    pub wall: i64,
}

/// Parses SWF text. `seconds_per_tick` scales trace seconds down to
/// engine ticks (1.0 replays in real seconds). Jobs with no usable
/// processor count or runtime (both fields -1) are skipped; the result
/// is sorted by submit tick, ties by job id, so replay order is
/// deterministic regardless of archive quirks.
///
/// # Errors
///
/// The first malformed (non-comment, non-empty, yet unparsable) line.
pub fn parse_swf(text: &str, seconds_per_tick: f64) -> Result<Vec<TraceJob>, String> {
    let scale = seconds_per_tick.max(1e-9);
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<i64> = line
            .split_whitespace()
            .map(|f| f.parse::<f64>().map(|v| v as i64))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if fields.len() < 9 {
            return Err(format!(
                "line {}: {} fields, SWF needs at least 9",
                lineno + 1,
                fields.len()
            ));
        }
        let pick = |requested: i64, actual: i64| if requested > 0 { requested } else { actual };
        let nodes = pick(fields[7], fields[4]);
        let runtime = pick(fields[8], fields[3]);
        if nodes <= 0 || runtime <= 0 {
            continue; // cancelled or unusable record
        }
        jobs.push(TraceJob {
            id: fields[0].max(0) as u64,
            submit: (fields[1].max(0) as f64 / scale) as i64,
            nodes: nodes as u64,
            wall: ((runtime as f64 / scale) as i64).max(1),
        });
    }
    jobs.sort_by_key(|j| (j.submit, j.id));
    Ok(jobs)
}

/// The flat per-slot price cap trace jobs carry (credits/tick) — above
/// the generator's price ceiling, so no market ever prices a trace job
/// out.
pub const TRACE_PRICE_CAP: i64 = 10;

/// Converts one trace job to an engine request.
///
/// # Errors
///
/// A human-readable description when the record cannot form a valid
/// request (e.g. a processor count past `usize`).
pub fn to_request(job: &TraceJob) -> Result<ResourceRequest, String> {
    let nodes = usize::try_from(job.nodes).map_err(|_| "nodes out of range".to_owned())?;
    ResourceRequest::new(
        nodes,
        TimeDelta::new(job.wall),
        Perf::UNIT,
        Price::from_credits(TRACE_PRICE_CAP),
    )
    .map_err(|e| e.to_string())
}

/// The engine configuration a trace replay runs: external arrivals (the
/// trace is the stream) over the standard market, with enough cycles to
/// cover the last submission plus its runtime.
#[must_use]
pub fn trace_config(jobs: &[TraceJob]) -> EngineConfig {
    let base = EngineConfig::default();
    let span = jobs
        .iter()
        .map(|j| j.submit + j.wall)
        .max()
        .unwrap_or(0)
        .max(1);
    let cycles = (span / base.cycle_length.max(1) + 2).min(i64::from(u32::MAX)) as u32;
    EngineConfig {
        arrivals: ArrivalConfig::External,
        cycles,
        ..base
    }
}

/// Replays a trace: steps the engine to each job's submit tick, injects
/// it, then drains the run.
///
/// Deterministic: a pure function of `(config, seed, trace)`.
///
/// # Errors
///
/// The first engine failure or unconvertible trace record.
pub fn run_trace<S: SlotSelector + Copy>(
    engine: &Engine<S>,
    seed: u64,
    jobs: &[TraceJob],
) -> Result<EngineRun, String> {
    let mut state = engine.start(seed);
    for job in jobs {
        // Process everything due strictly before the submit tick, so the
        // job arrives into exactly the market state of that instant.
        while state
            .next_event_time()
            .is_some_and(|t| t.ticks() < job.submit)
        {
            engine
                .step(&mut state)
                .map_err(|e| format!("engine failed: {e}"))?;
        }
        let request = to_request(job).map_err(|e| format!("job {}: {e}", job.id))?;
        engine.submit(&mut state, request, TimePoint::new(job.submit));
    }
    while engine
        .step(&mut state)
        .map_err(|e| format!("engine failed: {e}"))?
        .is_some()
    {}
    Ok(engine.finish(state))
}

/// Renders the one-row-per-algorithm trace replay table.
#[must_use]
pub fn trace_table(rows: &[(&str, &EngineRun)]) -> Table {
    let mut table = Table::new(&[
        "algo",
        "jobs",
        "scheduled",
        "completed",
        "backlog",
        "mean wait",
        "log hash",
    ]);
    for (algo, run) in rows {
        table.row(&[
            (*algo).to_string(),
            run.report.jobs_arrived.to_string(),
            run.report.jobs_scheduled.to_string(),
            run.report.jobs_completed.to_string(),
            run.report.backlog.to_string(),
            crate::report::f2(run.report.mean_wait),
            run.report.log_hash.clone(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_select::{Alp, Amp};

    const MINI: &str = include_str!("../fixtures/mini.swf");

    #[test]
    fn mini_fixture_parses_scaled() {
        let jobs = parse_swf(MINI, 1.0).expect("mini.swf parses");
        assert_eq!(jobs.len(), 10, "10 usable jobs (1 cancelled record)");
        assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        let halved = parse_swf(MINI, 2.0).expect("mini.swf parses at scale 2");
        assert_eq!(halved.len(), jobs.len());
        assert!(halved.iter().zip(&jobs).all(|(h, j)| h.wall <= j.wall));
    }

    #[test]
    fn comments_and_garbage_behave() {
        assert!(parse_swf("; header only\n\n", 1.0)
            .expect("comments ok")
            .is_empty());
        assert!(parse_swf("1 2 three", 1.0).is_err());
    }

    // The `--trace` smoke contract: replaying mini.swf schedules work
    // and is deterministic (same hash twice, for both selectors).
    #[test]
    fn mini_trace_replay_is_deterministic_and_schedules() {
        let jobs = parse_swf(MINI, 1.0).expect("mini.swf parses");
        let config = trace_config(&jobs);
        let amp = Engine::new(config.clone(), Amp::new()).expect("config");
        let alp = Engine::new(config, Alp::new()).expect("config");
        let a1 = run_trace(&amp, 42, &jobs).expect("amp run");
        let a2 = run_trace(&amp, 42, &jobs).expect("amp rerun");
        let l1 = run_trace(&alp, 42, &jobs).expect("alp run");
        assert_eq!(a1.report.log_hash, a2.report.log_hash);
        assert_eq!(a1.report.to_json(), a2.report.to_json());
        assert_eq!(a1.report.jobs_arrived, jobs.len() as u64);
        assert!(a1.report.jobs_scheduled > 0, "mini trace schedules jobs");
        assert!(l1.report.jobs_scheduled > 0);
    }
}
