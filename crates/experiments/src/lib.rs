//! Reproduction harness for Toporkov et al. (PaCT 2011).
//!
//! One module (and one binary) per table/figure of the paper — the
//! experiment index lives in DESIGN.md §5, and EXPERIMENTS.md records
//! paper-vs-measured values:
//!
//! | Experiment | Module | Binary |
//! |------------|--------|--------|
//! | E1 — Fig. 2–3 worked example | [`paper_example`] | `fig2_3_example` |
//! | E2/E3 — Fig. 4 + Fig. 5 time minimization | [`runner`] + [`figures`] | `exp_time_min` |
//! | E4 — Fig. 6 cost minimization | [`runner`] + [`figures`] | `exp_cost_min` |
//! | E5 — alternative counts / environment prose | [`figures`] | `exp_alternatives` |
//! | E6 — ρ budget-discount ablation | [`rho_sweep`] | `exp_rho_sweep` |
//! | E7 — O(m) vs O(m²) scaling | [`scaling`] | `exp_scaling` |
//! | E8 — condition-2°b length-rule ablation | [`ablation`] | `exp_length_rule` |
//! | E9 — batch-at-once co-scheduling | [`extensions`] | `exp_coschedule` |
//! | E10 — supply-and-demand pricing | [`extensions`] | `exp_market` |
//! | E11 — multi-version strategies vs failures | [`extensions`] | `exp_strategy` |
//! | E12 — generator-vs-environment validation | `ecosched_sim::analysis` | `exp_env_validation` |
//! | E13 — flexibility claim, quantified | [`flexibility`] | `exp_flexibility` |
//! | E14 — ALP vs AMP under slot revocation | [`churn`] | `exp_churn` |
//! | E15 — online load on the discrete-event engine | [`online`] | `exp_online` |
//! | E16 — SWF workload-trace replay | [`trace`] | `exp_online --trace` |
//! | E18 — sharded federation sweep | [`federation`] | `exp_federation` |
//!
//! # Example
//!
//! Reproduce a scaled-down Fig. 4 programmatically:
//!
//! ```
//! use ecosched_experiments::figures::{comparison_table, FIG4_TARGETS};
//! use ecosched_experiments::{run_paired, ExperimentConfig};
//!
//! let outcome = run_paired(
//!     &ExperimentConfig {
//!         iterations: 200,
//!         ..ExperimentConfig::default()
//!     },
//!     0,
//! );
//! assert!(outcome.amp.job_time.mean() < outcome.alp.job_time.mean());
//! println!("{}", comparison_table(&outcome, &FIG4_TARGETS).render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod churn;
pub mod extensions;
pub mod federation;
pub mod figures;
pub mod flexibility;
pub mod gantt;
pub mod online;
pub mod paper_example;
pub mod report;
pub mod rho_sweep;
pub mod runner;
pub mod scaling;
pub mod trace;

pub use runner::{run_paired, run_seed, ExperimentConfig, PairedOutcome};

/// Parses `--key value` style arguments from the process command line.
/// Returns `None` when the flag is absent.
///
/// # Panics
///
/// Panics with a readable message when the flag is present but its value
/// is missing or unparsable.
#[must_use]
pub fn arg_value<T: std::str::FromStr>(flag: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).map(|pos| {
        args.get(pos + 1)
            .unwrap_or_else(|| panic!("{flag} requires a value"))
            .parse()
            .unwrap_or_else(|_| panic!("{flag} value is not valid"))
    })
}
