//! Experiments for the paper's Sec. 7 future-work features, implemented in
//! this repository as extensions:
//!
//! * E9 — batch-at-once co-scheduling vs the sequential search;
//! * E10 — supply-and-demand pricing dynamics;
//! * E11 — multi-version scheduling strategies under node failures.

use std::collections::BTreeSet;

use ecosched_core::{JobAlternatives, NodeId};
use ecosched_select::{find_alternatives, find_alternatives_coscheduled, Amp, SearchOutcome};
use ecosched_sim::{
    JobGenConfig, JobGenerator, MarketConfig, MarketCycleReport, MarketSimulation, RunningStats,
    ScheduleStrategy, SlotGenConfig, SlotGenerator, StrategyConfig,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f2, Table};

/// Aggregates for one search mode in the co-scheduling comparison.
#[derive(Debug, Clone, Default)]
pub struct CoscheduleAggregate {
    /// Iterations where every job was covered.
    pub covered_iterations: u64,
    /// Jobs covered in total.
    pub jobs_covered: u64,
    /// Mean start time of each job's *first* alternative.
    pub first_start: RunningStats,
    /// Total alternatives found.
    pub alternatives: u64,
}

/// The co-scheduling comparison outcome.
#[derive(Debug, Clone, Default)]
pub struct CoscheduleOutcome {
    /// Iterations simulated.
    pub iterations: u64,
    /// The sequential (paper) search.
    pub sequential: CoscheduleAggregate,
    /// The batch-at-once search.
    pub coscheduled: CoscheduleAggregate,
}

fn record_cos(agg: &mut CoscheduleAggregate, outcome: &SearchOutcome) {
    if outcome.alternatives.all_jobs_covered() {
        agg.covered_iterations += 1;
    }
    agg.alternatives += outcome.alternatives.total_found() as u64;
    for ja in outcome.alternatives.per_job() {
        if let Some(first) = ja.alternatives().first() {
            agg.jobs_covered += 1;
            agg.first_start.push(first.window().start().ticks() as f64);
        }
    }
}

/// E9: runs both searches over `iterations` generated workloads.
#[must_use]
pub fn run_coschedule_comparison(iterations: u64, seed_offset: u64) -> CoscheduleOutcome {
    let slot_gen = SlotGenerator::new(SlotGenConfig::default());
    let job_gen = JobGenerator::new(JobGenConfig::default());
    let mut outcome = CoscheduleOutcome {
        iterations,
        ..CoscheduleOutcome::default()
    };
    for i in 0..iterations {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_offset + i);
        let list = slot_gen.generate(&mut rng);
        let batch = job_gen.generate(&mut rng);
        let seq = find_alternatives(Amp::new(), &list, &batch).expect("search never fails");
        let cos =
            find_alternatives_coscheduled(Amp::new(), &list, &batch).expect("search never fails");
        record_cos(&mut outcome.sequential, &seq);
        record_cos(&mut outcome.coscheduled, &cos);
    }
    outcome
}

/// Renders E9 as a table.
#[must_use]
pub fn coschedule_table(outcome: &CoscheduleOutcome) -> Table {
    let mut table = Table::new(&[
        "search",
        "covered iters",
        "jobs covered",
        "mean first start",
        "alternatives",
    ]);
    for (name, agg) in [
        ("sequential", &outcome.sequential),
        ("co-scheduled", &outcome.coscheduled),
    ] {
        table.row(&[
            name.to_string(),
            format!("{}/{}", agg.covered_iterations, outcome.iterations),
            agg.jobs_covered.to_string(),
            f2(agg.first_start.mean()),
            agg.alternatives.to_string(),
        ]);
    }
    table
}

/// E10: runs a market for `cycles` cycles and returns the trajectory.
#[must_use]
pub fn run_market(cycles: usize, seed: u64) -> Vec<MarketCycleReport> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut market = MarketSimulation::generate(MarketConfig::default(), &mut rng);
    market
        .run(Amp::new(), cycles, &mut rng)
        .expect("market cycles never fail")
}

/// Renders E10 as a table.
#[must_use]
pub fn market_table(reports: &[MarketCycleReport]) -> Table {
    let mut table = Table::new(&[
        "cycle",
        "scheduled",
        "revenue",
        "mean mult",
        "fast mult",
        "slow mult",
    ]);
    for (i, r) in reports.iter().enumerate() {
        table.row(&[
            (i + 1).to_string(),
            format!("{}/{}", r.scheduled, r.batch_size),
            f2(r.revenue.to_f64()),
            f2(r.mean_multiplier),
            f2(r.fast_multiplier),
            f2(r.slow_multiplier),
        ]);
    }
    table
}

/// E11: survival statistics for strategies of `k` versions under random
/// node failures.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrategySurvival {
    /// Versions requested.
    pub k: usize,
    /// Mean versions actually built.
    pub mean_versions: f64,
    /// Trials where some version survived the failure set.
    pub survived: u64,
    /// Total failure trials.
    pub trials: u64,
}

impl StrategySurvival {
    /// Survival rate in `[0, 1]`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.survived as f64 / self.trials as f64
        }
    }
}

/// E11: over generated workloads, build a k-version strategy and hit it
/// with `failures_per_trial` random failed nodes, for each k in `ks`.
#[must_use]
pub fn run_strategy_survival(
    iterations: u64,
    ks: &[usize],
    failures_per_trial: usize,
    seed_offset: u64,
) -> Vec<StrategySurvival> {
    let slot_gen = SlotGenerator::new(SlotGenConfig::default());
    let job_gen = JobGenerator::new(JobGenConfig::default());
    ks.iter()
        .map(|&k| {
            let mut survival = StrategySurvival {
                k,
                ..StrategySurvival::default()
            };
            let mut versions_sum = 0usize;
            let mut built = 0u64;
            for i in 0..iterations {
                let mut rng = ChaCha8Rng::seed_from_u64(seed_offset + i);
                let list = slot_gen.generate(&mut rng);
                let batch = job_gen.generate(&mut rng);
                let outcome =
                    find_alternatives(Amp::new(), &list, &batch).expect("search never fails");
                let covered: Vec<JobAlternatives> = outcome
                    .alternatives
                    .per_job()
                    .iter()
                    .filter(|ja| !ja.is_empty())
                    .cloned()
                    .collect();
                if covered.is_empty() {
                    continue;
                }
                let config = StrategyConfig {
                    max_versions: k,
                    allow_overlap_fallback: true,
                };
                let Ok(strategy) = ScheduleStrategy::build(&covered, &config) else {
                    continue;
                };
                built += 1;
                versions_sum += strategy.len();
                // Fail random nodes among those the alternatives touch.
                let mut touched: Vec<NodeId> = covered
                    .iter()
                    .flat_map(|ja| ja.iter())
                    .flat_map(|a| a.window().slots().iter().map(|ws| ws.node()))
                    .collect();
                touched.sort();
                touched.dedup();
                touched.shuffle(&mut rng);
                let failed: BTreeSet<NodeId> =
                    touched.into_iter().take(failures_per_trial).collect();
                survival.trials += 1;
                if strategy.select(&failed).is_some() {
                    survival.survived += 1;
                }
            }
            survival.mean_versions = if built == 0 {
                0.0
            } else {
                versions_sum as f64 / built as f64
            };
            survival
        })
        .collect()
}

/// Renders E11 as a table.
#[must_use]
pub fn strategy_table(rows: &[StrategySurvival]) -> Table {
    let mut table = Table::new(&["k", "mean versions", "survived", "survival rate"]);
    for r in rows {
        table.row(&[
            r.k.to_string(),
            f2(r.mean_versions),
            format!("{}/{}", r.survived, r.trials),
            format!("{:.1}%", r.rate() * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coschedule_covers_no_fewer_jobs() {
        let outcome = run_coschedule_comparison(40, 0);
        assert!(outcome.coscheduled.jobs_covered >= outcome.sequential.jobs_covered);
        assert!(outcome.coscheduled.covered_iterations >= outcome.sequential.covered_iterations);
    }

    #[test]
    fn market_trajectory_has_requested_length() {
        let reports = run_market(6, 1);
        assert_eq!(reports.len(), 6);
        assert_eq!(market_table(&reports).render().lines().count(), 2 + 6);
    }

    #[test]
    fn more_versions_survive_more_failures() {
        let rows = run_strategy_survival(30, &[1, 3], 1, 0);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].trials > 0);
        assert!(
            rows[1].rate() >= rows[0].rate(),
            "k=3 rate {} < k=1 rate {}",
            rows[1].rate(),
            rows[0].rate()
        );
        // A single-version strategy dies whenever its own node fails — but
        // only if the failed node is among the version's nodes; rates are
        // strictly below 1 for k=1 in practice.
        assert!(rows[0].rate() < 1.0);
    }

    #[test]
    fn tables_render() {
        let outcome = run_coschedule_comparison(5, 0);
        assert!(coschedule_table(&outcome).render().contains("sequential"));
        let rows = run_strategy_survival(5, &[2], 1, 0);
        assert!(strategy_table(&rows).render().contains("survival"));
    }
}
