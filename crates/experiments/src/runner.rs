//! The paired-experiment runner shared by the Fig. 4/5/6 reproductions.
//!
//! Each simulated scheduling iteration draws one slot list and one batch
//! (from the paper's generators), then runs the *same* inputs through both
//! ALP and AMP, exactly as the study prescribes ("the alternatives search
//! is performed on the same set of available vacant system slots").
//! Following Sec. 5, an iteration is *counted* only when both algorithms
//! found at least one alternative for every batch job.

use ecosched_core::{Batch, SlotList};
use ecosched_select::{Alp, Amp, SlotSelector};
use ecosched_sim::{
    run_iteration, Criterion, IterationConfig, JobGenConfig, JobGenerator, OptimizerKind,
    RunningStats, SlotGenConfig, SlotGenerator,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a paired experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of simulated scheduling iterations (the paper used 25 000).
    pub iterations: u64,
    /// Base RNG seed; iteration `i` uses `seed_offset + i`.
    pub seed_offset: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Slot-list generator parameters.
    pub slot_config: SlotGenConfig,
    /// Batch generator parameters.
    pub job_config: JobGenConfig,
    /// The VO criterion to optimize per iteration.
    pub criterion: Criterion,
    /// The combination solver.
    pub optimizer: OptimizerKind,
    /// AMP budget discount ρ (1.0 = the paper's main experiments).
    pub rho: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            iterations: 25_000,
            seed_offset: 0,
            threads: 0,
            slot_config: SlotGenConfig::default(),
            job_config: JobGenConfig::default(),
            criterion: Criterion::MinTimeUnderBudget,
            optimizer: OptimizerKind::default(),
            rho: 1.0,
        }
    }
}

/// Per-algorithm outcome of one iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AlgoSeedResult {
    /// Every batch job got at least one alternative.
    pub covered: bool,
    /// Mean per-job execution time of the optimized assignment.
    pub avg_time: f64,
    /// Mean per-job execution cost of the optimized assignment.
    pub avg_cost: f64,
    /// Alternatives found across all batch jobs.
    pub alternatives: u64,
}

/// One iteration's full outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedOutcome {
    /// The iteration's seed index (0-based).
    pub index: u64,
    /// Slots in the generated list.
    pub slots: usize,
    /// Jobs in the generated batch.
    pub jobs: usize,
    /// ALP's result.
    pub alp: AlgoSeedResult,
    /// AMP's result.
    pub amp: AlgoSeedResult,
}

impl SeedOutcome {
    /// The paper's inclusion criterion: both algorithms covered every job.
    #[must_use]
    pub fn counted(&self) -> bool {
        self.alp.covered && self.amp.covered
    }
}

/// Aggregated results for one algorithm over the counted iterations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlgoAggregate {
    /// Mean-per-iteration job execution time, aggregated over counted
    /// iterations (Fig. 4 (a) / Fig. 6 (b)).
    pub job_time: RunningStats,
    /// Mean-per-iteration job execution cost (Fig. 4 (b) / Fig. 6 (a)).
    pub job_cost: RunningStats,
    /// Total alternatives found over counted iterations.
    pub alternatives: u64,
    /// Total jobs over counted iterations.
    pub jobs: u64,
}

impl AlgoAggregate {
    /// Mean alternatives per job — the paper's 7.39 (ALP) vs 34.28 (AMP)
    /// statistic.
    #[must_use]
    pub fn alternatives_per_job(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.alternatives as f64 / self.jobs as f64
        }
    }
}

/// The aggregated outcome of a paired experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PairedOutcome {
    /// Iterations simulated.
    pub total_iterations: u64,
    /// Iterations counted (both algorithms covered all jobs).
    pub counted_iterations: u64,
    /// ALP aggregates.
    pub alp: AlgoAggregate,
    /// AMP aggregates.
    pub amp: AlgoAggregate,
    /// Mean slot-list size over counted iterations (paper: 135.11).
    pub slots: RunningStats,
    /// Mean batch size over counted iterations (paper: 4.18).
    pub jobs: RunningStats,
    /// Per-iteration series of counted experiments, for Fig. 5.
    pub series: Vec<SeedOutcome>,
    /// How many counted iterations to retain in `series`.
    pub series_limit: usize,
}

/// Runs one iteration for one algorithm, returning `None` for the rare
/// iteration where an optimizer invariant fails (counted as uncovered).
fn run_algo(
    selector: impl SlotSelector,
    list: &SlotList,
    batch: &Batch,
    config: &IterationConfig,
) -> AlgoSeedResult {
    match run_iteration(selector, list, batch, config) {
        Ok(result) => {
            let (avg_time, avg_cost) = result
                .assignment
                .as_ref()
                .map_or((0.0, 0.0), |a| (a.avg_time(), a.avg_cost()));
            AlgoSeedResult {
                covered: result.all_covered(),
                avg_time,
                avg_cost,
                alternatives: result.search.alternatives.total_found() as u64,
            }
        }
        Err(_) => AlgoSeedResult::default(),
    }
}

/// Runs a single seeded iteration through both algorithms.
#[must_use]
pub fn run_seed(config: &ExperimentConfig, index: u64) -> SeedOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed_offset + index);
    let list = SlotGenerator::new(config.slot_config).generate(&mut rng);
    let batch = JobGenerator::new(config.job_config).generate(&mut rng);
    let iteration_config = IterationConfig {
        criterion: config.criterion,
        optimizer: config.optimizer,
        ..IterationConfig::default()
    };
    let amp = if config.rho >= 1.0 {
        Amp::new()
    } else {
        Amp::with_rho(config.rho)
    };
    SeedOutcome {
        index,
        slots: list.len(),
        jobs: batch.len(),
        alp: run_algo(Alp::new(), &list, &batch, &iteration_config),
        amp: run_algo(amp, &list, &batch, &iteration_config),
    }
}

/// Runs the full paired experiment, parallelized over iterations.
///
/// Deterministic for a given config: iteration `i` always uses seed
/// `seed_offset + i` regardless of thread count.
#[must_use]
pub fn run_paired(config: &ExperimentConfig, series_limit: usize) -> PairedOutcome {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        config.threads
    };
    let n = config.iterations;
    let chunk = n.div_ceil(threads as u64).max(1);

    let outcomes: Vec<SeedOutcome> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk as usize)
            .map(|start| {
                let end = (start + chunk).min(n);
                scope.spawn(move |_| {
                    (start..end)
                        .map(|i| run_seed(config, i))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");

    let mut result = PairedOutcome {
        total_iterations: n,
        series_limit,
        ..PairedOutcome::default()
    };
    for outcome in outcomes {
        if !outcome.counted() {
            continue;
        }
        result.counted_iterations += 1;
        result.slots.push(outcome.slots as f64);
        result.jobs.push(outcome.jobs as f64);
        for (agg, algo) in [
            (&mut result.alp, &outcome.alp),
            (&mut result.amp, &outcome.amp),
        ] {
            agg.job_time.push(algo.avg_time);
            agg.job_cost.push(algo.avg_cost);
            agg.alternatives += algo.alternatives;
            agg.jobs += outcome.jobs as u64;
        }
        if result.series.len() < series_limit {
            result.series.push(outcome);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(criterion: Criterion) -> ExperimentConfig {
        ExperimentConfig {
            iterations: 60,
            threads: 2,
            criterion,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn run_seed_is_deterministic() {
        let config = small_config(Criterion::MinTimeUnderBudget);
        assert_eq!(run_seed(&config, 5), run_seed(&config, 5));
        assert_ne!(run_seed(&config, 5), run_seed(&config, 6));
    }

    #[test]
    fn paired_run_counts_subset() {
        let config = small_config(Criterion::MinTimeUnderBudget);
        let outcome = run_paired(&config, 10);
        assert_eq!(outcome.total_iterations, 60);
        assert!(outcome.counted_iterations > 0, "no iteration counted");
        assert!(outcome.counted_iterations <= 60);
        assert!(outcome.series.len() <= 10);
        assert!(outcome.series.iter().all(SeedOutcome::counted));
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mut config = small_config(Criterion::MinTimeUnderBudget);
        config.iterations = 24;
        config.threads = 1;
        let serial = run_paired(&config, 5);
        config.threads = 4;
        let parallel = run_paired(&config, 5);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn amp_covers_whenever_alp_does() {
        // Sec. 6: any ALP window is AMP-feasible, so ALP-covered implies
        // AMP-covered on the same inputs.
        let config = small_config(Criterion::MinTimeUnderBudget);
        for i in 0..40 {
            let outcome = run_seed(&config, i);
            if outcome.alp.covered {
                assert!(outcome.amp.covered, "iteration {i}");
            }
            if outcome.counted() {
                assert!(outcome.amp.alternatives >= outcome.alp.alternatives);
            }
        }
    }

    #[test]
    fn cost_criterion_also_runs() {
        let config = small_config(Criterion::MinCostUnderTime);
        let outcome = run_paired(&config, 0);
        assert!(outcome.counted_iterations > 0);
        assert!(outcome.alp.job_cost.mean() > 0.0);
        assert!(outcome.amp.job_cost.mean() > 0.0);
    }
}
