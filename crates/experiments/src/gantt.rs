//! Text Gantt charts: render vacant slots and committed windows on
//! per-node resource lines, the way the paper's Fig. 2–3 draws them.

use std::collections::BTreeSet;

use ecosched_core::{NodeId, SlotList, TimePoint, Window};

/// A window with its display label (e.g. `"W1"`).
#[derive(Debug, Clone)]
pub struct LabeledWindow<'a> {
    /// One-character-or-more label; the first character fills the bar.
    pub label: String,
    /// The window to draw.
    pub window: &'a Window,
}

/// Renders resource lines: vacancies as `░`, windows as their label's
/// first character, unknown/busy time as spaces.
///
/// `ticks_per_char` controls horizontal resolution.
///
/// # Panics
///
/// Panics if `ticks_per_char` is zero.
///
/// # Examples
///
/// ```
/// use ecosched_experiments::gantt::render_gantt;
/// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
///
/// let slot = Slot::new(
///     SlotId::new(0),
///     NodeId::new(1),
///     Perf::UNIT,
///     Price::from_credits(2),
///     Span::new(TimePoint::new(0), TimePoint::new(100)).unwrap(),
/// ).unwrap();
/// let list = SlotList::from_slots(vec![slot]).unwrap();
/// let chart = render_gantt(&list, &[], 10);
/// assert!(chart.contains("cpu1"));
/// assert!(chart.contains('░'));
/// ```
#[must_use]
pub fn render_gantt(list: &SlotList, windows: &[LabeledWindow<'_>], ticks_per_char: i64) -> String {
    assert!(ticks_per_char > 0, "ticks_per_char must be positive");
    let mut nodes: BTreeSet<NodeId> = list.iter().map(|s| s.node()).collect();
    for lw in windows {
        for ws in lw.window.slots() {
            nodes.insert(ws.node());
        }
    }
    if nodes.is_empty() {
        return String::from("(empty chart)\n");
    }
    let start = list.earliest_start().unwrap_or(TimePoint::ZERO).min(
        windows
            .iter()
            .map(|lw| lw.window.start())
            .min()
            .unwrap_or(TimePoint::MAX),
    );
    let end = list
        .iter()
        .map(|s| s.end())
        .chain(windows.iter().map(|lw| lw.window.end()))
        .max()
        .unwrap_or(start);
    let width = ((end - start).ticks() as usize).div_ceil(ticks_per_char as usize);
    let col = |t: TimePoint| (((t - start).ticks() / ticks_per_char) as usize).min(width);

    let mut out = String::new();
    for node in nodes {
        let mut row = vec![' '; width];
        for slot in list.iter().filter(|s| s.node() == node) {
            for cell in row.iter_mut().take(col(slot.end())).skip(col(slot.start())) {
                *cell = '░';
            }
        }
        for lw in windows {
            let mark = lw.label.chars().next().unwrap_or('#');
            for ws in lw.window.slots().iter().filter(|ws| ws.node() == node) {
                let span = lw.window.used_span(ws);
                for cell in row.iter_mut().take(col(span.end())).skip(col(span.start())) {
                    *cell = mark;
                }
            }
        }
        out.push_str(&format!("{node:>6} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    // Time axis.
    out.push_str(&format!(
        "{:>6} |{}| (each char = {} ticks, from {})\n",
        "t",
        "-".repeat(width),
        ticks_per_char,
        start
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{Perf, Price, Slot, SlotId, Span, TimeDelta, WindowSlot};

    fn slot(id: u64, node: u32, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::UNIT,
            Price::from_credits(1),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn draws_vacancies_and_windows() {
        let s0 = slot(0, 0, 0, 100);
        let s1 = slot(1, 1, 0, 100);
        let list = SlotList::from_slots(vec![s0, s1]).unwrap();
        let window = Window::new(
            TimePoint::new(20),
            vec![
                WindowSlot::from_slot(&s0, TimeDelta::new(30)).unwrap(),
                WindowSlot::from_slot(&s1, TimeDelta::new(30)).unwrap(),
            ],
        )
        .unwrap();
        let chart = render_gantt(
            &list,
            &[LabeledWindow {
                label: "W1".into(),
                window: &window,
            }],
            10,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3); // two nodes + axis
        assert!(lines[0].contains("cpu0"));
        // The window occupies columns 2..5 on both lines.
        assert!(lines[0].contains("WWW"));
        assert!(lines[1].contains("WWW"));
        assert!(lines[0].contains('░'));
        assert!(lines[2].contains("10 ticks"));
    }

    #[test]
    fn empty_inputs_render_placeholder() {
        assert_eq!(render_gantt(&SlotList::new(), &[], 10), "(empty chart)\n");
    }

    #[test]
    fn window_nodes_appear_even_without_vacancies() {
        // A committed window's node shows up after its slot was fully
        // consumed from the list.
        let s0 = slot(0, 5, 0, 50);
        let window = Window::new(
            TimePoint::new(0),
            vec![WindowSlot::from_slot(&s0, TimeDelta::new(50)).unwrap()],
        )
        .unwrap();
        let chart = render_gantt(
            &SlotList::new(),
            &[LabeledWindow {
                label: "X".into(),
                window: &window,
            }],
            10,
        );
        assert!(chart.contains("cpu5"));
        assert!(chart.contains("XXXXX"));
    }

    #[test]
    #[should_panic(expected = "ticks_per_char must be positive")]
    fn zero_scale_panics() {
        let _ = render_gantt(&SlotList::new(), &[], 0);
    }
}
