//! The Fig. 2–3 worked example (experiment E1).
//!
//! The paper's Sec. 4 walks AMP through a fixed state: six nodes
//! `cpu1…cpu6` with unit costs, seven local tasks `p1…p7`, ten vacant
//! slots, and a three-job batch. The figure's exact slot layout is not in
//! the text, so this is a *reconstruction* (DESIGN.md note R4) consistent
//! with every stated fact:
//!
//! * Job 1 (2 nodes × 80 ticks, window cost ≤ 10/t) gets
//!   `W1 = {cpu1, cpu4}` on `[150, 230)` at exactly 10 per time unit, and
//!   no earlier window fits the cost constraint;
//! * Job 2 (3 nodes × 30 ticks, ≤ 30/t) gets `W2 = {cpu1, cpu2, cpu4}` at
//!   14 per time unit (ALP's per-slot cap works out to 10, excluding the
//!   12-per-unit `cpu6`, exactly as Sec. 4 remarks);
//! * Job 3 (2 nodes × 50 ticks, ≤ 6/t) gets `W3` on `[450, 500)`;
//! * across the full search AMP finds several alternatives on `cpu6` that
//!   ALP cannot, and strictly more alternatives overall.

use ecosched_core::{
    Batch, CoreError, Job, JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList,
    Span, TimeDelta, TimePoint,
};
use ecosched_select::{find_alternatives, Alp, Amp, SearchOutcome};

/// Prices per time unit of `cpu1…cpu6` in the reconstruction.
pub const NODE_PRICES: [i64; 6] = [6, 4, 3, 4, 3, 12];

/// The reconstructed initial state: the slot list and the three-job batch.
#[derive(Debug, Clone)]
pub struct PaperExample {
    /// The ten vacant slots of Fig. 2 (a), ordered by start time.
    pub list: SlotList,
    /// The three jobs, in priority order.
    pub batch: Batch,
}

/// Builds the reconstructed Fig. 2 (a) state.
///
/// # Errors
///
/// Never fails in practice; the signature propagates [`CoreError`] from the
/// constructors for uniformity with the rest of the API.
pub fn build() -> Result<PaperExample, CoreError> {
    let price = |cpu: usize| Price::from_credits(NODE_PRICES[cpu - 1]);
    let node = |cpu: usize| NodeId::new(cpu as u32);
    // Vacancies left by local tasks p1…p7 on the horizon [0, 600):
    //   p1 = cpu1[20,150)   p2 = cpu2[0,230)   p3 = cpu2[330,450)
    //   p4 = cpu3[0,450)    p5 = cpu4[0,150)   p6 = cpu4[330,540)
    //   p7 = cpu5[25,450)
    let spans: [(usize, i64, i64); 10] = [
        (6, 0, 600),   // slot 0
        (1, 0, 20),    // slot 1
        (5, 0, 25),    // slot 2
        (1, 150, 600), // slot 3
        (4, 150, 330), // slot 4
        (2, 230, 330), // slot 5
        (2, 450, 600), // slot 6
        (3, 450, 600), // slot 7
        (5, 450, 600), // slot 8
        (4, 540, 600), // slot 9
    ];
    let slots = spans
        .iter()
        .enumerate()
        .map(|(i, &(cpu, a, b))| {
            Slot::new(
                SlotId::new(i as u64),
                node(cpu),
                Perf::UNIT,
                price(cpu),
                Span::new(TimePoint::new(a), TimePoint::new(b))
                    .expect("example spans are well-formed"),
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    let list = SlotList::from_slots(slots)?;

    // Per-slot caps are the window caps divided by N: 10/2, 30/3, 6/2.
    let jobs = vec![
        Job::new(
            JobId::new(1),
            ResourceRequest::new(2, TimeDelta::new(80), Perf::UNIT, Price::from_credits(5))?,
        ),
        Job::new(
            JobId::new(2),
            ResourceRequest::new(3, TimeDelta::new(30), Perf::UNIT, Price::from_credits(10))?,
        ),
        Job::new(
            JobId::new(3),
            ResourceRequest::new(2, TimeDelta::new(50), Perf::UNIT, Price::from_credits(3))?,
        ),
    ];
    let batch = Batch::from_jobs(jobs)?;
    Ok(PaperExample { list, batch })
}

/// The outcome of running both algorithms on the example state.
#[derive(Debug, Clone)]
pub struct ExampleRun {
    /// The reconstructed state.
    pub example: PaperExample,
    /// ALP's full alternatives search.
    pub alp: SearchOutcome,
    /// AMP's full alternatives search (the paper's Fig. 3 chart).
    pub amp: SearchOutcome,
}

/// Runs the worked example through ALP and AMP.
///
/// # Errors
///
/// Propagates [`CoreError`] from construction (never fails in practice).
pub fn run() -> Result<ExampleRun, CoreError> {
    let example = build()?;
    let alp = find_alternatives(Alp::new(), &example.list, &example.batch)?;
    let amp = find_alternatives(Amp::new(), &example.list, &example.batch)?;
    Ok(ExampleRun { example, alp, amp })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::Money;

    #[test]
    fn state_matches_the_figure() {
        let example = build().unwrap();
        assert_eq!(example.list.len(), 10, "Fig. 2 (a) has slots 0…9");
        assert_eq!(example.batch.len(), 3);
        example.list.validate().unwrap();
        // cpu6 is the expensive full-horizon line.
        let s0 = example.list.iter().next().unwrap();
        assert_eq!(s0.node(), NodeId::new(6));
        assert_eq!(s0.price(), Price::from_credits(12));
        assert_eq!(s0.length(), TimeDelta::new(600));
    }

    #[test]
    fn w1_is_cpu1_cpu4_at_150_230_cost_10() {
        let run = run().unwrap();
        let w1 = run.amp.alternatives.per_job()[0].alternatives()[0].window();
        assert_eq!(w1.start(), TimePoint::new(150));
        assert_eq!(w1.end(), TimePoint::new(230));
        assert!(w1.uses_node(NodeId::new(1)));
        assert!(w1.uses_node(NodeId::new(4)));
        assert_eq!(w1.cost_per_time(), Price::from_credits(10));
        assert_eq!(w1.total_cost(), Money::from_credits(800));
    }

    #[test]
    fn searches_resume_from_checkpoints() {
        // Both built-in selectors take the incremental driver here; every
        // window after a job's first must come from a checkpoint resume.
        let run = run().unwrap();
        assert!(run.alp.stats.scan.checkpoint_hits > 0);
        assert!(run.amp.stats.scan.checkpoint_hits > 0);
    }

    #[test]
    fn w2_is_cpu1_cpu2_cpu4_cost_14() {
        let run = run().unwrap();
        let w2 = run.amp.alternatives.per_job()[1].alternatives()[0].window();
        assert_eq!(w2.start(), TimePoint::new(230));
        for cpu in [1, 2, 4] {
            assert!(w2.uses_node(NodeId::new(cpu)), "W2 must use cpu{cpu}");
        }
        assert_eq!(w2.cost_per_time(), Price::from_credits(14));
    }

    #[test]
    fn w3_spans_450_500() {
        let run = run().unwrap();
        let w3 = run.amp.alternatives.per_job()[2].alternatives()[0].window();
        assert_eq!(w3.start(), TimePoint::new(450));
        assert_eq!(w3.end(), TimePoint::new(500));
        assert_eq!(w3.cost_per_time(), Price::from_credits(6));
        assert!(w3.uses_node(NodeId::new(3)));
        assert!(w3.uses_node(NodeId::new(5)));
    }

    #[test]
    fn alp_per_slot_cap_excludes_cpu6() {
        // Sec. 4: "the restriction to the cost of individual slots would be
        // equal to 10 for Job 2 … so cpu6 (usage cost 12) is not considered
        // during the alternative search with ALP".
        let run = run().unwrap();
        for ja in run.alp.alternatives.per_job() {
            for alt in ja {
                assert!(
                    !alt.window().uses_node(NodeId::new(6)),
                    "ALP must never use cpu6"
                );
            }
        }
    }

    #[test]
    fn amp_reaches_cpu6_and_finds_more_alternatives() {
        let run = run().unwrap();
        let amp_total = run.amp.alternatives.total_found();
        let alp_total = run.alp.alternatives.total_found();
        assert!(
            amp_total > alp_total,
            "AMP found {amp_total}, ALP {alp_total}"
        );
        let cpu6_windows = run
            .amp
            .alternatives
            .per_job()
            .iter()
            .flat_map(|ja| ja.iter())
            .filter(|alt| alt.window().uses_node(NodeId::new(6)))
            .count();
        assert!(cpu6_windows > 0, "AMP must use the cpu6 line");
    }

    #[test]
    fn exact_totals_are_locked() {
        // Regression lock for the reconstruction: AMP 10 alternatives,
        // ALP 5 (the paper's own figure reports 8 for its unpublished
        // layout; the qualitative relations above are what Sec. 4 states).
        let run = run().unwrap();
        assert_eq!(run.amp.alternatives.total_found(), 10);
        assert_eq!(run.alp.alternatives.total_found(), 5);
    }

    #[test]
    fn all_alternatives_respect_budgets() {
        let run = run().unwrap();
        for (outcome, name) in [(&run.alp, "ALP"), (&run.amp, "AMP")] {
            for (job, ja) in run.example.batch.iter().zip(outcome.alternatives.per_job()) {
                for alt in ja {
                    assert!(
                        alt.cost() <= job.request().budget(),
                        "{name} window over budget for {}",
                        job.id()
                    );
                }
            }
        }
    }
}
