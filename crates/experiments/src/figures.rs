//! Figure-level reporting: the paper's published numbers and the tables
//! that compare a run against them (experiments E2–E5).

use crate::report::{f2, pct_delta, Table};
use crate::runner::PairedOutcome;

/// The values the paper reports for one experiment (Fig. 4+5 or Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTargets {
    /// Experiment title.
    pub title: &'static str,
    /// Average job execution time, ALP.
    pub time_alp: f64,
    /// Average job execution time, AMP.
    pub time_amp: f64,
    /// Average job execution cost, ALP.
    pub cost_alp: f64,
    /// Average job execution cost, AMP.
    pub cost_amp: f64,
    /// Alternatives per job, ALP.
    pub alts_alp: f64,
    /// Alternatives per job, AMP.
    pub alts_amp: f64,
}

/// Sec. 5's time-minimization experiment (Fig. 4 (a), Fig. 4 (b), Fig. 5,
/// and the prose alternative counts).
pub const FIG4_TARGETS: PaperTargets = PaperTargets {
    title: "Fig. 4 — min T(s̄) s.t. C(s̄) ≤ B*",
    time_alp: 59.85,
    time_amp: 39.01,
    cost_alp: 313.56,
    cost_amp: 369.69,
    alts_alp: 7.39,
    alts_amp: 34.28,
};

/// Sec. 5's cost-minimization experiment (Fig. 6 (a), Fig. 6 (b)).
pub const FIG6_TARGETS: PaperTargets = PaperTargets {
    title: "Fig. 6 — min C(s̄) s.t. T(s̄) ≤ T*",
    time_alp: 61.04,
    time_amp: 51.62,
    cost_alp: 313.09,
    cost_amp: 343.3,
    alts_alp: 7.28,
    alts_amp: 34.23,
};

/// Paper prose: average slots per experiment and jobs per iteration.
pub const PAPER_AVG_SLOTS: f64 = 135.11;
/// Paper prose: average number of jobs in a counted iteration.
pub const PAPER_AVG_JOBS: f64 = 4.18;

/// Builds the paper-vs-measured comparison table for one experiment.
#[must_use]
pub fn comparison_table(outcome: &PairedOutcome, targets: &PaperTargets) -> Table {
    let mut table = Table::new(&["metric", "paper", "measured", "delta"]);
    let rows: [(&str, f64, f64); 6] = [
        (
            "avg job time, ALP",
            targets.time_alp,
            outcome.alp.job_time.mean(),
        ),
        (
            "avg job time, AMP",
            targets.time_amp,
            outcome.amp.job_time.mean(),
        ),
        (
            "avg job cost, ALP",
            targets.cost_alp,
            outcome.alp.job_cost.mean(),
        ),
        (
            "avg job cost, AMP",
            targets.cost_amp,
            outcome.amp.job_cost.mean(),
        ),
        (
            "alternatives/job, ALP",
            targets.alts_alp,
            outcome.alp.alternatives_per_job(),
        ),
        (
            "alternatives/job, AMP",
            targets.alts_amp,
            outcome.amp.alternatives_per_job(),
        ),
    ];
    for (name, paper, measured) in rows {
        table.row(&[
            name.to_string(),
            f2(paper),
            f2(measured),
            pct_delta(measured, paper),
        ]);
    }
    table
}

/// Builds the derived-ratio table: the relations the paper argues from.
#[must_use]
pub fn ratio_table(outcome: &PairedOutcome, targets: &PaperTargets) -> Table {
    let mut table = Table::new(&["ratio", "paper", "measured"]);
    let measured_time = outcome.amp.job_time.mean() / outcome.alp.job_time.mean();
    let measured_cost = outcome.amp.job_cost.mean() / outcome.alp.job_cost.mean();
    let measured_alts = outcome.amp.alternatives_per_job()
        / outcome.alp.alternatives_per_job().max(f64::MIN_POSITIVE);
    table.row(&[
        "AMP time / ALP time".into(),
        f2(targets.time_amp / targets.time_alp),
        f2(measured_time),
    ]);
    table.row(&[
        "AMP cost / ALP cost".into(),
        f2(targets.cost_amp / targets.cost_alp),
        f2(measured_cost),
    ]);
    table.row(&[
        "AMP alts / ALP alts".into(),
        f2(targets.alts_amp / targets.alts_alp),
        f2(measured_alts),
    ]);
    table
}

/// Builds the environment-statistics table (paper prose numbers).
#[must_use]
pub fn environment_table(outcome: &PairedOutcome) -> Table {
    let mut table = Table::new(&["statistic", "paper", "measured"]);
    table.row(&[
        "avg slots per experiment".into(),
        f2(PAPER_AVG_SLOTS),
        f2(outcome.slots.mean()),
    ]);
    table.row(&[
        "avg jobs per iteration".into(),
        f2(PAPER_AVG_JOBS),
        f2(outcome.jobs.mean()),
    ]);
    table.row(&[
        "counted iterations".into(),
        "-".into(),
        format!(
            "{}/{}",
            outcome.counted_iterations, outcome.total_iterations
        ),
    ]);
    table
}

/// Builds the Fig. 5 per-experiment series table (first `limit` counted
/// experiments, ALP vs AMP average job time).
#[must_use]
pub fn series_table(outcome: &PairedOutcome) -> Table {
    let mut table = Table::new(&["experiment", "alp_avg_time", "amp_avg_time"]);
    for (i, seed) in outcome.series.iter().enumerate() {
        table.row(&[
            (i + 1).to_string(),
            f2(seed.alp.avg_time),
            f2(seed.amp.avg_time),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_paired, ExperimentConfig};
    use ecosched_sim::Criterion;

    fn outcome() -> PairedOutcome {
        run_paired(
            &ExperimentConfig {
                iterations: 120,
                threads: 2,
                criterion: Criterion::MinTimeUnderBudget,
                ..ExperimentConfig::default()
            },
            20,
        )
    }

    #[test]
    fn tables_render_with_all_rows() {
        let o = outcome();
        let t = comparison_table(&o, &FIG4_TARGETS);
        let body = t.render();
        assert!(body.contains("avg job time, ALP"));
        assert!(body.contains("alternatives/job, AMP"));
        assert_eq!(body.lines().count(), 2 + 6);
        let r = ratio_table(&o, &FIG4_TARGETS).render();
        assert!(r.contains("AMP time / ALP time"));
        let e = environment_table(&o).render();
        assert!(e.contains("counted iterations"));
    }

    #[test]
    fn series_table_matches_series_length() {
        let o = outcome();
        let t = series_table(&o);
        assert_eq!(t.render().lines().count(), 2 + o.series.len());
    }

    #[test]
    fn fig4_shape_holds_on_small_run() {
        // Even 120 iterations reproduce the qualitative orderings.
        let o = outcome();
        assert!(o.counted_iterations > 0);
        assert!(o.amp.job_time.mean() < o.alp.job_time.mean());
        assert!(o.amp.job_cost.mean() > o.alp.job_cost.mean());
        assert!(o.amp.alternatives_per_job() > 2.0 * o.alp.alternatives_per_job());
    }
}
