//! The ρ ablation (experiment E6): Sec. 6 proposes discounting the AMP
//! budget to `S = ρ·C·t·N` to trade execution time back for cost.

use crate::report::{f2, Table};
use crate::runner::{run_paired, ExperimentConfig, PairedOutcome};

/// One ρ level's aggregated outcome.
#[derive(Debug, Clone)]
pub struct RhoPoint {
    /// The budget discount factor.
    pub rho: f64,
    /// The paired outcome at this ρ.
    pub outcome: PairedOutcome,
}

/// Runs the sweep: the same experiment at each ρ (AMP's budget shrinks;
/// ALP is unaffected by ρ and serves as the fixed reference).
#[must_use]
pub fn run_rho_sweep(base: &ExperimentConfig, rhos: &[f64]) -> Vec<RhoPoint> {
    rhos.iter()
        .map(|&rho| {
            let config = ExperimentConfig { rho, ..*base };
            RhoPoint {
                rho,
                outcome: run_paired(&config, 0),
            }
        })
        .collect()
}

/// Renders the sweep as a table.
#[must_use]
pub fn sweep_table(points: &[RhoPoint]) -> Table {
    let mut table = Table::new(&[
        "rho",
        "counted",
        "amp_avg_time",
        "amp_avg_cost",
        "amp_alts/job",
        "alp_avg_time",
        "alp_avg_cost",
    ]);
    for p in points {
        table.row(&[
            format!("{:.2}", p.rho),
            format!(
                "{}/{}",
                p.outcome.counted_iterations, p.outcome.total_iterations
            ),
            f2(p.outcome.amp.job_time.mean()),
            f2(p.outcome.amp.job_cost.mean()),
            f2(p.outcome.amp.alternatives_per_job()),
            f2(p.outcome.alp.job_time.mean()),
            f2(p.outcome.alp.job_cost.mean()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_sim::Criterion;

    #[test]
    fn smaller_rho_reduces_amp_cost() {
        let base = ExperimentConfig {
            iterations: 250,
            threads: 2,
            criterion: Criterion::MinTimeUnderBudget,
            ..ExperimentConfig::default()
        };
        let points = run_rho_sweep(&base, &[0.7, 1.0]);
        assert_eq!(points.len(), 2);
        let tight = &points[0].outcome;
        let full = &points[1].outcome;
        assert!(tight.counted_iterations > 0);
        // Sec. 6's claim: reducing the budget limit reduces batch cost…
        assert!(
            tight.amp.job_cost.mean() < full.amp.job_cost.mean(),
            "ρ=0.7 cost {} !< ρ=1.0 cost {}",
            tight.amp.job_cost.mean(),
            full.amp.job_cost.mean()
        );
        // …and can only reduce the alternatives AMP finds.
        assert!(tight.amp.alternatives_per_job() <= full.amp.alternatives_per_job());
    }

    #[test]
    fn table_has_one_row_per_rho() {
        let base = ExperimentConfig {
            iterations: 40,
            threads: 2,
            ..ExperimentConfig::default()
        };
        let points = run_rho_sweep(&base, &[0.8, 0.9, 1.0]);
        let table = sweep_table(&points);
        assert_eq!(table.render().lines().count(), 2 + 3);
    }
}
