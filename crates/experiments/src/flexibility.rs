//! E13 — quantifying the paper's *flexibility* claim.
//!
//! Sec. 5 argues that AMP's "relatively large number of alternatives found
//! increases the variety of choosing the efficient slot combination". The
//! variety the VO actually chooses from is the Pareto frontier of
//! achievable `(total cost, total time)` pairs over the batch. This
//! experiment measures that frontier for ALP's and AMP's alternative sets
//! on the same inputs: its size (how many distinct efficient trade-offs
//! exist) and its span (how far the extremes lie apart).

use ecosched_core::JobAlternatives;
use ecosched_optimize::ParetoFrontier;
use ecosched_select::{find_alternatives, Alp, Amp, SlotSelector};
use ecosched_sim::{JobGenConfig, JobGenerator, RunningStats, SlotGenConfig, SlotGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::report::{f2, Table};

/// Frontier statistics for one algorithm.
#[derive(Debug, Clone, Default)]
pub struct FlexibilityAggregate {
    /// Frontier size (number of efficient combinations).
    pub frontier_size: RunningStats,
    /// Relative cost span: (max − min) / min over the frontier.
    pub cost_span: RunningStats,
    /// Relative time span: (max − min) / min over the frontier.
    pub time_span: RunningStats,
}

/// The flexibility comparison outcome.
#[derive(Debug, Clone, Default)]
pub struct FlexibilityOutcome {
    /// Iterations where both algorithms covered every job.
    pub counted: u64,
    /// Iterations simulated.
    pub total: u64,
    /// ALP's frontier statistics.
    pub alp: FlexibilityAggregate,
    /// AMP's frontier statistics.
    pub amp: FlexibilityAggregate,
}

fn frontier_stats(covered: &[JobAlternatives], agg: &mut FlexibilityAggregate) {
    let Ok(frontier) = ParetoFrontier::new(covered) else {
        return;
    };
    let points = frontier.points();
    agg.frontier_size.push(points.len() as f64);
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        // Points are sorted by increasing cost / decreasing time.
        let (min_cost, max_time) = (first.0.to_f64(), first.1.ticks() as f64);
        let (max_cost, min_time) = (last.0.to_f64(), last.1.ticks() as f64);
        if min_cost > 0.0 {
            agg.cost_span.push((max_cost - min_cost) / min_cost);
        }
        if min_time > 0.0 {
            agg.time_span.push((max_time - min_time) / min_time);
        }
    }
}

/// Runs the flexibility comparison over `iterations` generated workloads.
#[must_use]
pub fn run_flexibility(iterations: u64, seed_offset: u64) -> FlexibilityOutcome {
    let slot_gen = SlotGenerator::new(SlotGenConfig::default());
    let job_gen = JobGenerator::new(JobGenConfig::default());
    let mut outcome = FlexibilityOutcome {
        total: iterations,
        ..FlexibilityOutcome::default()
    };
    for i in 0..iterations {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_offset + i);
        let list = slot_gen.generate(&mut rng);
        let batch = job_gen.generate(&mut rng);
        let mut covered_tables = Vec::with_capacity(2);
        let mut all_covered = true;
        for selector in [&Alp::new() as &dyn SlotSelector, &Amp::new()] {
            let search = find_alternatives(selector, &list, &batch).expect("search never fails");
            all_covered &= search.alternatives.all_jobs_covered();
            covered_tables.push(
                search
                    .alternatives
                    .per_job()
                    .iter()
                    .filter(|ja| !ja.is_empty())
                    .cloned()
                    .collect::<Vec<_>>(),
            );
        }
        if !all_covered {
            continue;
        }
        outcome.counted += 1;
        frontier_stats(&covered_tables[0], &mut outcome.alp);
        frontier_stats(&covered_tables[1], &mut outcome.amp);
    }
    outcome
}

/// Renders the comparison as a table.
#[must_use]
pub fn flexibility_table(outcome: &FlexibilityOutcome) -> Table {
    let mut table = Table::new(&[
        "algorithm",
        "frontier size",
        "cost span (max-min)/min",
        "time span (max-min)/min",
    ]);
    for (name, agg) in [("ALP", &outcome.alp), ("AMP", &outcome.amp)] {
        table.row(&[
            name.to_string(),
            f2(agg.frontier_size.mean()),
            f2(agg.cost_span.mean()),
            f2(agg.time_span.mean()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amp_frontiers_are_richer() {
        let outcome = run_flexibility(120, 0);
        assert!(outcome.counted >= 5, "too few counted iterations");
        // The paper's flexibility claim, made quantitative: AMP's larger
        // alternative sets expose more efficient trade-offs…
        assert!(
            outcome.amp.frontier_size.mean() > outcome.alp.frontier_size.mean(),
            "AMP frontier {} !> ALP frontier {}",
            outcome.amp.frontier_size.mean(),
            outcome.alp.frontier_size.mean()
        );
        // …and a wider reachable time range ("alternative sets found with
        // ALP … do not differ much from each other", Sec. 6).
        assert!(
            outcome.amp.time_span.mean() > outcome.alp.time_span.mean(),
            "AMP time span {} !> ALP {}",
            outcome.amp.time_span.mean(),
            outcome.alp.time_span.mean()
        );
    }

    #[test]
    fn table_renders_two_rows() {
        let outcome = run_flexibility(10, 0);
        assert_eq!(flexibility_table(&outcome).render().lines().count(), 4);
    }
}
